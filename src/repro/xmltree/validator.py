"""DTD conformance checking for XML trees.

``validate(tree, dtd)`` checks that every node's label is declared, that the
children of every node match the parent's content-model regular expression,
and that text values only appear on text types.  It is used by tests (every
generated document must conform) and by the GAV view machinery (extracted
views must conform to the view DTD).

The content-model matcher works on label sequences with a set-of-positions
simulation (equivalent to running the Glushkov NFA of the regular
expression), so it is linear in ``len(children) * |model|`` and needs no
backtracking.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.dtd.model import (
    DTD,
    Choice,
    ContentModel,
    Empty,
    Optional as OptModel,
    Plus,
    Sequence as SeqModel,
    Star,
    TypeRef,
)
from repro.errors import ValidationError
from repro.xmltree.tree import XMLTree

__all__ = ["matches_model", "validate", "conforms"]


def _advance(model: ContentModel, labels: Sequence[str], starts: Set[int]) -> Set[int]:
    """Return the set of positions reachable after matching ``model``.

    ``starts`` is the set of positions (indexes into ``labels``) from which
    matching may begin; the result is the set of positions where matching of
    ``model`` may end.
    """
    if not starts:
        return set()
    if isinstance(model, Empty):
        return set(starts)
    if isinstance(model, TypeRef):
        return {i + 1 for i in starts if i < len(labels) and labels[i] == model.name}
    if isinstance(model, SeqModel):
        current = set(starts)
        for part in model.parts:
            current = _advance(part, labels, current)
            if not current:
                return set()
        return current
    if isinstance(model, Choice):
        out: Set[int] = set()
        for part in model.parts:
            out |= _advance(part, labels, starts)
        return out
    if isinstance(model, OptModel):
        return set(starts) | _advance(model.inner, labels, starts)
    if isinstance(model, (Star, Plus)):
        inner = model.inner
        reached: Set[int] = set()
        frontier = set(starts)
        # Repeatedly apply the inner model until no new positions appear.
        while frontier:
            step = _advance(inner, labels, frontier)
            new = step - reached
            reached |= new
            frontier = new
        if isinstance(model, Star):
            return set(starts) | reached
        return reached
    raise ValidationError(f"unknown content model {model!r}")


def matches_model(model: ContentModel, labels: Sequence[str]) -> bool:
    """Return True if the label sequence is a word of the content model."""
    return len(labels) in _advance(model, list(labels), {0})


def validate(tree: XMLTree, dtd: DTD) -> List[str]:
    """Return a list of conformance violations (empty when the tree conforms).

    Each violation is a human-readable string naming the offending node.
    """
    problems: List[str] = []
    if tree.root.label != dtd.root:
        problems.append(
            f"root label {tree.root.label!r} does not match DTD root {dtd.root!r}"
        )
    for node in tree.nodes():
        if not dtd.has_type(node.label):
            problems.append(f"node {node.node_id}: undeclared element type {node.label!r}")
            continue
        child_labels = [child.label for child in node.children]
        model = dtd.production(node.label)
        if not matches_model(model, child_labels):
            problems.append(
                f"node {node.node_id} ({node.label}): children {child_labels} "
                f"do not match content model {model}"
            )
        if node.value is not None and node.label not in dtd.text_types:
            problems.append(
                f"node {node.node_id} ({node.label}): has text value but "
                f"{node.label!r} is not a text type"
            )
    return problems


def conforms(tree: XMLTree, dtd: DTD) -> bool:
    """Return True when the tree conforms to the DTD."""
    return not validate(tree, dtd)
