"""Benchmark: Fig. 14 (Exp-3) — scalability of a//d with the dataset size.

Two scaled dataset sizes, three approaches.  The paper's finding: all three
grow with the dataset, with CycleEX cheapest and CycleE most expensive at
the largest size (2.4x CycleEX in the paper; the ratio here depends on the
in-memory engine but the ordering should match).
"""

import pytest

from repro.dtd.samples import cross_dtd
from repro.experiments.harness import default_approaches
from repro.relational.executor import Executor
from repro.shredding.shredder import shred_document
from repro.workloads.queries import SCALABILITY_QUERY
from repro.xmltree.generator import generate_document

APPROACHES = {approach.name: approach for approach in default_approaches()}
SIZES = (1500, 3000, 6000)


@pytest.fixture(scope="module")
def scalability_datasets():
    dtd = cross_dtd()
    datasets = {}
    for size in SIZES:
        tree = generate_document(dtd, x_l=16, x_r=4, seed=5, max_elements=size)
        datasets[size] = (tree, shred_document(tree, dtd))
    return dtd, datasets


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("approach_name", ["R", "E", "X"])
def test_fig14_scalability(benchmark, scalability_datasets, size, approach_name):
    dtd, datasets = scalability_datasets
    tree, shredded = datasets[size]
    translator = APPROACHES[approach_name].translator(dtd)
    program = translator.translate(SCALABILITY_QUERY).program

    def run():
        return Executor(shredded.database).run(program)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["approach"] = approach_name
    benchmark.extra_info["document_elements"] = tree.size()
    benchmark.extra_info["result_rows"] = len(result)
