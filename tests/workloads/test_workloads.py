"""Tests for the workload definitions (paper queries and dataset builders)."""

import pytest

from repro.dtd.graph import DTDGraph
from repro.dtd import samples
from repro.workloads.datasets import (
    DEFAULT_SCALE,
    DatasetSpec,
    build_dataset,
    dept_sample_tree,
    scaled_elements,
)
from repro.workloads.queries import (
    BIOML_CASES,
    CROSS_QUERIES,
    DEPT_QUERIES,
    GEDML_QUERY,
    SELECTIVE_QUERIES,
)
from repro.xmltree.validator import conforms
from repro.xpath.parser import parse_xpath


class TestQueryDefinitions:
    def test_all_cross_queries_parse(self):
        for name, query in CROSS_QUERIES.items():
            parse_xpath(query)

    def test_all_dept_queries_parse(self):
        for query in DEPT_QUERIES.values():
            parse_xpath(query)

    def test_selective_queries_format_and_parse(self):
        for template in SELECTIVE_QUERIES.values():
            parse_xpath(template.format(value="b-0"))

    def test_gedml_query_parses(self):
        parse_xpath(GEDML_QUERY)

    def test_bioml_cases_cover_table4(self):
        names = [case.name for case in BIOML_CASES]
        assert names == ["2a", "2b", "2c", "3a", "3b", "4a", "4b"]

    def test_bioml_case_queries_target_reachable_types(self):
        for case in BIOML_CASES:
            dtd = case.dtd()
            graph = DTDGraph(dtd)
            target = case.query.split("//")[-1]
            assert graph.reaches("gene", target), case.name

    def test_bioml_case_cycle_counts_match_graphs(self):
        for case in BIOML_CASES:
            assert DTDGraph(case.dtd()).cycle_count() == case.cycles, case.name

    def test_queries_start_with_dtd_root(self):
        for name, query in CROSS_QUERIES.items():
            assert query.startswith("a")
        assert GEDML_QUERY.startswith("even")


class TestDatasets:
    def test_scaled_elements(self):
        assert scaled_elements(120_000) == 120_000 // DEFAULT_SCALE
        assert scaled_elements(160, scale=16) == 200  # floor of 200 elements

    def test_dataset_spec_generates_conforming_document(self):
        spec = DatasetSpec(samples.cross_dtd(), x_l=6, x_r=3, max_elements=500, seed=3)
        tree = spec.generate()
        assert conforms(tree, spec.dtd)
        assert tree.size() <= 650

    def test_dataset_spec_deterministic(self):
        spec = DatasetSpec(samples.cross_dtd(), x_l=6, x_r=3, seed=3)
        assert spec.generate().size() == spec.generate().size()

    def test_build_dataset_returns_tree_and_shredded(self):
        spec = DatasetSpec(samples.cross_dtd(), x_l=5, x_r=2, seed=3, max_elements=300)
        tree, shredded = build_dataset(spec)
        assert shredded.tree is tree
        # One edge tuple + one DOC_ORDER tuple per node since the
        # interval encoding landed.
        assert shredded.database.total_rows() == 2 * tree.size()

    def test_dept_sample_tree_matches_table1(self):
        tree = dept_sample_tree()
        labels = tree.labels()
        assert labels == {"dept": 1, "course": 5, "student": 2, "project": 2}
        assert conforms(tree, samples.simplified_dept_dtd())
