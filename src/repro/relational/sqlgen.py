"""SQL text emission for translated programs.

The in-memory executor is what the benchmarks run against, but the whole
point of the paper is that the produced queries are *ordinary SQL with a
low-end recursion feature*.  This module renders a
:class:`~repro.relational.algebra.Program` as SQL text in three dialects:

* ``GENERIC`` — ANSI-style SQL with ``WITH RECURSIVE`` for the LFP operator;
* ``DB2`` — the DB2 ``WITH ... AS (... UNION ALL ...)`` recursive common
  table expression shown in Fig. 4;
* ``ORACLE`` — Oracle's ``CONNECT BY`` hierarchical query for the simple
  LFP, also shown in Fig. 4;
* ``SQLITE`` — SQL that SQLite actually accepts and executes: no
  parenthesised compound-SELECT operands, ``CREATE TEMPORARY TABLE ... AS
  SELECT`` without parentheses, and ``WITH RECURSIVE`` with ``UNION`` (set
  semantics) so recursion terminates regardless of data shape.

GENERIC/DB2/ORACLE output is primarily for inspection and documentation;
SQLITE output is executed for real by
:class:`repro.backends.sqlite.SqliteBackend` and differentially validated
against the in-memory executor.
"""

from __future__ import annotations

import enum
import re
from typing import Dict, List, Optional

from repro.relational.algebra import (
    AntiJoin,
    Compose,
    Difference,
    EmptyRelation,
    EquiJoin,
    Fixpoint,
    IdentityRelation,
    Intersect,
    Program,
    Project,
    RAExpr,
    RecursiveUnion,
    Scan,
    Select,
    SemiJoin,
    TagProject,
    Union,
)
from repro.relational.schema import F, T, V

__all__ = [
    "SQLDialect",
    "program_to_sql",
    "program_statements",
    "expression_to_sql",
    "quote_identifier",
]


class SQLDialect(enum.Enum):
    """Supported SQL output dialects."""

    GENERIC = "generic"
    DB2 = "db2"
    ORACLE = "oracle"
    SQLITE = "sqlite"


def _literal(value: object) -> str:
    if value is None:
        return "NULL"
    return "'" + str(value).replace("'", "''") + "'"


# Identifiers that parse as plain names everywhere and need no quoting.
_PLAIN_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

# SQL keywords that would be misparsed as syntax if used as bare table
# names.  DTD element names (hence relation names like ``R_select``) carry
# the mapping prefix, but custom mappings and DTD names containing ``-`` or
# ``.`` (both legal in the DTD grammar) reach the renderer verbatim.
_RESERVED_WORDS = frozenset(
    """
    ALL AND AS ASC BETWEEN BY CASE CHECK COLUMN CONSTRAINT CREATE CROSS
    CURRENT DEFAULT DELETE DESC DISTINCT DROP ELSE END ESCAPE EXCEPT EXISTS
    FOREIGN FROM FULL GROUP HAVING IN INDEX INNER INSERT INTERSECT INTO IS
    JOIN KEY LEFT LIKE LIMIT MINUS NATURAL NOT NULL OFFSET ON OR ORDER
    OUTER PRIMARY RECURSIVE REFERENCES RIGHT SELECT SET TABLE TEMPORARY
    THEN UNION UNIQUE UPDATE USING VALUES VIEW WHEN WHERE WITH
    """.split()
)


def quote_identifier(name: str, always: bool = False) -> str:
    """Render ``name`` as a SQL identifier.

    By default plain alphanumeric names stay bare (keeping the emitted SQL
    readable and the golden texts stable); names containing ``-``/``.``/
    quotes — legal in DTD element names, hence in relation names — and
    names colliding with SQL keywords are double-quoted with embedded
    quotes doubled, which is the escaping every supported dialect accepts.
    ``always=True`` quotes unconditionally (the SQLite renderer and DDL
    generator use this so identifiers never depend on the keyword list).
    """
    if (
        not always
        and _PLAIN_IDENTIFIER_RE.match(name)
        and name.upper() not in _RESERVED_WORDS
    ):
        return name
    return '"' + name.replace('"', '""') + '"'


class _SQLRenderer:
    def __init__(self, dialect: SQLDialect) -> None:
        self._dialect = dialect
        self._counter = 0

    def _alias(self, prefix: str = "t") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # Each render method returns a SELECT statement producing columns F, T, V.

    def render(self, expr: RAExpr) -> str:
        if isinstance(expr, Scan):
            if self._dialect is SQLDialect.SQLITE:
                # Temporaries are not always (F, T, V): the SQL'99 recursive
                # union materialises an extra TAG column, so scans must keep
                # whatever columns the relation actually has.  The name is
                # always quoted because DTD element names (hence relation
                # names) may contain '-' or '.'.
                return f"SELECT * FROM {quote_identifier(expr.name, always=True)}"
            return f"SELECT {F}, {T}, {V} FROM {quote_identifier(expr.name)}"
        if isinstance(expr, IdentityRelation):
            return f"SELECT {T} AS {F}, {T}, {V} FROM ALL_NODES"
        if isinstance(expr, EmptyRelation):
            # A zero-row (F, T, V) relation.  Oracle and DB2 require a FROM
            # clause, so the dummy one-row tables stand in there.
            source = ""
            if self._dialect is SQLDialect.ORACLE:
                source = " FROM DUAL"
            elif self._dialect is SQLDialect.DB2:
                source = " FROM SYSIBM.SYSDUMMY1"
            return f"SELECT '' AS {F}, '' AS {T}, '' AS {V}{source} WHERE 1 = 0"
        if isinstance(expr, Select):
            inner = self.render(expr.input)
            alias = self._alias()
            conds = " AND ".join(
                f"{alias}.{c.column} {'=' if c.op == '=' else '<>'} {_literal(c.value)}"
                for c in expr.conditions
            )
            return f"SELECT {alias}.* FROM ({inner}) {alias} WHERE {conds}"
        if isinstance(expr, Project):
            inner = self.render(expr.input)
            alias = self._alias()
            aliases = expr.aliases or expr.columns
            cols = ", ".join(
                f"{alias}.{col} AS {out}" for col, out in zip(expr.columns, aliases)
            )
            return f"SELECT DISTINCT {cols} FROM ({inner}) {alias}"
        if isinstance(expr, TagProject):
            inner = self.render(expr.input)
            alias = self._alias()
            return (
                f"SELECT {alias}.{F}, {alias}.{T}, {alias}.{V}, "
                f"{_literal(expr.tag)} AS TAG FROM ({inner}) {alias}"
            )
        if isinstance(expr, Compose):
            left = self.render(expr.left)
            right = self.render(expr.right)
            la, ra = self._alias("l"), self._alias("r")
            return (
                f"SELECT {la}.{F} AS {F}, {ra}.{T} AS {T}, {ra}.{V} AS {V} "
                f"FROM ({left}) {la} JOIN ({right}) {ra} ON {la}.{T} = {ra}.{F}"
            )
        if isinstance(expr, EquiJoin):
            left = self.render(expr.left)
            right = self.render(expr.right)
            la, ra = self._alias("l"), self._alias("r")
            cols = ", ".join(
                f"{la if side == 'L' else ra}.{column} AS {alias_}"
                for side, column, alias_ in expr.output
            )
            return (
                f"SELECT {cols} FROM ({left}) {la} JOIN ({right}) {ra} "
                f"ON {la}.{expr.left_column} = {ra}.{expr.right_column}"
            )
        if isinstance(expr, SemiJoin):
            left = self.render(expr.left)
            right = self.render(expr.right)
            la = self._alias("l")
            return (
                f"SELECT {la}.* FROM ({left}) {la} WHERE {la}.{expr.left_column} IN "
                f"(SELECT {expr.right_column} FROM ({right}) {self._alias('q')})"
            )
        if isinstance(expr, AntiJoin):
            left = self.render(expr.left)
            right = self.render(expr.right)
            la = self._alias("l")
            return (
                f"SELECT {la}.* FROM ({left}) {la} WHERE {la}.{expr.left_column} NOT IN "
                f"(SELECT {expr.right_column} FROM ({right}) {self._alias('q')})"
            )
        if isinstance(expr, Union):
            if self._dialect is SQLDialect.SQLITE:
                # SQLite rejects parenthesised compound-SELECT operands, so
                # each branch is wrapped in a derived table instead.
                parts = [
                    f"SELECT * FROM ({self.render(child)}) {self._alias('u')}"
                    for child in expr.inputs
                ]
            else:
                parts = [f"({self.render(child)})" for child in expr.inputs]
            return "\nUNION\n".join(parts)
        if isinstance(expr, Difference):
            keyword = "MINUS" if self._dialect is SQLDialect.ORACLE else "EXCEPT"
            return self._compound(expr.left, keyword, expr.right)
        if isinstance(expr, Intersect):
            return self._compound(expr.left, "INTERSECT", expr.right)
        if isinstance(expr, Fixpoint):
            return self._render_fixpoint(expr)
        if isinstance(expr, RecursiveUnion):
            return self._render_recursive_union(expr)
        raise TypeError(f"cannot render {expr!r} as SQL")

    def _compound(self, left: RAExpr, keyword: str, right: RAExpr) -> str:
        if self._dialect is SQLDialect.SQLITE:
            la, ra = self._alias("c"), self._alias("c")
            return (
                f"SELECT * FROM ({self.render(left)}) {la}\n{keyword}\n"
                f"SELECT * FROM ({self.render(right)}) {ra}"
            )
        return f"({self.render(left)})\n{keyword}\n({self.render(right)})"

    # -- recursion ---------------------------------------------------------------

    def _render_fixpoint(self, expr: Fixpoint) -> str:
        base = self.render(expr.base)
        # A target anchor without a source anchor means the closure runs
        # *backwards* from tuples ending in the anchored set (second
        # push-selection case of Sect. 5.2): seeds keep their target fixed
        # and each step prepends an edge, mirroring Executor._fixpoint_backward.
        backward = expr.target_anchor is not None and expr.source_anchor is None
        # The bare predicate is kept separate from its WHERE/AND keyword:
        # the rendered anchor may itself contain WHERE clauses, so textual
        # keyword substitution on the combined filter would corrupt them.
        anchor_filter = ""
        if expr.source_anchor is not None:
            anchor = self.render(expr.source_anchor)
            anchor_filter = f"{F} IN (SELECT {T} FROM ({anchor}) {self._alias('a')})"
        elif backward:
            anchor = self.render(expr.target_anchor)
            anchor_filter = f"{T} IN (SELECT {F} FROM ({anchor}) {self._alias('a')})"
        seed_filter = f" WHERE {anchor_filter}" if anchor_filter else ""

        if self._dialect is SQLDialect.ORACLE:
            # Oracle CONNECT BY over the single input relation (Fig. 4 left).
            start_with = f"START WITH 1 = 1{f' AND {anchor_filter}' if anchor_filter else ''}"
            if backward:
                return (
                    f"SELECT {F}, CONNECT_BY_ROOT {T} AS {T}, CONNECT_BY_ROOT {V} AS {V}\n"
                    f"FROM ({base})\n"
                    f"CONNECT BY {T} = PRIOR {F}\n"
                    f"{start_with}"
                )
            return (
                f"SELECT CONNECT_BY_ROOT {F} AS {F}, {T}, {V}\n"
                f"FROM ({base})\n"
                f"CONNECT BY PRIOR {T} = {F}\n"
                f"{start_with}"
            )
        # Generic / DB2 / SQLite: recursive common table expression over one
        # relation.  SQLite gets a unique CTE name (fixpoints can nest inside
        # one statement) and UNION instead of UNION ALL so the recursion
        # terminates with set semantics, like the in-memory fixpoint.
        sqlite = self._dialect is SQLDialect.SQLITE
        name = self._alias("lfp") if sqlite else "lfp"
        with_kw = "WITH" if self._dialect is SQLDialect.DB2 else "WITH RECURSIVE"
        union_kw = "UNION" if sqlite else "UNION ALL"
        if backward:
            step = (
                f"  SELECT step.{F}, {name}.{T}, {name}.{V}\n"
                f"  FROM {name} JOIN ({base}) step ON step.{T} = {name}.{F}\n"
            )
        else:
            step = (
                f"  SELECT {name}.{F}, step.{T}, step.{V}\n"
                f"  FROM {name} JOIN ({base}) step ON {name}.{T} = step.{F}\n"
            )
        return (
            f"{with_kw} {name} ({F}, {T}, {V}) AS (\n"
            f"  SELECT {F}, {T}, {V} FROM ({base}) seed{seed_filter}\n"
            f"  {union_kw}\n"
            f"{step}"
            f")\n"
            f"SELECT DISTINCT {F}, {T}, {V} FROM {name}"
        )

    def _render_recursive_union(self, expr: RecursiveUnion) -> str:
        sqlite = self._dialect is SQLDialect.SQLITE
        name = self._alias("rec") if sqlite else "r"
        union_kw = "UNION" if sqlite else "UNION ALL"
        init = self.render(expr.init)
        branches: List[str] = []
        for step in expr.steps:
            edge = self.render(step.relation)
            alias = self._alias("e")
            branches.append(
                # The origin node stays in F (matching EdgeStep semantics and
                # the executor) so the recursion yields ancestor/descendant
                # pairs that compose with the rest of the program.  Tags are
                # element-type names and go through _literal: a quote in a
                # tag must not corrupt the statement.
                f"  SELECT {name}.{F} AS {F}, {alias}.{T} AS {T}, {alias}.{V} AS {V}, "
                f"{_literal(step.child_tag)} AS TAG\n"
                f"  FROM {name} JOIN ({edge}) {alias} ON {name}.{T} = {alias}.{F} "
                f"AND {name}.TAG = {_literal(step.parent_tag)}"
            )
        with_kw = "WITH" if self._dialect is SQLDialect.DB2 else "WITH RECURSIVE"
        body = f"\n  {union_kw}\n".join(branches)
        return (
            f"{with_kw} {name} ({F}, {T}, {V}, TAG) AS (\n"
            f"  {init}\n"
            f"  {union_kw}\n"
            f"{body}\n"
            f")\n"
            f"SELECT DISTINCT {F}, {T}, {V}, TAG FROM {name}"
        )


def expression_to_sql(expr: RAExpr, dialect: SQLDialect = SQLDialect.GENERIC) -> str:
    """Render a single relational expression as a SELECT statement."""
    return _SQLRenderer(dialect).render(expr)


def program_statements(
    program: Program, dialect: SQLDialect = SQLDialect.GENERIC
) -> List[str]:
    """Render a program as executable statements, one per assignment plus the
    result SELECT (no trailing semicolons).

    This is the single source of truth for the statement shapes: both the
    script renderer (:func:`program_to_sql`) and the backends that actually
    execute the SQL consume it, so golden-text tests pin exactly what runs.
    """
    renderer = _SQLRenderer(dialect)
    statements: List[str] = []
    for assignment in program.assignments:
        body = renderer.render(assignment.expression)
        if dialect is SQLDialect.SQLITE:
            # SQLite rejects a parenthesised SELECT after AS.
            statements.append(
                "CREATE TEMPORARY TABLE "
                f"{quote_identifier(assignment.target, always=True)} AS\n{body}"
            )
        else:
            statements.append(
                f"CREATE TEMPORARY TABLE {quote_identifier(assignment.target)} "
                f"AS (\n{body}\n)"
            )
    statements.append(renderer.render(program.result))
    return statements


def program_to_sql(program: Program, dialect: SQLDialect = SQLDialect.GENERIC) -> str:
    """Render a program as a SQL script (one temp table per assignment).

    Each assignment becomes a ``CREATE TEMPORARY TABLE ... AS`` statement so
    the script mirrors the ``R_e <- e2s(e)`` sequence of Sect. 5.1; the
    result is the final SELECT.
    """
    return "\n\n".join(f"{s};" for s in program_statements(program, dialect))
