"""The SQLite backend: run translated SQL for real on an RDBMS.

This is the strongest correctness check in the repository: the paper's
claim is that XPath over recursive DTDs translates to *ordinary SQL with a
low-end recursion operator*, and SQLite's ``WITH RECURSIVE`` is exactly
such an operator.  The backend

1. generates DDL from a :class:`~repro.relational.schema.DatabaseSchema`
   (one ``TEXT``-columned table per relation, indexes on the join columns,
   plus the ``ALL_NODES`` view backing the identity relation ``R_id``);
2. bulk-loads the shredded document through ``executemany``;
3. executes each program assignment as a ``CREATE TEMPORARY TABLE ... AS``
   statement rendered in the :data:`~repro.relational.sqlgen.SQLDialect.SQLITE`
   dialect, then fetches the result SELECT.

Results come back normalized (SQLite's TEXT affinity makes everything a
string anyway), so they compare directly against
:class:`~repro.backends.memory.MemoryBackend` output.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Dict, List, Optional

from repro.backends.base import Backend, BackendResult, normalize_rows
from repro.errors import ExecutionError
from repro.relational.algebra import Program
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, F, NODE_COLUMNS, T, V
from repro.relational.sqlgen import SQLDialect, program_statements

__all__ = ["SqliteBackend", "sqlite_schema_ddl", "IDENTITY_VIEW"]

# Name of the view the SQL renderer scans for the identity relation R_id.
IDENTITY_VIEW = "ALL_NODES"


def sqlite_schema_ddl(schema: DatabaseSchema) -> List[str]:
    """DDL statements creating ``schema``'s tables, indexes and R_id view.

    Every column is ``TEXT`` (node ids and the ``'_'`` sentinels live in the
    same columns); the ``F``/``T`` columns get indexes because every join
    and every recursive step probes them.  The ``ALL_NODES`` view unions the
    node relations so ``IdentityRelation`` renders against a real object.
    """
    statements: List[str] = []
    for name in schema.relation_names:
        relation = schema.relation(name)
        columns = ", ".join(f'"{column}" TEXT' for column in relation.columns)
        statements.append(f'CREATE TABLE "{name}" ({columns})')
        for column in (F, T):
            if relation.has_column(column):
                statements.append(
                    f'CREATE INDEX "idx_{name}_{column}" ON "{name}" ("{column}")'
                )
    node_selects = [
        f'SELECT {F}, {T}, {V} FROM "{name}"'
        for name in schema.node_relations
        if tuple(schema.relation(name).columns) == NODE_COLUMNS
    ]
    if node_selects:
        body = "\nUNION\n".join(node_selects)
    else:
        body = f"SELECT '' AS {F}, '' AS {T}, '' AS {V} WHERE 0"
    statements.append(f"CREATE VIEW {IDENTITY_VIEW} ({F}, {T}, {V}) AS\n{body}")
    return statements


class SqliteBackend(Backend):
    """Execute translated programs on SQLite.

    Parameters
    ----------
    database:
        The shredded database; its schema is turned into DDL and its
        relations bulk-loaded at construction time.
    path:
        SQLite database path (default in-memory).
    """

    name = "sqlite"

    def __init__(self, database: Database, path: str = ":memory:") -> None:
        super().__init__(database)
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(path)
        self._create_schema()
        self._load()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _conn(self) -> sqlite3.Connection:
        if self._connection is None:
            raise ExecutionError("sqlite backend is closed")
        return self._connection

    # -- loading -----------------------------------------------------------------

    def _create_schema(self) -> None:
        cursor = self._conn().cursor()
        for statement in sqlite_schema_ddl(self._database.schema):
            cursor.execute(statement)
        self._conn().commit()

    def _load(self) -> None:
        connection = self._conn()
        for name in self._database.schema.relation_names:
            relation = self._database.relation(name)
            width = len(relation.columns)
            placeholders = ", ".join("?" * width)
            connection.executemany(
                f'INSERT INTO "{name}" VALUES ({placeholders})',
                [tuple(str(value) for value in row) for row in relation.rows],
            )
        connection.commit()

    # -- execution ---------------------------------------------------------------

    def execute(self, program: Program) -> BackendResult:
        """Run ``program`` end-to-end: temporaries as temp tables, then the result.

        Assignments the result never uses are pruned first (mirroring the
        lazy in-memory strategy, which also never materialises them).
        """
        program = program.pruned()
        cursor = self._conn().cursor()
        statements = program_statements(program, SQLDialect.SQLITE)
        created: List[str] = []
        tuples_materialized = 0
        # Only the translated statements are timed: the per-temporary
        # COUNT(*) instrumentation and the temp-table teardown are backend
        # bookkeeping, and including them would bias every memory-vs-sqlite
        # comparison the backend axis exists to make.
        elapsed = 0.0
        try:
            for assignment, statement in zip(program.assignments, statements):
                start = time.perf_counter()
                cursor.execute(statement)
                elapsed += time.perf_counter() - start
                created.append(assignment.target)
                cursor.execute(f'SELECT COUNT(*) FROM "{assignment.target}"')
                tuples_materialized += cursor.fetchone()[0]
            start = time.perf_counter()
            cursor.execute(statements[-1])
            columns = tuple(description[0] for description in cursor.description)
            rows = normalize_rows(cursor.fetchall())
            elapsed += time.perf_counter() - start
        except sqlite3.Error as exc:
            raise ExecutionError(f"sqlite execution failed: {exc}") from exc
        finally:
            for name in created:
                cursor.execute(f'DROP TABLE IF EXISTS temp."{name}"')
        stats: Dict[str, float] = {
            "rows": len(rows),
            "elapsed_seconds": elapsed,
            "temporaries_evaluated": len(created),
            "tuples_materialized": tuples_materialized,
        }
        return BackendResult(
            backend=self.name, columns=columns, rows=rows, stats=stats
        )
