"""Pluggable execution backends for translated programs.

Two implementations ship today:

* :class:`~repro.backends.memory.MemoryBackend` — the pure-Python
  hash-join/LFP engine (an adapter over ``relational.executor``);
* :class:`~repro.backends.sqlite.SqliteBackend` — real execution on SQLite
  via the ``SQLITE`` SQL dialect (``WITH RECURSIVE`` for the LFP operator).

Use :func:`create_backend` to instantiate one by name; the registry is the
single point future backends (DuckDB, Postgres, sharded execution) hook
into.  :mod:`repro.backends.differential` runs every workload query on all
backends and asserts identical answer sets.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.backends.base import Backend, BackendResult, PreparedProgram, normalize_rows
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend, sqlite_schema_ddl
from repro.relational.database import Database
from repro.relational.sqlgen import SQLDialect

__all__ = [
    "Backend",
    "BackendResult",
    "PreparedProgram",
    "MemoryBackend",
    "SqliteBackend",
    "BACKENDS",
    "backend_names",
    "backend_dialect",
    "create_backend",
    "normalize_rows",
    "sqlite_schema_ddl",
]

# Registry of available backends, keyed by the name used in CLI flags.
BACKENDS: Dict[str, Type[Backend]] = {
    MemoryBackend.name: MemoryBackend,
    SqliteBackend.name: SqliteBackend,
}


def backend_names() -> List[str]:
    """Names of all registered backends (sorted, for CLI choices)."""
    return sorted(BACKENDS)


def _backend_class(name: str) -> Type[Backend]:
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(backend_names())
        raise ValueError(f"unknown backend {name!r} (known: {known})") from None


def backend_dialect(name: str) -> SQLDialect:
    """The SQL dialect the backend registered under ``name`` executes.

    This is what :meth:`repro.api.EngineConfig.resolved_dialect` derives
    the plan-rendering (and cache-keying) dialect from when no explicit
    dialect is configured — each backend declares it once on the class.
    """
    return _backend_class(name).dialect


def create_backend(name: object, database: Database, **options: object) -> Backend:
    """Instantiate a backend over ``database``.

    ``name`` is either a registered backend name or an
    :class:`~repro.api.EngineConfig` (anything with a ``backend``
    attribute), in which case the config's backend is used — the facade and
    service layers pass their config straight through.  When a config is
    passed, every field named in the backend class's
    :attr:`~repro.backends.base.Backend.config_options` is copied into the
    constructor keywords (the memory backend picks up ``executor`` this
    way); explicit ``options`` win over config-derived ones.
    """
    config = None
    if not isinstance(name, str):
        config = name
        name = getattr(name, "backend", name)
    if not isinstance(name, str):
        raise ValueError(f"backend must be a name or an EngineConfig, got {name!r}")
    cls = _backend_class(name)
    if config is not None:
        for option in cls.config_options:
            if option not in options and hasattr(config, option):
                options[option] = getattr(config, option)
    return cls(database, **options)
