"""Ordered labelled XML trees with stable node identifiers.

An :class:`XMLTree` is the document abstraction used by the whole library:
the XPath/extended-XPath evaluators walk it, the shredder turns it into
relations, and the GAV view machinery extracts sub-trees from it.  Nodes
carry a label (the element-type name), an optional text value (PCDATA) and a
unique integer id; the shredder derives its ``F``/``T`` node identifiers
from those ids, so identifiers are stable for the lifetime of the tree.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = ["XMLNode", "XMLTree", "build_tree"]


class XMLNode:
    """A single element node.

    Attributes
    ----------
    node_id:
        Unique integer identifier within the tree (document order).
    label:
        Element-type name.
    value:
        Optional text (PCDATA) value; ``None`` when the element has none.
    parent:
        Parent node, or ``None`` for the root.
    children:
        Ordered list of child nodes.
    """

    __slots__ = ("node_id", "label", "value", "parent", "children")

    def __init__(
        self,
        node_id: int,
        label: str,
        value: Optional[str] = None,
        parent: Optional["XMLNode"] = None,
    ) -> None:
        self.node_id = node_id
        self.label = label
        self.value = value
        self.parent = parent
        self.children: List["XMLNode"] = []

    def __repr__(self) -> str:
        return f"XMLNode(id={self.node_id}, label={self.label!r}, value={self.value!r})"

    # Identity semantics: two distinct nodes are never equal even if they have
    # the same label/value, mirroring XML node identity.
    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        return self is other

    def iter_descendants(self) -> Iterator["XMLNode"]:
        """Yield this node and all its descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants_or_self(self) -> List["XMLNode"]:
        """Return this node plus every descendant (document order)."""
        return list(self.iter_descendants())

    def path_from_root(self) -> List[str]:
        """Return the list of labels from the root down to this node."""
        labels: List[str] = []
        node: Optional[XMLNode] = self
        while node is not None:
            labels.append(node.label)
            node = node.parent
        return list(reversed(labels))

    def depth(self) -> int:
        """Depth of the node; the root has depth 1."""
        return len(self.path_from_root())


class XMLTree:
    """An XML document: a root node plus id-indexed access to every node."""

    def __init__(self, root: XMLNode) -> None:
        self._root = root
        self._by_id: Dict[int, XMLNode] = {}
        for node in root.iter_descendants():
            if node.node_id in self._by_id:
                raise ValueError(f"duplicate node id {node.node_id}")
            self._by_id[node.node_id] = node
        self._next_id = max(self._by_id) + 1 if self._by_id else 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(cls, root_label: str, root_value: Optional[str] = None) -> "XMLTree":
        """Create a tree consisting of a single root node."""
        return cls(XMLNode(0, root_label, root_value))

    def add_child(
        self, parent: XMLNode, label: str, value: Optional[str] = None
    ) -> XMLNode:
        """Append a new child with the next free node id and return it."""
        node_id = self._next_id
        self._next_id += 1
        child = XMLNode(node_id, label, value, parent=parent)
        parent.children.append(child)
        self._by_id[node_id] = child
        return child

    # -- mutation ---------------------------------------------------------------

    def insert_child(
        self,
        parent: XMLNode,
        label: str,
        value: Optional[str] = None,
        index: Optional[int] = None,
    ) -> XMLNode:
        """Insert a new child at ``index`` (append when ``None``) and return it.

        The new node gets the next free id; ids of deleted nodes are never
        reused, so a node id names at most one element over the lifetime of
        the tree (the live-update delta machinery relies on this).
        """
        if parent.node_id not in self._by_id or self._by_id[parent.node_id] is not parent:
            raise KeyError(f"node {parent.node_id} is not part of this tree")
        node_id = self._next_id
        self._next_id += 1
        child = XMLNode(node_id, label, value, parent=parent)
        if index is None:
            parent.children.append(child)
        else:
            if index < 0 or index > len(parent.children):
                raise IndexError(
                    f"child index {index} out of range for {len(parent.children)} children"
                )
            parent.children.insert(index, child)
        self._by_id[node_id] = child
        return child

    def remove_subtree(self, node: XMLNode) -> List[XMLNode]:
        """Detach ``node`` (and its subtree) from the tree.

        Returns the removed nodes in document order.  The root cannot be
        removed.  Freed ids are *not* recycled: ``_next_id`` only ever grows.
        """
        if node.node_id not in self._by_id or self._by_id[node.node_id] is not node:
            raise KeyError(f"node {node.node_id} is not part of this tree")
        if node.parent is None:
            raise ValueError("cannot remove the root of the tree")
        removed = node.descendants_or_self()
        node.parent.children.remove(node)
        node.parent = None
        for gone in removed:
            del self._by_id[gone.node_id]
        return removed

    def copy(self) -> "XMLTree":
        """Return a deep copy preserving node ids and child order."""
        new_root = XMLNode(self._root.node_id, self._root.label, self._root.value)
        stack: List[Tuple[XMLNode, XMLNode]] = [(self._root, new_root)]
        while stack:
            old, new = stack.pop()
            for child in old.children:
                clone = XMLNode(child.node_id, child.label, child.value, parent=new)
                new.children.append(clone)
                stack.append((child, clone))
        twin = XMLTree(new_root)
        twin._next_id = self._next_id
        return twin

    # -- accessors --------------------------------------------------------------

    @property
    def root(self) -> XMLNode:
        """The root element."""
        return self._root

    def node(self, node_id: int) -> XMLNode:
        """Return the node with the given id."""
        return self._by_id[node_id]

    def nodes(self) -> List[XMLNode]:
        """All nodes in document order."""
        return list(self._root.iter_descendants())

    def size(self) -> int:
        """Number of element nodes in the document."""
        return len(self._by_id)

    def __len__(self) -> int:
        return self.size()

    def __repr__(self) -> str:
        return f"XMLTree(root={self._root.label!r}, size={self.size()})"

    def labels(self) -> Dict[str, int]:
        """Histogram of element labels (label -> count)."""
        counts: Dict[str, int] = {}
        for node in self._root.iter_descendants():
            counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    def nodes_with_label(self, label: str) -> List[XMLNode]:
        """All nodes carrying the given label, in document order."""
        return [n for n in self._root.iter_descendants() if n.label == label]

    def height(self) -> int:
        """Length (in nodes) of the longest root-to-leaf path."""
        best = 0
        stack: List[Tuple[XMLNode, int]] = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            for child in node.children:
                stack.append((child, depth + 1))
        return best

    # -- serialization ----------------------------------------------------------

    def to_xml(self, indent: int = 2) -> str:
        """Serialize to a simple XML string (for debugging and examples)."""
        lines: List[str] = []

        def emit(node: XMLNode, level: int) -> None:
            pad = " " * (indent * level)
            if not node.children and node.value is None:
                lines.append(f"{pad}<{node.label}/>")
                return
            if not node.children:
                lines.append(f"{pad}<{node.label}>{node.value}</{node.label}>")
                return
            lines.append(f"{pad}<{node.label}>")
            if node.value is not None:
                lines.append(f"{pad}{' ' * indent}{node.value}")
            for child in node.children:
                emit(child, level + 1)
            lines.append(f"{pad}</{node.label}>")

        emit(self._root, 0)
        return "\n".join(lines) + "\n"


# A nested-structure spec: (label, value, [children]) or (label, [children]) or
# just a label string for a leaf.
NodeSpec = Union[str, Tuple]


def build_tree(spec: NodeSpec) -> XMLTree:
    """Build an :class:`XMLTree` from a nested tuple specification.

    Accepted node forms:

    * ``"label"`` — a leaf with no value,
    * ``("label", [child, ...])`` — children only,
    * ``("label", "value")`` — value only,
    * ``("label", "value", [child, ...])`` — both.

    Example
    -------
    >>> tree = build_tree(("dept", [("course", [("cno", "cs66")])]))
    >>> tree.root.label
    'dept'
    """
    counter = [0]

    def parse(node_spec: NodeSpec) -> Tuple[str, Optional[str], List[NodeSpec]]:
        if isinstance(node_spec, str):
            return node_spec, None, []
        if not isinstance(node_spec, tuple) or not node_spec:
            raise ValueError(f"invalid node spec {node_spec!r}")
        label = node_spec[0]
        value: Optional[str] = None
        children: List[NodeSpec] = []
        for part in node_spec[1:]:
            if isinstance(part, list):
                children = part
            elif isinstance(part, str):
                value = part
            else:
                raise ValueError(f"invalid node spec part {part!r} in {node_spec!r}")
        return label, value, children

    label, value, children = parse(spec)
    root = XMLNode(counter[0], label, value)
    counter[0] += 1
    tree = XMLTree(root)

    def attach(parent: XMLNode, specs: Sequence[NodeSpec]) -> None:
        for child_spec in specs:
            child_label, child_value, grand = parse(child_spec)
            child = tree.add_child(parent, child_label, child_value)
            attach(child, grand)

    attach(root, children)
    return tree
