"""Direct evaluation of XPath queries over XML trees (the correctness oracle).

Implements the semantics of Sect. 2.2: ``v[[p]]`` is the set of nodes of the
tree reachable from a context node ``v`` via ``p``; a qualifier ``[q]``
holds at a node when its path is non-empty / its text comparison succeeds /
its boolean combination evaluates to true.

Whole-document queries are evaluated at a *virtual root* whose only child is
the document root, so a query such as ``dept//project`` first matches the
document root by label (exactly as in the paper's examples, where the query
starts with the root element type).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.xpath.ast import (
    And,
    Descendant,
    EmptyPath,
    EmptySet,
    Label,
    Not,
    Or,
    Path,
    PathQual,
    Qualified,
    Qualifier,
    Slash,
    TextEquals,
    Union,
    Wildcard,
)
from repro.xmltree.tree import XMLNode, XMLTree

__all__ = ["XPathEvaluator", "evaluate_xpath"]


class XPathEvaluator:
    """Evaluate XPath queries over a fixed XML tree.

    The evaluator caches nothing across queries other than the tree itself;
    it favours clarity over speed since it is the oracle the translated SQL
    is compared against.
    """

    def __init__(self, tree: XMLTree) -> None:
        self._tree = tree

    # -- public API -------------------------------------------------------------

    def evaluate(self, path: Path) -> List[XMLNode]:
        """Evaluate ``path`` at the virtual root; returns nodes in document order.

        The virtual root has the document root as its only child, so a
        top-level query beginning with the root element's label matches the
        document root itself.
        """
        result = self._eval_at_virtual_root(path)
        return sorted(result, key=lambda node: node.node_id)

    def evaluate_at(self, node: XMLNode, path: Path) -> List[XMLNode]:
        """Evaluate ``path`` with ``node`` as the context node."""
        return sorted(self._eval(path, {node}), key=lambda n: n.node_id)

    def satisfies(self, node: XMLNode, qualifier: Qualifier) -> bool:
        """Return True when ``qualifier`` holds at ``node``."""
        return self._holds(qualifier, node)

    # -- internals --------------------------------------------------------------

    def _eval_at_virtual_root(self, path: Path) -> Set[XMLNode]:
        root = self._tree.root
        if isinstance(path, EmptySet):
            return set()
        if isinstance(path, EmptyPath):
            # The virtual root itself is not a document node; the empty path
            # over a whole document conventionally denotes the document root.
            return {root}
        if isinstance(path, Label):
            return {root} if root.label == path.name else set()
        if isinstance(path, Wildcard):
            return {root}
        if isinstance(path, Slash):
            left = self._eval_at_virtual_root(path.left)
            return self._eval(path.right, left)
        if isinstance(path, Descendant):
            # Descendants-or-self of the virtual root = every document node.
            context = set(self._tree.nodes())
            return self._eval(path.inner, context)
        if isinstance(path, Union):
            return self._eval_at_virtual_root(path.left) | self._eval_at_virtual_root(
                path.right
            )
        if isinstance(path, Qualified):
            nodes = self._eval_at_virtual_root(path.path)
            return {node for node in nodes if self._holds(path.qualifier, node)}
        raise TypeError(f"unknown path expression {path!r}")

    def _eval(self, path: Path, context: Set[XMLNode]) -> Set[XMLNode]:
        if not context:
            return set()
        if isinstance(path, EmptySet):
            return set()
        if isinstance(path, EmptyPath):
            return set(context)
        if isinstance(path, Label):
            return {
                child
                for node in context
                for child in node.children
                if child.label == path.name
            }
        if isinstance(path, Wildcard):
            return {child for node in context for child in node.children}
        if isinstance(path, Slash):
            return self._eval(path.right, self._eval(path.left, context))
        if isinstance(path, Descendant):
            expanded: Set[XMLNode] = set()
            for node in context:
                expanded.update(node.iter_descendants())
            return self._eval(path.inner, expanded)
        if isinstance(path, Union):
            return self._eval(path.left, context) | self._eval(path.right, context)
        if isinstance(path, Qualified):
            nodes = self._eval(path.path, context)
            return {node for node in nodes if self._holds(path.qualifier, node)}
        raise TypeError(f"unknown path expression {path!r}")

    def _holds(self, qualifier: Qualifier, node: XMLNode) -> bool:
        if isinstance(qualifier, PathQual):
            return bool(self._eval(qualifier.path, {node}))
        if isinstance(qualifier, TextEquals):
            return node.value == qualifier.value
        if isinstance(qualifier, Not):
            return not self._holds(qualifier.inner, node)
        if isinstance(qualifier, And):
            return self._holds(qualifier.left, node) and self._holds(qualifier.right, node)
        if isinstance(qualifier, Or):
            return self._holds(qualifier.left, node) or self._holds(qualifier.right, node)
        raise TypeError(f"unknown qualifier {qualifier!r}")


def evaluate_xpath(tree: XMLTree, path: Path) -> List[XMLNode]:
    """Evaluate ``path`` over ``tree`` at the virtual root (document order)."""
    return XPathEvaluator(tree).evaluate(path)
