"""Tests for the pluggable execution backends."""

import pytest

from repro.backends import (
    BACKENDS,
    MemoryBackend,
    SqliteBackend,
    backend_names,
    create_backend,
    normalize_rows,
    sqlite_schema_ddl,
)
from repro.backends.base import BackendResult
from repro.core.optimize import push_selection_options
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.errors import ExecutionError
from repro.relational.schema import T


class TestRegistry:
    def test_both_backends_registered(self):
        assert backend_names() == ["memory", "sqlite"]
        assert BACKENDS["memory"] is MemoryBackend
        assert BACKENDS["sqlite"] is SqliteBackend

    def test_create_backend_by_name(self, dept_shredded):
        backend = create_backend("memory", dept_shredded.database)
        assert isinstance(backend, MemoryBackend)
        with create_backend("sqlite", dept_shredded.database) as backend:
            assert isinstance(backend, SqliteBackend)

    def test_unknown_backend_rejected(self, dept_shredded):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("duckdb", dept_shredded.database)


class TestNormalization:
    def test_ints_and_strings_collapse(self):
        assert normalize_rows({(5, 7, "_")}) == normalize_rows({("5", "7", "_")})

    def test_result_node_ids_come_from_t_column(self):
        result = BackendResult(
            backend="memory",
            columns=("F", "T", "V"),
            rows=frozenset({("1", "2", "x"), ("1", "3", "y")}),
        )
        assert result.node_ids() == {"2", "3"}
        assert result.row_count == 2


class TestSqliteDDL:
    def test_one_table_per_relation_plus_identity_view(self, dept_shredded):
        statements = sqlite_schema_ddl(dept_shredded.database.schema)
        tables = [s for s in statements if s.startswith("CREATE TABLE")]
        assert len(tables) == len(dept_shredded.database.schema.relation_names)
        assert any("ALL_NODES" in s for s in statements)
        indexes = [s for s in statements if s.startswith("CREATE INDEX")]
        # One index per join column (F and T) per relation.
        assert len(indexes) == 2 * len(tables)


class TestSqliteExecution:
    def test_matches_memory_on_recursive_query(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        program = translator.translate("dept//project").program
        memory = MemoryBackend(dept_shredded.database)
        with SqliteBackend(dept_shredded.database) as sqlite:
            assert sqlite.execute(program).rows == memory.execute(program).rows

    def test_matches_direct_answer_path(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        expected = {
            node.node_id for node in translator.answer("dept//project", dept_shredded)
        }
        program = translator.translate("dept//project").program
        with SqliteBackend(dept_shredded.database) as sqlite:
            actual = {int(t) for t in sqlite.answer_node_ids(program)}
        assert actual == expected

    def test_pushed_selections_agree(self, cross_dtd, cross_shredded):
        """Anchored fixpoints (incl. the backward case) execute correctly."""
        translator = XPathToSQLTranslator(cross_dtd, options=push_selection_options())
        memory = MemoryBackend(cross_shredded.database)
        with SqliteBackend(cross_shredded.database) as sqlite:
            for query in ('a/b[text() = "b-0"]//c/d', 'a/b//c/d[text() = "d-0"]'):
                program = translator.translate(query).program
                assert sqlite.execute(program).rows == memory.execute(program).rows

    def test_recursive_union_strategy_agrees(self, cross_dtd, cross_shredded):
        translator = XPathToSQLTranslator(
            cross_dtd, strategy=DescendantStrategy.RECURSIVE_UNION
        )
        program = translator.translate("a/b//c/d").program
        memory = MemoryBackend(cross_shredded.database)
        with SqliteBackend(cross_shredded.database) as sqlite:
            assert sqlite.execute(program).rows == memory.execute(program).rows

    def test_backend_is_reusable_across_programs(self, cross_dtd, cross_shredded):
        """Temp tables are dropped, so one backend serves many executions."""
        translator = XPathToSQLTranslator(cross_dtd)
        first = translator.translate("a//d").program
        second = translator.translate("a/b//c/d").program
        with SqliteBackend(cross_shredded.database) as sqlite:
            one = sqlite.execute(first)
            two = sqlite.execute(second)
            again = sqlite.execute(first)
        assert one.rows == again.rows
        assert one.rows != two.rows or one.row_count == two.row_count

    def test_stats_report_rows_and_wall_time(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        program = translator.translate("dept//project").program
        with SqliteBackend(dept_shredded.database) as sqlite:
            result = sqlite.execute(program)
        assert result.stats["rows"] == result.row_count
        assert result.stats["elapsed_seconds"] >= 0
        assert result.stats["temporaries_evaluated"] >= 1

    def test_closed_backend_raises(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        program = translator.translate("dept//project").program
        backend = SqliteBackend(dept_shredded.database)
        backend.close()
        with pytest.raises(ExecutionError, match="closed"):
            backend.execute(program)

    def test_memory_backend_reports_executor_stats(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        program = translator.translate("dept//project").program
        result = MemoryBackend(dept_shredded.database).execute(program)
        assert result.backend == "memory"
        assert result.stats["rows"] == result.row_count
        assert "fixpoint_iterations" in result.stats
        assert result.columns[-2] == T or T in result.columns


class TestIdentifierQuoting:
    def test_hyphenated_element_names_execute_on_sqlite(self):
        """DTD names may contain '-' (e.g. GedML); rendered SQL must quote them."""
        from repro.dtd.parser import parse_dtd
        from repro.xmltree.generator import generate_document

        dtd = parse_dtd(
            "root event-log\n"
            "event-log -> event-date*\n"
            "event-date -> event-date*\n",
            name="hyphens",
        )
        tree = generate_document(dtd, x_l=5, x_r=2, seed=1, max_elements=100)
        translator = XPathToSQLTranslator(dtd)
        shredded = translator.shred(tree)
        program = translator.translate("event-log//event-date").program
        memory = MemoryBackend(shredded.database)
        with SqliteBackend(shredded.database) as sqlite:
            assert sqlite.execute(program).rows == memory.execute(program).rows
