"""Differential testing: every workload query, every backend, same answers.

The central invariant of the paper is ``Q(T) = Q'(tau_d(T))``; the seed
repository checks it between the direct XPath evaluator and the in-memory
relational engine.  This module extends the check across *execution
backends*: every query from :mod:`repro.workloads.queries` is translated
once and executed on every registered backend over generated documents
(recursive and non-recursive DTDs alike), and the answer sets must be
identical tuple-for-tuple.  Each distinct (DTD, document) pair is shredded
exactly once per sweep — see :meth:`DifferentialSpec.document_key` — no
matter how many specs, strategies or queries consume it.

Usage::

    from repro.backends.differential import default_specs, run_differential
    outcomes = run_differential(default_specs(max_elements=400))
    assert all(o.matched for o in outcomes)

``python -m repro.backends.differential`` runs the default sweep and prints
one line per (document, query, backend pair).

Specs are not limited to the fixed workloads: a spec can carry an explicit
pre-built ``document`` (any :class:`~repro.xmltree.tree.XMLTree`), and
:meth:`repro.fuzz.cases.FuzzCase.to_differential_spec` converts a generated
fuzz case into a spec, so randomized workloads run through the very same
backend-vs-backend comparison.  The richer evaluator-vs-everything oracle
lives in :mod:`repro.fuzz.oracle`.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.config import EngineConfig, resolve_engine_config
from repro.backends import backend_names, create_backend
from repro.backends.base import BackendResult
from repro.core.expath_to_sql import TranslationOptions
from repro.core.optimize import push_selection_options
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.core.plancache import dtd_fingerprint
from repro.dtd import samples
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.shredding.shredder import ShreddedDocument, shred_document
from repro.workloads.queries import (
    BIOML_CASES,
    CROSS_QUERIES,
    DEPT_QUERIES,
    GEDML_QUERY,
    SCALABILITY_QUERY,
    SELECTIVE_QUERIES,
)
from repro.xmltree.generator import generate_document
from repro.xmltree.tree import XMLTree

__all__ = [
    "DifferentialSpec",
    "DifferentialOutcome",
    "default_specs",
    "non_recursive_dtd",
    "run_differential",
    "assert_backends_agree",
    "main",
]


@dataclass(frozen=True)
class DifferentialSpec:
    """One differential scenario: a DTD, a document and its queries.

    The document is either described by shape knobs (``x_l``/``x_r``/
    ``seed``/``max_elements``/``distinct_values``, fed to the synthetic
    generator) or passed in ready-made via ``document`` — which is how
    *generated* workloads (fuzz cases, external corpora) enter the same
    sweep as the fixed paper workloads.

    Engine knobs resolve through :class:`~repro.api.EngineConfig` (see
    :meth:`engine_config`): pass ``config`` directly, or keep using the
    legacy ``strategy``/``options``/``optimize_level`` fields — they are
    folded into one config, so a knob added to :class:`EngineConfig` is
    picked up here without another field.
    """

    label: str
    dtd: DTD
    queries: Mapping[str, str]
    strategy: Optional[DescendantStrategy] = None
    options: Optional[TranslationOptions] = None
    x_l: int = 8
    x_r: int = 3
    seed: int = 5
    max_elements: int = 400
    distinct_values: int = 100
    document: Optional[XMLTree] = None
    optimize_level: Optional[int] = None
    config: Optional[EngineConfig] = None

    def engine_config(self) -> EngineConfig:
        """The spec's engine knobs as one resolved :class:`EngineConfig`."""
        return resolve_engine_config(
            self.config,
            strategy=self.strategy,
            options=self.options,
            optimize_level=self.optimize_level,
        )

    def materialize(self) -> XMLTree:
        """The spec's document: the explicit one, or a generated one."""
        if self.document is not None:
            return self.document
        return generate_document(
            self.dtd,
            x_l=self.x_l,
            x_r=self.x_r,
            seed=self.seed,
            max_elements=self.max_elements,
            distinct_values=self.distinct_values,
        )

    def document_key(self) -> Tuple[object, ...]:
        """Identity of the spec's shredded document.

        Shredding depends only on the DTD and the document — never on the
        strategy or options — so specs that differ only in translation
        configuration (e.g. ``cross`` vs ``cross-R``) share one key, and
        the sweep shreds their document exactly once.
        """
        if self.document is not None:
            return ("explicit", dtd_fingerprint(self.dtd), id(self.document))
        return (
            "generated",
            dtd_fingerprint(self.dtd),
            self.x_l,
            self.x_r,
            self.seed,
            self.max_elements,
            self.distinct_values,
        )


@dataclass(frozen=True)
class DifferentialOutcome:
    """The comparison of one query between the reference backend and another."""

    spec: str
    query_name: str
    query: str
    reference_backend: str
    candidate_backend: str
    reference_rows: int
    candidate_rows: int
    matched: bool
    missing_node_ids: Tuple[str, ...] = ()
    extra_node_ids: Tuple[str, ...] = ()

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "OK" if self.matched else "MISMATCH"
        line = (
            f"{status:8s} {self.spec} {self.query_name} "
            f"[{self.reference_backend} vs {self.candidate_backend}]: "
            f"{self.reference_rows} vs {self.candidate_rows} rows"
        )
        if not self.matched:
            line += (
                f" (missing={list(self.missing_node_ids)[:5]}"
                f" extra={list(self.extra_node_ids)[:5]})"
            )
        return line


def non_recursive_dtd() -> DTD:
    """A small non-recursive DTD (the acceptance suite needs one)."""
    return parse_dtd(
        "root library\n"
        "library -> shelf*\n"
        "shelf -> book*\n"
        "book -> title, author*\n"
        "title -> EMPTY #text\n"
        "author -> EMPTY #text\n",
        name="library",
    )


NON_RECURSIVE_QUERIES: Dict[str, str] = {
    "NR1": "library//title",
    "NR2": "library/shelf/book/author",
    "NR3": "library//book[author]/title",
}


def default_specs(max_elements: int = 400) -> List[DifferentialSpec]:
    """The default sweep: every workload query plus the non-recursive DTD.

    Covers all of :mod:`repro.workloads.queries`: Q1/Q2 over dept, Qa–Qd and
    the scalability query over cross, Qe/Qf (with selections pushed into
    the LFP, exercising anchored fixpoints), the seven BIOML cases, the
    GedML query — each under CycleEX — plus Qa–Qd again under the SQLGen-R
    recursive-union strategy (exercising the SQL'99 ``WITH RECURSIVE``
    translation) and a non-recursive document.
    """
    specs = [
        DifferentialSpec(
            "dept", samples.dept_dtd(), dict(DEPT_QUERIES), max_elements=max_elements
        ),
        DifferentialSpec(
            "cross",
            samples.cross_dtd(),
            {**CROSS_QUERIES, "Qs": SCALABILITY_QUERY},
            max_elements=max_elements,
        ),
        DifferentialSpec(
            "cross-R",
            samples.cross_dtd(),
            dict(CROSS_QUERIES),
            strategy=DescendantStrategy.RECURSIVE_UNION,
            max_elements=max_elements,
        ),
        DifferentialSpec(
            "cross-push",
            samples.cross_dtd(),
            {
                # Qe selects on b's text, Qf on d's; the generator names
                # values "<label>-<k>" so "-0" always exists.
                name: template.format(value=f"{label}-0")
                for (name, template), label in zip(
                    sorted(SELECTIVE_QUERIES.items()), ("b", "d")
                )
            },
            options=push_selection_options(),
            max_elements=max_elements,
        ),
        DifferentialSpec(
            "gedml",
            samples.gedml_dtd(),
            {"Qg": GEDML_QUERY},
            max_elements=max_elements,
        ),
        DifferentialSpec(
            "library",
            non_recursive_dtd(),
            dict(NON_RECURSIVE_QUERIES),
            max_elements=max_elements,
        ),
    ]
    for case in BIOML_CASES:
        specs.append(
            DifferentialSpec(
                f"bioml-{case.name}",
                case.dtd(),
                {case.name: case.query},
                max_elements=max_elements,
            )
        )
    return specs


def run_differential(
    specs: Optional[Sequence[DifferentialSpec]] = None,
    backends: Optional[Sequence[str]] = None,
) -> List[DifferentialOutcome]:
    """Run every spec's queries on every backend; compare against the first.

    The first backend in ``backends`` (default: all registered, i.e.
    ``memory`` first) is the reference; each other backend's normalized
    answer set is compared tuple-for-tuple against it.
    """
    specs = list(default_specs() if specs is None else specs)
    names = list(backends or backend_names())
    if len(names) < 2:
        raise ValueError("differential testing needs at least two backends")
    reference_name, candidate_names = names[0], names[1:]

    # Shred each distinct (DTD, document) once for the whole sweep: specs
    # that vary only the translation configuration reuse the same
    # ShreddedDocument instead of silently re-shredding per spec.
    shredded_documents: Dict[Tuple[object, ...], ShreddedDocument] = {}

    outcomes: List[DifferentialOutcome] = []
    for spec in specs:
        document_key = spec.document_key()
        shredded = shredded_documents.get(document_key)
        if shredded is None:
            shredded = shred_document(spec.materialize(), spec.dtd)
            shredded_documents[document_key] = shredded
        spec_config = spec.engine_config()
        translator = XPathToSQLTranslator(spec.dtd, config=spec_config)
        # The raw-lowering sentinel: the same queries translated with the
        # program optimizer off.  Comparing its results (on the reference
        # backend) against the optimized program's confirms the optimizer
        # rewrites are result-invariant on every sweep.  Skipped when the
        # spec itself pins level 0 — the comparison would be tautological.
        raw_translator = (
            None
            if spec_config.optimize_level == 0
            else XPathToSQLTranslator(
                spec.dtd, config=spec_config.with_(optimize_level=0)
            )
        )
        reference = create_backend(reference_name, shredded.database)
        candidates = [
            create_backend(name, shredded.database) for name in candidate_names
        ]
        try:
            for query_name, query in spec.queries.items():
                program = translator.translate(query).program
                expected = reference.execute(program)
                for candidate in candidates:
                    actual = candidate.execute(program)
                    outcomes.append(_compare(spec, query_name, query, expected, actual))
                if raw_translator is not None:
                    raw_program = raw_translator.translate(query).program
                    raw_result = reference.execute(raw_program)
                    outcomes.append(
                        _compare(
                            spec,
                            f"{query_name}/O0",
                            query,
                            raw_result,
                            expected,
                            candidate_label=f"{reference_name}/optimized",
                        )
                    )
        finally:
            reference.close()
            for candidate in candidates:
                candidate.close()
    return outcomes


def _compare(
    spec: DifferentialSpec,
    query_name: str,
    query: str,
    expected: BackendResult,
    actual: BackendResult,
    candidate_label: Optional[str] = None,
) -> DifferentialOutcome:
    matched = expected.rows == actual.rows
    missing: Tuple[str, ...] = ()
    extra: Tuple[str, ...] = ()
    if not matched:
        expected_ids, actual_ids = expected.node_ids(), actual.node_ids()
        missing = tuple(sorted(expected_ids - actual_ids))
        extra = tuple(sorted(actual_ids - expected_ids))
    return DifferentialOutcome(
        spec=spec.label,
        query_name=query_name,
        query=query,
        reference_backend=expected.backend,
        candidate_backend=candidate_label or actual.backend,
        reference_rows=expected.row_count,
        candidate_rows=actual.row_count,
        matched=matched,
        missing_node_ids=missing,
        extra_node_ids=extra,
    )


def assert_backends_agree(outcomes: Sequence[DifferentialOutcome]) -> None:
    """Raise :class:`AssertionError` describing every mismatched outcome."""
    mismatches = [outcome for outcome in outcomes if not outcome.matched]
    if mismatches:
        lines = "\n".join(outcome.describe() for outcome in mismatches)
        raise AssertionError(
            f"{len(mismatches)}/{len(outcomes)} differential case(s) disagree:\n{lines}"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Run the default sweep and print one line per comparison."""
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in argv
    outcomes = run_differential(default_specs(max_elements=200 if quick else 400))
    for outcome in outcomes:
        print(outcome.describe())
    mismatched = sum(1 for outcome in outcomes if not outcome.matched)
    print(f"{len(outcomes) - mismatched}/{len(outcomes)} comparisons agree")
    return 1 if mismatched else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
