"""Unit tests for program-level optimisations and option presets."""

import pytest

from repro.core.optimize import (
    baseline_options,
    eliminate_common_subexpressions,
    push_selection_options,
    standard_options,
)
from repro.core.pipeline import XPathToSQLTranslator
from repro.dtd import samples
from repro.relational.algebra import Assignment, Compose, Program, Scan, Select, Condition
from repro.relational.executor import execute_program
from repro.relational.schema import T as T_COLUMN
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath


class TestOptionPresets:
    def test_baseline_disables_everything(self):
        options = baseline_options()
        assert not options.use_small_seed
        assert not options.push_selections

    def test_standard_enables_small_seed_only(self):
        options = standard_options()
        assert options.use_small_seed
        assert not options.push_selections

    def test_push_enables_both(self):
        options = push_selection_options()
        assert options.use_small_seed
        assert options.push_selections


class TestCommonSubexpressionElimination:
    def test_duplicate_assignments_merged(self):
        program = Program(
            [
                Assignment("T1", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("T2", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("T3", Compose(Scan("T1"), Scan("T2"))),
            ],
            Scan("T3"),
        )
        optimized = eliminate_common_subexpressions(program)
        assert len(optimized) == 2
        # T2's uses must have been redirected to T1.
        rewritten = optimized.expression_for("T3")
        assert str(rewritten) == "(T1 . T1)"

    def test_distinct_assignments_kept(self):
        program = Program(
            [
                Assignment("T1", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("T2", Compose(Scan("R_b"), Scan("R_a"))),
            ],
            Compose(Scan("T1"), Scan("T2")),
        )
        optimized = eliminate_common_subexpressions(program)
        assert len(optimized) == 2

    def test_chained_duplicates_collapse_transitively(self):
        program = Program(
            [
                Assignment("A1", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("A2", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("B1", Select(Scan("A1"), (Condition("F", "=", "_"),))),
                Assignment("B2", Select(Scan("A2"), (Condition("F", "=", "_"),))),
            ],
            Compose(Scan("B1"), Scan("B2")),
        )
        optimized = eliminate_common_subexpressions(program)
        assert len(optimized) == 2

    def test_semantics_preserved_on_real_translation(self, dept_dtd, dept_tree, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        result = translator.translate("dept//student/qualified//course")
        optimized = eliminate_common_subexpressions(result.program)
        assert len(optimized) <= len(result.program)
        original_rows, _ = execute_program(dept_shredded.database, result.program)
        optimized_rows, _ = execute_program(dept_shredded.database, optimized)
        assert original_rows.rows == optimized_rows.rows

    def test_cse_reduces_size_when_same_rec_used_twice(self, cross_dtd):
        translator = XPathToSQLTranslator(cross_dtd)
        result = translator.translate("a//d | a//c")
        optimized = eliminate_common_subexpressions(result.program)
        assert len(optimized) <= len(result.program)


class TestPushSelectionEffect:
    def test_push_reduces_fixpoint_work(self, cross_dtd, cross_tree, cross_shredded):
        query = 'a/b[text() = "b-0"]//c/d'
        pushed = XPathToSQLTranslator(cross_dtd, options=push_selection_options())
        plain = XPathToSQLTranslator(cross_dtd, options=standard_options())
        _, push_stats = pushed.execute(query, cross_shredded)
        _, plain_stats = plain.execute(query, cross_shredded)
        assert push_stats.tuples_materialized <= plain_stats.tuples_materialized

    def test_push_and_plain_agree(self, cross_dtd, cross_tree, cross_shredded):
        query = 'a/b//c/d[text() = "d-1"]'
        expected = {n.node_id for n in evaluate_xpath(cross_tree, parse_xpath(query))}
        for options in (standard_options(), push_selection_options(), baseline_options()):
            translator = XPathToSQLTranslator(cross_dtd, options=options)
            got = {n.node_id for n in translator.answer(query, cross_shredded)}
            assert got == expected
