"""The HTTP front end: routes, error statuses, and the verifying loadtest."""

from __future__ import annotations

import http.client
import json
import multiprocessing
import threading

import pytest

from repro.dtd import samples
from repro.fuzz.cases import DocumentSpec
from repro.service import ProcessQueryService, QueryService
from repro.service.http import QueryHTTPServer, run_loadtest
from repro.xmltree.generator import generate_document

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="http tests use the fork start method for speed",
)

DOC_SPEC = DocumentSpec(max_elements=200, seed=4)


@pytest.fixture(scope="module")
def server():
    """One live server for the whole module: (host, port, pool)."""
    dtd = samples.cross_dtd()
    pool = ProcessQueryService(
        dtd, workers=2, replicas=2, start_method="fork", warmup=["a//d"]
    )
    pool.register_generated("doc0", DOC_SPEC)
    pool.register_document(
        "tree-doc", generate_document(dtd, seed=9, max_elements=120)
    )
    http_server = QueryHTTPServer(pool, port=0)
    ready = threading.Event()
    bound = {}

    def _ready(url: str) -> None:
        bound["url"] = url
        ready.set()

    thread = threading.Thread(
        target=http_server.run, kwargs={"ready": _ready}, daemon=True
    )
    thread.start()
    assert ready.wait(10), "server did not come up"
    yield http_server.host, http_server.port, pool
    http_server.request_stop()
    thread.join(10)
    pool.close()


def _request(server, method, path, payload=None):
    host, port, _pool = server
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else None
    finally:
        connection.close()


@pytest.fixture(scope="module")
def oracle():
    dtd = samples.cross_dtd()
    service = QueryService(dtd)
    service.register_document("doc0", DOC_SPEC.generate(dtd))
    yield service
    service.close()


class TestRoutes:
    def test_healthz(self, server):
        assert _request(server, "GET", "/healthz") == (200, {"status": "ok"})

    def test_answer_matches_serial_oracle(self, server, oracle):
        status, payload = _request(
            server, "POST", "/answer", {"query": "a//d", "document": "doc0"}
        )
        assert status == 200
        expected = [node.node_id for node in oracle.answer("a//d", "doc0")]
        assert payload["node_ids"] == expected
        assert payload["count"] == len(expected)
        assert len(payload["labels"]) == len(expected)

    def test_answer_without_nodes_ships_ids_only(self, server):
        status, payload = _request(
            server,
            "POST",
            "/answer",
            {"query": "a//d", "document": "doc0", "include_nodes": False},
        )
        assert status == 200
        assert "labels" not in payload and "values" not in payload
        assert payload["node_ids"]

    def test_batch_preserves_order(self, server, oracle):
        queries = ["a//d", "a", "a//c"]
        status, payload = _request(
            server, "POST", "/batch", {"queries": queries, "document": "doc0"}
        )
        assert status == 200
        assert [answer["query"] for answer in payload["answers"]] == queries
        for answer in payload["answers"]:
            expected = [
                node.node_id for node in oracle.answer(answer["query"], "doc0")
            ]
            assert answer["node_ids"] == expected

    def test_stats_merges_pool_and_http(self, server):
        _request(server, "POST", "/answer", {"query": "a//d", "document": "doc0"})
        status, payload = _request(server, "GET", "/stats")
        assert status == 200
        assert payload["http"]["http.requests"]["value"] >= 1
        assert payload["pool"]["workers"] == 2
        assert payload["pool"]["metrics"]["service.queries"]["value"] >= 1

    def test_meta_carries_recipes_for_generated_documents(self, server):
        status, payload = _request(server, "GET", "/meta")
        assert status == 200
        assert payload["dtd_name"] == "cross"
        assert "a" in payload["dtd_text"]  # grammar text is present
        assert payload["config"]["backend"] == "memory"
        assert payload["documents"]["doc0"]["max_elements"] == 200
        assert payload["documents"]["tree-doc"] is None  # no recipe for trees


class TestErrorStatuses:
    def test_syntax_error_is_400(self, server):
        status, payload = _request(
            server, "POST", "/answer", {"query": "a//", "document": "doc0"}
        )
        assert status == 400
        assert payload["error"] == "XPathSyntaxError"

    def test_unknown_document_is_404(self, server):
        status, payload = _request(
            server, "POST", "/answer", {"query": "a//d", "document": "nope"}
        )
        assert status == 404
        assert payload["error"] == "UnknownDocumentError"

    def test_missing_query_is_400(self, server):
        status, payload = _request(server, "POST", "/answer", {})
        assert status == 400
        assert payload["error"] == "BadRequest"

    def test_unroutable_path_is_404(self, server):
        status, payload = _request(server, "GET", "/nope")
        assert status == 404

    def test_malformed_json_is_400(self, server):
        host, port, _pool = server
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("POST", "/answer", body="not json")
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["error"] == "BadRequest"
        finally:
            connection.close()


class TestLoadtest:
    def test_verified_loadtest_reports_zero_mismatches(self, server):
        host, port, _pool = server
        report = run_loadtest(
            host, port, budget=60, concurrency=8, seed=3, query_pool=15
        )
        assert report["ok"] is True
        assert report["requests"] == 60
        assert report["failures"] == 0 and report["mismatches"] == 0
        assert report["verified"] is True
        assert report["documents"] == 1  # tree-doc has no recipe: skipped
        assert report["rps"] > 0
        assert report["p50_ms"] is not None and report["p99_ms"] is not None
        json.dumps(report)  # the CLI prints it verbatim

    def test_unverified_loadtest_still_counts_requests(self, server):
        host, port, _pool = server
        report = run_loadtest(
            host, port, budget=10, concurrency=2, seed=5, verify=False
        )
        assert report["requests"] == 10
        assert report["verified"] is False
        # without an oracle every registered document is fair game
        assert report["documents"] == 2
