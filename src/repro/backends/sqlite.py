"""The SQLite backend: run translated SQL for real on an RDBMS.

This is the strongest correctness check in the repository: the paper's
claim is that XPath over recursive DTDs translates to *ordinary SQL with a
low-end recursion operator*, and SQLite's ``WITH RECURSIVE`` is exactly
such an operator.  The backend

1. generates DDL from a :class:`~repro.relational.schema.DatabaseSchema`
   (one ``TEXT``-columned table per relation, indexes on the join columns,
   plus the ``ALL_NODES`` view backing the identity relation ``R_id``);
2. bulk-loads the shredded document through ``executemany`` — once, at
   construction time; the connection then persists for the backend's
   lifetime, which is what lets a serving layer keep a loaded store warm;
3. executes each program assignment as a ``CREATE TEMPORARY TABLE ... AS``
   statement rendered in the :data:`~repro.relational.sqlgen.SQLDialect.SQLITE`
   dialect, then fetches the result SELECT.

Concurrency: the default in-memory database is opened in SQLite's
shared-cache mode under a unique URI, and every thread that touches the
backend lazily gets its *own* connection to it.  Connections are never
shared across threads (sidestepping "recursive use of cursors" and
cross-thread errors wholesale), temporary tables are per-connection so
parallel queries cannot collide, and the loaded base tables are only ever
read after construction.

Prepared execution (:meth:`SqliteBackend.prepare` /
:meth:`SqliteBackend.execute_prepared`) renders the statement list once per
plan.  SQLite cannot parameterise DDL, so per-call temp-table creation
remains, but repeated calls skip pruning, SQL generation and the per-
temporary ``COUNT(*)`` instrumentation — the per-query churn the one-shot
:meth:`SqliteBackend.execute` path pays.

Results come back normalized (SQLite's TEXT affinity makes everything a
string anyway), so they compare directly against
:class:`~repro.backends.memory.MemoryBackend` output.
"""

from __future__ import annotations

import itertools
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids a cycle)
    from repro.live.delta import ShredDelta

from repro import obs
from repro.backends.base import Backend, BackendResult, PreparedProgram, normalize_rows
from repro.errors import ExecutionError
from repro.relational.algebra import Program
from repro.relational.database import Database
from repro.relational.schema import DOC_ORDER, DatabaseSchema, F, NODE_COLUMNS, PRE, T, V
from repro.relational.sqlgen import (
    EMISSION_MODES,
    FUSED_SCAN_LIMIT,
    SQLDialect,
    fused_scan_count,
    program_statements,
    program_to_single_sql,
    quote_identifier,
)

__all__ = ["SqliteBackend", "sqlite_schema_ddl", "IDENTITY_VIEW"]

# Name of the view the SQL renderer scans for the identity relation R_id.
IDENTITY_VIEW = "ALL_NODES"


def _quoted(name: str) -> str:
    """Unconditionally quote an identifier for generated DDL/DML.

    Relation names come from DTD element names, which may contain ``-`` or
    ``.`` (and, via custom mappings, in principle anything) — every
    identifier in generated DDL/DML goes through the one shared escaper.
    """
    return quote_identifier(name, always=True)


def sqlite_schema_ddl(schema: DatabaseSchema) -> List[str]:
    """DDL statements creating ``schema``'s tables, indexes and R_id view.

    Every column is ``TEXT`` (node ids and the ``'_'`` sentinels live in the
    same columns); the ``F``/``T`` columns get indexes because every join
    and every recursive step probes them.  The ``ALL_NODES`` view unions the
    node relations so ``IdentityRelation`` renders against a real object.
    """
    statements: List[str] = []
    for name in schema.relation_names:
        relation = schema.relation(name)
        # The DOC_ORDER ranks must compare numerically — TEXT affinity would
        # make '10' < '9' and silently break the interval range predicate.
        numeric = set(relation.columns) - {T} if name == DOC_ORDER else set()
        columns = ", ".join(
            f"{_quoted(column)} {'INTEGER' if column in numeric else 'TEXT'}"
            for column in relation.columns
        )
        statements.append(f"CREATE TABLE {_quoted(name)} ({columns})")
        index_columns = (T, PRE) if name == DOC_ORDER else (F, T)
        for column in index_columns:
            if relation.has_column(column):
                statements.append(
                    f"CREATE INDEX {_quoted(f'idx_{name}_{column}')} "
                    f"ON {_quoted(name)} ({_quoted(column)})"
                )
    node_selects = [
        f"SELECT {F}, {T}, {V} FROM {_quoted(name)}"
        for name in schema.node_relations
        if tuple(schema.relation(name).columns) == NODE_COLUMNS
    ]
    if node_selects:
        body = "\nUNION\n".join(node_selects)
    else:
        body = f"SELECT '' AS {F}, '' AS {T}, '' AS {V} WHERE 0"
    statements.append(f"CREATE VIEW {IDENTITY_VIEW} ({F}, {T}, {V}) AS\n{body}")
    return statements


@dataclass(frozen=True)
class _SqlitePlan:
    """The precomputed payload of a prepared program: rendered statements."""

    statements: Tuple[str, ...]
    targets: Tuple[str, ...]


class SqliteBackend(Backend):
    """Execute translated programs on SQLite.

    Parameters
    ----------
    database:
        The shredded database; its schema is turned into DDL and its
        relations bulk-loaded at construction time.
    path:
        SQLite database path.  The default ``":memory:"`` becomes a unique
        shared-cache in-memory database so per-thread connections all see
        the same loaded tables.
    emission:
        ``"multi"`` (default) runs one statement per assignment plus the
        result SELECT; ``"single"`` fuses the whole program into one
        ``WITH RECURSIVE`` statement, so every query round-trips to SQLite
        exactly once and needs no temp-table DDL or teardown.
    """

    name = "sqlite"
    dialect = SQLDialect.SQLITE
    config_options = ("emission",)
    # Shared-cache URIs embed the pid and sqlite3 connections cannot cross a
    # fork/spawn boundary: instances are process-local and must be rebuilt in
    # each worker (the pool's worker initializers key off this flag).
    process_affine = True

    _instance_ids = itertools.count()

    def __init__(
        self, database: Database, path: str = ":memory:", emission: str = "multi"
    ) -> None:
        super().__init__(database)
        if emission not in EMISSION_MODES:
            raise ValueError(
                f"emission must be one of {EMISSION_MODES}, got {emission!r}"
            )
        self._emission = emission
        self._pid = os.getpid()
        if path == ":memory:":
            self._uri = (
                f"file:repro-sqlite-{os.getpid()}-{next(self._instance_ids)}"
                "?mode=memory&cache=shared"
            )
            self._is_uri = True
        else:
            self._uri = path
            self._is_uri = False
        self._lock = threading.Lock()
        # (owning thread, connection) pairs; dead threads' connections are
        # reaped whenever a new one opens, so short-lived worker threads
        # (e.g. a fresh pool per answer_batch call) cannot leak handles.
        self._connections: List[Tuple[threading.Thread, sqlite3.Connection]] = []
        self._local = threading.local()
        self._closed = False
        # The anchor connection keeps the shared in-memory database alive for
        # the backend's whole lifetime (it would vanish with its last
        # connection otherwise) and performs the one-time DDL + bulk load.
        self._anchor = self._open_connection()
        self._local.connection = self._anchor
        self._create_schema()
        self._load()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
            connections, self._connections = self._connections, []
        for _, connection in connections:
            connection.close()

    def _open_connection(self) -> sqlite3.Connection:
        # check_same_thread=False so close() can reap connections owned by
        # worker threads; each connection is still *used* by one thread only.
        connection = sqlite3.connect(
            self._uri, uri=self._is_uri, check_same_thread=False
        )
        with self._lock:
            if self._closed:
                connection.close()
                raise ExecutionError("sqlite backend is closed")
            dead = [
                (thread, conn)
                for thread, conn in self._connections
                if not thread.is_alive()
            ]
            if dead:
                self._connections = [
                    entry for entry in self._connections if entry not in dead
                ]
            self._connections.append((threading.current_thread(), connection))
        for _, stale in dead:
            stale.close()
        return connection

    def _conn(self) -> sqlite3.Connection:
        """This thread's connection, opened lazily on first use."""
        # The pid check must come first: after a fork the child inherits the
        # parent's thread-local *and* its connection object, but the
        # shared-cache database behind them belongs to the parent.  Touching
        # it would silently read an empty (or freshly re-created) database.
        if os.getpid() != self._pid:
            raise ExecutionError(
                f"sqlite backend is process-affine: created in pid {self._pid}, "
                f"used in pid {os.getpid()}; rebuild the store inside the "
                "worker process instead of sharing it across fork/spawn"
            )
        if self._closed:
            raise ExecutionError("sqlite backend is closed")
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = self._open_connection()
            self._local.connection = connection
        return connection

    def __reduce__(self):
        # Refuse pickling (the multiprocessing transport) with a clear error
        # instead of the opaque "cannot pickle '_thread.lock'" TypeError.
        raise ExecutionError(
            "SqliteBackend cannot be pickled: shared-cache in-memory URIs and "
            "connections do not survive fork/spawn; ship the Database and "
            "rebuild the backend in the worker process"
        )

    # -- loading -----------------------------------------------------------------

    def _create_schema(self) -> None:
        cursor = self._conn().cursor()
        for statement in sqlite_schema_ddl(self._database.schema):
            cursor.execute(statement)
        self._conn().commit()

    def _load(self) -> None:
        connection = self._conn()
        for name in self._database.schema.relation_names:
            relation = self._database.relation(name)
            width = len(relation.columns)
            placeholders = ", ".join("?" * width)
            connection.executemany(
                f"INSERT INTO {_quoted(name)} VALUES ({placeholders})",
                [tuple(str(value) for value in row) for row in relation.rows],
            )
        connection.commit()

    # -- live updates ------------------------------------------------------------

    def apply_delta(self, delta: "ShredDelta") -> None:
        """Apply a shred delta as DELETE/INSERT batches in one transaction.

        Deletes match full rows (every column in the ``WHERE`` clause —
        shredded rows are unique per relation, so this removes exactly one
        row each); inserts reuse the bulk-load path.  Any SQLite failure
        rolls the whole transaction back, so the loaded tables never expose
        a half-applied mutation.  The in-memory :class:`Database` the
        backend was built from is kept in sync afterwards: it is the
        recovery source when the backend is rebuilt in a fresh process.
        """
        from repro.live.delta import apply_delta_to_database

        connection = self._conn()
        with obs.span(
            "apply_delta",
            backend=self.name,
            relations=len(delta.relations()),
            rows_deleted=delta.delete_count(),
            rows_inserted=delta.insert_count(),
        ):
            # Validate against (and update) the Python-side database first:
            # a delta that does not apply cleanly there must not reach SQLite.
            apply_delta_to_database(self._database, delta)
            try:
                cursor = connection.cursor()
                if not connection.in_transaction:
                    cursor.execute("BEGIN")
                for name in delta.relations():
                    columns = self._database.schema.relation(name).columns
                    removals = delta.deletes.get(name, frozenset())
                    if removals:
                        predicate = " AND ".join(
                            f"{_quoted(column)} = ?" for column in columns
                        )
                        cursor.executemany(
                            f"DELETE FROM {_quoted(name)} WHERE {predicate}",
                            [tuple(str(value) for value in row) for row in removals],
                        )
                    additions = delta.inserts.get(name, frozenset())
                    if additions:
                        placeholders = ", ".join("?" * len(columns))
                        cursor.executemany(
                            f"INSERT INTO {_quoted(name)} VALUES ({placeholders})",
                            [tuple(str(value) for value in row) for row in additions],
                        )
                connection.commit()
            except sqlite3.Error as exc:
                connection.rollback()
                raise ExecutionError(f"sqlite delta application failed: {exc}") from exc

    # -- execution ---------------------------------------------------------------

    def prepare(self, program: Program) -> PreparedProgram:
        """Prune and render once; repeated execution reuses the statements.

        Single-statement emission falls back to the multi-statement plan for
        programs whose CTE DAG would blow past SQLite's substitution limits
        (see :func:`~repro.relational.sqlgen.fused_scan_count`): SQLite
        copies every CTE reference at parse time and hard-caps references
        per table at 65535, so a heavily shared 90-assignment program is
        unfusable no matter how small its SQL text is.
        """
        with obs.span("prepare", backend=self.name) as sp:
            pruned = program.pruned()
            fuse = (
                self._emission == "single"
                and fused_scan_count(pruned) <= FUSED_SCAN_LIMIT
            )
            if fuse:
                # One fused WITH RECURSIVE statement: no temp-table targets,
                # so _run_plan skips straight to the result fetch.
                plan = _SqlitePlan(
                    statements=(program_to_single_sql(pruned, SQLDialect.SQLITE),),
                    targets=(),
                )
            else:
                plan = _SqlitePlan(
                    statements=tuple(program_statements(pruned, SQLDialect.SQLITE)),
                    targets=tuple(
                        assignment.target for assignment in pruned.assignments
                    ),
                )
            sp.set(statements=len(plan.statements))
        return PreparedProgram(backend=self.name, program=pruned, payload=plan)

    def explain_single(self, program: Program) -> List[str]:
        """``EXPLAIN QUERY PLAN`` lines for the fused single-statement form.

        Only the single-statement emission has a *whole-query* plan — the
        multi-statement script plans each temp table separately — so this is
        rendered from the fused form regardless of the configured emission.
        Raises :class:`~repro.errors.ExecutionError` when the program's CTE
        DAG is too large to fuse (SQLite's substitution limits).
        """
        pruned = program.pruned()
        if fused_scan_count(pruned) > FUSED_SCAN_LIMIT:
            raise ExecutionError(
                "program is too large to fuse into a single statement "
                f"(> {FUSED_SCAN_LIMIT} substituted scans); "
                "no whole-query plan is available"
            )
        sql = program_to_single_sql(pruned, SQLDialect.SQLITE)
        cursor = self._conn().cursor()
        try:
            cursor.execute(f"EXPLAIN QUERY PLAN {sql}")
            return [str(row[-1]) for row in cursor.fetchall()]
        except sqlite3.Error as exc:
            raise ExecutionError(f"sqlite explain failed: {exc}") from exc

    def execute_prepared(self, prepared: PreparedProgram) -> BackendResult:
        """Run a prepared plan on this thread's connection, skipping render
        and instrumentation work."""
        if prepared.backend != self.name:
            raise ValueError(
                f"program was prepared for backend {prepared.backend!r}, "
                f"cannot execute on {self.name!r}"
            )
        plan = prepared.payload
        if not isinstance(plan, _SqlitePlan):  # prepared via the base class
            plan = self.prepare(prepared.program).payload
        with obs.span("execute", backend=self.name, prepared=True) as sp:
            columns, rows, elapsed, _ = self._run_plan(plan)
            sp.set(rows=len(rows))
        stats: Dict[str, float] = {
            "rows": len(rows),
            "elapsed_seconds": elapsed,
            "temporaries_evaluated": len(plan.targets),
            "prepared": 1,
        }
        return BackendResult(backend=self.name, columns=columns, rows=rows, stats=stats)

    def execute(self, program: Program) -> BackendResult:
        """Run ``program`` end-to-end: temporaries as temp tables, then the result.

        Assignments the result never uses are pruned first (mirroring the
        lazy in-memory strategy, which also never materialises them).
        """
        prepared = self.prepare(program)
        plan = prepared.payload
        assert isinstance(plan, _SqlitePlan)
        with obs.span("execute", backend=self.name) as sp:
            columns, rows, elapsed, tuples_materialized = self._run_plan(
                plan, instrument=True
            )
            sp.set(rows=len(rows))
        stats: Dict[str, float] = {
            "rows": len(rows),
            "elapsed_seconds": elapsed,
            "temporaries_evaluated": len(plan.targets),
            "tuples_materialized": tuples_materialized,
        }
        return BackendResult(backend=self.name, columns=columns, rows=rows, stats=stats)

    # -- statement running -------------------------------------------------------

    def _run_plan(self, plan: _SqlitePlan, instrument: bool = False):
        """Execute a rendered plan on this thread's connection.

        Returns ``(columns, rows, elapsed, tuples_materialized)``; the
        tuple count is only gathered with ``instrument=True``.  Only the
        translated statements are timed: the per-temporary ``COUNT(*)``
        instrumentation and the temp-table teardown are backend
        bookkeeping, and including them would bias every memory-vs-sqlite
        comparison the backend axis exists to make.
        """
        cursor = self._conn().cursor()
        created: List[str] = []
        tuples_materialized = 0
        elapsed = 0.0
        try:
            for target, statement in zip(plan.targets, plan.statements):
                with obs.span("sql-statement", target=target):
                    start = time.perf_counter()
                    cursor.execute(statement)
                    elapsed += time.perf_counter() - start
                created.append(target)
                if instrument:
                    cursor.execute(f"SELECT COUNT(*) FROM {_quoted(target)}")
                    tuples_materialized += cursor.fetchone()[0]
            with obs.span("sql-statement", target="<result>"):
                start = time.perf_counter()
                cursor.execute(plan.statements[-1])
                columns = tuple(description[0] for description in cursor.description)
                rows = normalize_rows(cursor.fetchall())
                elapsed += time.perf_counter() - start
        except sqlite3.Error as exc:
            raise ExecutionError(f"sqlite execution failed: {exc}") from exc
        finally:
            for name in created:
                try:
                    cursor.execute(f"DROP TABLE IF EXISTS temp.{_quoted(name)}")
                except sqlite3.Error:
                    # Best-effort teardown: a failed DROP (e.g. close() raced
                    # an in-flight query on another thread) must not mask the
                    # real error; temp tables die with the connection anyway.
                    break
        return columns, rows, elapsed, tuples_materialized
