"""Extended XPath expressions (Sect. 3.2): variables, Kleene closure, equations.

Extended XPath generalises XPath and regular XPath by supporting variables
and the general Kleene closure ``E*`` instead of ``//``.  A query is a
system of equations ``X_i = E_i`` (each variable defined once, definitions
acyclic) plus a result expression; the use of variables is what keeps the
output of the translation polynomial where plain regular expressions blow up
exponentially.
"""

from repro.expath.ast import (
    EAnd,
    EEmpty,
    EEmptySet,
    ELabel,
    ENot,
    EOr,
    EPathQual,
    EQualified,
    ESlash,
    EStar,
    ETextEquals,
    EUnion,
    EVar,
    Equation,
    Expr,
    ExtendedXPathQuery,
    EQualifier,
)
from repro.expath.evaluator import ExtendedXPathEvaluator, evaluate_extended
from repro.expath.metrics import OperatorCounts, count_operators
from repro.expath.simplify import simplify_expression, simplify_query

__all__ = [
    "Expr",
    "EQualifier",
    "EEmpty",
    "EEmptySet",
    "ELabel",
    "EVar",
    "ESlash",
    "EUnion",
    "EStar",
    "EQualified",
    "EPathQual",
    "ETextEquals",
    "ENot",
    "EAnd",
    "EOr",
    "Equation",
    "ExtendedXPathQuery",
    "ExtendedXPathEvaluator",
    "evaluate_extended",
    "OperatorCounts",
    "count_operators",
    "simplify_expression",
    "simplify_query",
]
