"""ProcessQueryService behaviour: routing, errors, crash recovery, stats."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.dtd import samples
from repro.errors import (
    ConfigError,
    DuplicateDocumentError,
    SessionClosedError,
    UnknownDocumentError,
    XPathSyntaxError,
)
from repro.fuzz.cases import DocumentSpec
from repro.service import PoolAnswer, ProcessQueryService, QueryService
from repro.xmltree.generator import generate_document

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool behaviour tests use the fork start method for speed",
)

QUERIES = ["a//d", "a//c", "a/b//c/d"]


@pytest.fixture(scope="module")
def pool():
    dtd = samples.cross_dtd()
    service = ProcessQueryService(
        dtd, workers=2, replicas=2, start_method="fork", warmup=QUERIES
    )
    service.register_document("doc", generate_document(dtd, seed=3))
    yield service
    service.close()


@pytest.fixture(scope="module")
def serial():
    dtd = samples.cross_dtd()
    service = QueryService(dtd)
    service.register_document("doc", generate_document(dtd, seed=3))
    yield service
    service.close()


def _ids(nodes):
    return [node.node_id for node in nodes]


class TestAnswering:
    def test_answer_matches_serial_node_for_node(self, pool, serial):
        for query in QUERIES:
            answer = pool.answer(query, "doc")
            assert isinstance(answer, PoolAnswer)
            assert list(answer.node_ids) == _ids(serial.answer(query, "doc"))

    def test_answer_carries_rendered_nodes(self, pool, serial):
        answer = pool.answer("a//d", "doc")
        nodes = serial.answer("a//d", "doc")
        assert list(answer.labels) == [node.label for node in nodes]
        assert list(answer.values) == [node.value for node in nodes]

    def test_include_nodes_false_ships_ids_only(self, pool):
        answer = pool.answer("a//d", "doc", include_nodes=False)
        assert answer.labels is None and answer.values is None
        assert answer.node_ids

    def test_batch_preserves_input_order_across_workers(self, pool, serial):
        batch = pool.answer_batch(QUERIES * 3, "doc")
        assert [answer.query for answer in batch] == QUERIES * 3
        for answer in batch:
            assert list(answer.node_ids) == _ids(serial.answer(answer.query, "doc"))
        # replicas=2: a long batch really does fan out to both workers.
        assert len({answer.worker for answer in batch}) == 2

    def test_empty_batch(self, pool):
        assert pool.answer_batch([], "doc") == []

    def test_sole_document_is_the_default(self, pool, serial):
        assert list(pool.answer("a//d").node_ids) == _ids(serial.answer("a//d", "doc"))

    def test_same_query_routes_to_a_stable_replica(self, pool):
        workers = {pool.answer("a//d", "doc").worker for _ in range(5)}
        assert len(workers) == 1  # query affinity keeps result caches warm

    def test_answer_to_dict_is_json_safe(self, pool):
        import json

        json.dumps(pool.answer("a//d", "doc").to_dict())


class TestErrors:
    def test_remote_syntax_error_surfaces_as_the_same_type(self, pool):
        with pytest.raises(XPathSyntaxError):
            pool.answer("a//", "doc")

    def test_unknown_document(self, pool):
        with pytest.raises(UnknownDocumentError, match="nope"):
            pool.answer("a//d", "nope")

    def test_duplicate_registration(self, pool):
        dtd = samples.cross_dtd()
        with pytest.raises(DuplicateDocumentError):
            pool.register_document("doc", generate_document(dtd, seed=3))

    def test_invalid_sizing_rejected(self):
        dtd = samples.cross_dtd()
        with pytest.raises(ConfigError):
            ProcessQueryService(dtd, workers=0)
        with pytest.raises(ConfigError):
            ProcessQueryService(dtd, workers=1, replicas=0)


class TestSharding:
    def test_owners_are_deterministic_and_sized_by_replicas(self):
        dtd = samples.cross_dtd()
        with ProcessQueryService(
            dtd, workers=3, replicas=2, start_method="fork"
        ) as pool:
            first = pool.register_generated("d1", DocumentSpec(max_elements=30))
            assert len(first) == 2 and len(set(first)) == 2
            assert pool.owners("d1") == first

    def test_documents_spread_across_workers(self):
        dtd = samples.cross_dtd()
        with ProcessQueryService(
            dtd, workers=3, replicas=1, start_method="fork"
        ) as pool:
            for index in range(9):
                pool.register_generated(
                    f"d{index}", DocumentSpec(max_elements=20, seed=index)
                )
            owners = {pool.owners(f"d{index}")[0] for index in range(9)}
            assert len(owners) > 1  # sha-sharding uses more than one worker

    def test_replicas_clamped_to_worker_count(self):
        dtd = samples.cross_dtd()
        with ProcessQueryService(
            dtd, workers=2, replicas=99, start_method="fork"
        ) as pool:
            pool.register_generated("d", DocumentSpec(max_elements=20))
            assert len(pool.owners("d")) == 2


class TestCrashRecovery:
    def test_killed_worker_respawns_and_answers_again(self):
        dtd = samples.cross_dtd()
        with ProcessQueryService(
            dtd, workers=2, replicas=2, start_method="fork", warmup=["a//d"]
        ) as pool:
            tree = generate_document(dtd, seed=3)
            pool.register_document("doc", tree)
            expected = list(pool.answer("a//d", "doc").node_ids)
            for index in range(2):  # kill *both* owners, one at a time
                pool._kill_worker(index)
                answer = pool.answer("a//d", "doc")
                assert list(answer.node_ids) == expected
            stats = pool.stats()
            assert stats["metrics"]["pool.respawns"]["value"] >= 2

    def test_respawned_worker_recovers_generated_documents(self):
        dtd = samples.cross_dtd()
        with ProcessQueryService(
            dtd, workers=1, replicas=1, start_method="fork"
        ) as pool:
            pool.register_generated("d", DocumentSpec(max_elements=40, seed=5))
            before = list(pool.answer("a//c", "d").node_ids)
            pool._kill_worker(0)
            assert list(pool.answer("a//c", "d").node_ids) == before


class TestStatsAndLifecycle:
    def test_stats_merge_worker_counters(self):
        dtd = samples.cross_dtd()
        with ProcessQueryService(
            dtd, workers=2, replicas=2, start_method="fork"
        ) as pool:
            pool.register_document("doc", generate_document(dtd, seed=3))
            batch = pool.answer_batch(QUERIES * 4, "doc")
            assert len(batch) == 12
            metrics = pool.stats()["metrics"]
            # Both workers answered; the merged counter sees every query.
            assert metrics["service.queries"]["value"] == 12
            hist = metrics["worker.answer_seconds"]
            assert hist["count"] == 12
            assert hist["p50"] is not None and hist["min"] > 0
            assert metrics["worker.starts"]["value"] == 2

    def test_stats_after_close_use_final_snapshots(self):
        dtd = samples.cross_dtd()
        pool = ProcessQueryService(dtd, workers=2, replicas=2, start_method="fork")
        pool.register_document("doc", generate_document(dtd, seed=3))
        pool.answer("a//d", "doc")
        pool.close()
        stats = pool.stats()
        assert stats["closed"] is True
        assert stats["metrics"]["service.queries"]["value"] == 1

    def test_closed_pool_rejects_requests(self):
        dtd = samples.cross_dtd()
        pool = ProcessQueryService(dtd, workers=1, start_method="fork")
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(SessionClosedError):
            pool.answer("a//d", "doc")
        with pytest.raises(SessionClosedError):
            pool.register_generated("d")

    def test_workers_actually_are_separate_processes(self):
        import os

        dtd = samples.cross_dtd()
        with ProcessQueryService(
            dtd, workers=2, replicas=2, start_method="fork"
        ) as pool:
            pool.register_document("doc", generate_document(dtd, seed=3))
            pids = {
                pool.stats()["metrics"]["worker.pid"]["value"],
            }
            worker_pids = {worker.process.pid for worker in pool._workers}
            assert os.getpid() not in worker_pids
            assert len(worker_pids) == 2
