"""Seeded random DTDs with controlled recursion.

The generator builds a DTD in three layers:

1. a random *skeleton tree* over ``n`` element types rooted at ``e0`` —
   every non-root type gets exactly one tree parent, so the base graph is
   acyclic and every type is reachable from the root;
2. ``cycle_edges`` *back edges* from a type to one of its skeleton
   ancestors (or itself, a self-loop).  Each back edge closes at least one
   simple cycle, so recursion is a knob: ``cycle_edges=0`` yields a
   non-recursive DTD, larger values yield overlapping cycles and larger
   strongly connected components;
3. ``extra_edges`` *cross edges* between unrelated types, added only when
   the target does not already reach the source, so they enrich the DAG
   shape without silently changing the cycle count.

Termination of document generation (and hence conformance of generated
documents) is guaranteed by construction: every edge into a type that has
children of its own is ``*`` or ``?`` (nullable), so once the generator's
level limit is reached every repetition collapses to zero and only finite
chains of required *leaf* children remain.  Required (``A``) and ``+``
modalities are used for leaf children only, and a fraction of the starred
children are grouped into ``(A | B)*`` choices so the full content-model
grammar is exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.dtd.model import DTD, ContentModel, choice, empty, opt, plus, ref, seq, star

__all__ = ["DTDGenConfig", "RandomDTDGenerator", "generate_dtd"]


@dataclass(frozen=True)
class DTDGenConfig:
    """Shape knobs for :class:`RandomDTDGenerator`.

    Attributes
    ----------
    seed:
        RNG seed; the same config always produces the same DTD.
    min_types / max_types:
        Bounds on the number of element types (root included).
    cycle_edges:
        Number of back edges to inject.  Every back edge runs from a type
        to one of its skeleton ancestors, so each one closes at least one
        simple cycle; ``0`` produces a non-recursive DTD.
    extra_edges:
        Cross edges added between unrelated types (cycle-neutral: an edge
        is only added when its target does not already reach its source).
    text_probability:
        Chance that a non-leaf type carries a PCDATA value (leaf types are
        always text types, so ``text() = c`` predicates always have
        targets).
    choice_probability:
        Chance that two starred children are grouped as ``(A | B)*``
        instead of ``A*, B*``.
    optional_probability:
        Chance that a nullable child edge uses ``?`` instead of ``*``.
    required_leaf_probability:
        Chance that a leaf child is required (``A`` or ``A+``) instead of
        nullable.
    """

    seed: int = 0
    min_types: int = 3
    max_types: int = 7
    cycle_edges: int = 2
    extra_edges: int = 1
    text_probability: float = 0.4
    choice_probability: float = 0.3
    optional_probability: float = 0.25
    required_leaf_probability: float = 0.4


class RandomDTDGenerator:
    """Generate random DTDs from a :class:`DTDGenConfig`.

    Example
    -------
    >>> dtd = RandomDTDGenerator(DTDGenConfig(seed=7, cycle_edges=2)).generate()
    >>> dtd.is_recursive()
    True
    """

    def __init__(self, config: DTDGenConfig) -> None:
        if config.min_types < 2:
            raise ValueError("a random DTD needs at least 2 element types")
        if config.max_types < config.min_types:
            raise ValueError("max_types must be >= min_types")
        self._config = config

    def generate(self) -> DTD:
        """Generate one DTD; deterministic for a fixed config."""
        config = self._config
        rng = random.Random(config.seed)
        count = rng.randint(config.min_types, config.max_types)
        names = [f"e{i}" for i in range(count)]

        # 1. Skeleton tree: every non-root type hangs off an earlier type.
        parent_of: Dict[str, str] = {}
        for index in range(1, count):
            parent_of[names[index]] = rng.choice(names[:index])
        children_of: Dict[str, List[str]] = {name: [] for name in names}
        for child, parent in parent_of.items():
            children_of[parent].append(child)
        leaves = {name for name in names if not children_of[name]}

        # Edge lists per parent: (child, modality) with modality one of
        # "req", "plus", "opt", "star".  Containers only ever get nullable
        # edges so recursion always has an exit.
        edges: Dict[str, List[Tuple[str, str]]] = {name: [] for name in names}
        edge_set: Set[Tuple[str, str]] = set()

        def add_edge(parent: str, child: str, modality: str) -> bool:
            if (parent, child) in edge_set:
                return False
            edges[parent].append((child, modality))
            edge_set.add((parent, child))
            return True

        def nullable_modality() -> str:
            return "opt" if rng.random() < config.optional_probability else "star"

        for parent in names:
            for child in children_of[parent]:
                if child in leaves and rng.random() < config.required_leaf_probability:
                    add_edge(parent, child, rng.choice(["req", "plus"]))
                else:
                    add_edge(parent, child, nullable_modality())

        # 2. Back edges: child -> skeleton ancestor (or itself) closes a cycle.
        def ancestors_or_self(name: str) -> List[str]:
            chain = [name]
            while chain[-1] in parent_of:
                chain.append(parent_of[chain[-1]])
            return chain

        injected = 0
        for _ in range(config.cycle_edges * 10):
            if injected >= config.cycle_edges:
                break
            source = rng.choice(names)
            target = rng.choice(ancestors_or_self(source))
            if add_edge(source, target, nullable_modality()):
                injected += 1
        if config.cycle_edges > 0 and injected == 0:
            # Every candidate edge already existed; a root self-loop always works.
            add_edge(names[0], names[0], "star")

        # 3. Cross edges, only where they cannot close an extra cycle.
        successors: Dict[str, Set[str]] = {name: set() for name in names}
        for parent, child in edge_set:
            successors[parent].add(child)

        def reaches(source: str, target: str) -> bool:
            seen: Set[str] = set()
            frontier = [source]
            while frontier:
                node = frontier.pop()
                if node == target:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                frontier.extend(successors[node])
            return False

        crossed = 0
        for _ in range(config.extra_edges * 10):
            if crossed >= config.extra_edges:
                break
            source, target = rng.choice(names), rng.choice(names)
            if source == target or (source, target) in edge_set:
                continue
            if reaches(target, source):
                continue
            add_edge(source, target, nullable_modality())
            successors[source].add(target)
            crossed += 1

        # Assemble content models; leaves keep EMPTY content.
        productions: Dict[str, ContentModel] = {}
        for name in names:
            productions[name] = self._build_model(rng, edges[name])
        text_types = set(leaves)
        for name in names:
            if name not in leaves and rng.random() < config.text_probability:
                text_types.add(name)
        return DTD(names[0], productions, text_types, name=f"fuzz-{config.seed}")

    def _build_model(
        self, rng: random.Random, child_edges: List[Tuple[str, str]]
    ) -> ContentModel:
        if not child_edges:
            return empty()
        parts: List[ContentModel] = []
        starred = [child for child, modality in child_edges if modality == "star"]
        rng.shuffle(starred)
        while len(starred) >= 2 and rng.random() < self._config.choice_probability:
            parts.append(star(choice(starred.pop(), starred.pop())))
        parts.extend(star(child) for child in starred)
        for child, modality in child_edges:
            if modality == "req":
                parts.append(ref(child))
            elif modality == "plus":
                parts.append(plus(child))
            elif modality == "opt":
                parts.append(opt(child))
        rng.shuffle(parts)
        return seq(*parts)


def generate_dtd(seed: int, **overrides: object) -> DTD:
    """Convenience wrapper: generate one DTD from ``seed`` plus config overrides."""
    return RandomDTDGenerator(DTDGenConfig(seed=seed, **overrides)).generate()  # type: ignore[arg-type]
