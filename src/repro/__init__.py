"""repro — a reproduction of "Query Translation from XPath to SQL in the Presence of Recursive DTDs".

The library translates XPath queries over (possibly recursive) DTDs into
sequences of SQL/relational-algebra queries that use only a simple
least-fixpoint operator, following Fan, Yu, Li, Ding and Qin (VLDB 2005 /
VLDB Journal 2009).  It ships every substrate the paper depends on — DTD
model and graphs, an XML generator and validator, an XPath evaluator, an
extended-XPath layer, a relational engine with the LFP operator, and
DTD-based shredding — plus the three translation strategies compared in the
paper's experiments (CycleEX, CycleE, SQLGen-R) and the experiment harness
that regenerates every table and figure.

Quickstart (the public facade)
------------------------------
>>> from repro import Engine, EngineConfig, generate_document
>>> from repro.dtd.samples import dept_dtd
>>> engine = Engine.from_dtd(dept_dtd(), EngineConfig(strategy="auto"))
>>> document = generate_document(engine.dtd, x_l=6, x_r=3, seed=1)
>>> with engine.open_session(document) as session:
...     projects = list(session.answer("dept//project"))

:class:`Engine`/:class:`Session`/:class:`EngineConfig` (see
:mod:`repro.api`) are the supported entry point; the lower layers imported
below remain available (the pre-facade constructors keep working for one
release) but their keyword-argument configuration is deprecated in favour
of passing an :class:`EngineConfig`.
"""

from repro.api import (
    ConfigError,
    Engine,
    EngineConfig,
    QueryResult,
    ReproError,
    Session,
    SessionError,
)
from repro.backends import Backend, BackendResult, MemoryBackend, SqliteBackend, create_backend
from repro.core.expath_to_sql import TranslationOptions
from repro.core.pipeline import TranslationResult, XPathToSQLTranslator, answer_xpath
from repro.fuzz import DifferentialOracle, FuzzCase, FuzzConfig, run_fuzz
from repro.core.sqlgen_r import SQLGenR
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.relational.sqlgen import SQLDialect
from repro.service import PlanCache, QueryService
from repro.shredding.shredder import shred_document
from repro.views.gav import GAVView
from repro.xmltree.generator import generate_document
from repro.xpath.parser import parse_xpath

__version__ = "1.1.0"

# The complete supported public surface.  tests/api/test_public_surface.py
# snapshots this list (and CI imports the package and checks it), so growing
# the surface is an explicit, reviewed act — edit both places.
__all__ = [
    # -- the facade (preferred API) --
    "Engine",
    "Session",
    "EngineConfig",
    "QueryResult",
    "ReproError",
    "ConfigError",
    "SessionError",
    # -- schema/document substrate --
    "DTD",
    "parse_dtd",
    "parse_xpath",
    "generate_document",
    "shred_document",
    # -- translation layers --
    "XPathToSQLTranslator",
    "TranslationResult",
    "TranslationOptions",
    "DescendantStrategy",
    "SQLGenR",
    "SQLDialect",
    "GAVView",
    "answer_xpath",
    # -- execution backends --
    "Backend",
    "BackendResult",
    "MemoryBackend",
    "SqliteBackend",
    "create_backend",
    # -- fuzzing --
    "FuzzCase",
    "FuzzConfig",
    "DifferentialOracle",
    "run_fuzz",
    # -- serving --
    "PlanCache",
    "QueryService",
    "__version__",
]
