"""Unit tests for the SQLGen-R baseline."""

import pytest

from repro.core.sqlgen_r import SQLGenR
from repro.dtd import samples
from repro.expath.ast import EDescendants, iter_subexpressions
from repro.relational.algebra import Fixpoint, RecursiveUnion
from repro.relational.executor import execute_program
from repro.relational.schema import T as T_COLUMN
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath


@pytest.fixture(scope="module")
def cross():
    dtd = samples.cross_dtd()
    tree = generate_document(dtd, x_l=8, x_r=3, seed=41, max_elements=800)
    return dtd, tree, shred_document(tree, dtd)


class TestStructure:
    def test_extended_query_contains_descendant_markers(self, cross):
        dtd, _, _ = cross
        baseline = SQLGenR(dtd)
        extended = baseline.to_extended("a//d")
        markers = [
            expr
            for equation in extended.equations
            for expr in iter_subexpressions(equation.expression)
            if isinstance(expr, EDescendants)
        ] + [expr for expr in iter_subexpressions(extended.result) if isinstance(expr, EDescendants)]
        assert markers

    def test_program_uses_recursive_union_not_lfp(self, cross):
        dtd, _, _ = cross
        program = SQLGenR(dtd).translate("a//d")
        expressions = list(program.iter_expressions())
        assert any(isinstance(e, RecursiveUnion) for e in expressions)
        assert not any(isinstance(e, Fixpoint) for e in expressions)

    def test_recursive_union_covers_query_graph_edges(self, cross):
        dtd, _, _ = cross
        program = SQLGenR(dtd).translate("a//d")
        unions = [e for e in program.iter_expressions() if isinstance(e, RecursiveUnion)]
        # The b/c/d strongly connected region has 4 internal edges.
        assert max(len(u.steps) for u in unions) >= 4

    def test_component_decomposition(self, cross):
        dtd, _, _ = cross
        components = SQLGenR(dtd).query_graph_components()
        assert components[0] == ["a"]
        assert {"b", "c", "d"} in [set(c) for c in components]

    def test_dept_query_graph_components(self):
        baseline = SQLGenR(samples.dept_dtd())
        components = baseline.query_graph_components()
        cyclic = [c for c in components if len(c) > 1]
        assert len(cyclic) == 1
        assert "course" in cyclic[0]


class TestCorrectness:
    @pytest.mark.parametrize(
        "query",
        ["a//d", "a/b//c/d", "a[//c]//d", "a[not //c]", "//c"],
    )
    def test_answers_match_oracle(self, cross, query):
        dtd, tree, shredded = cross
        program = SQLGenR(dtd).translate(query)
        relation, _ = execute_program(shredded.database, program)
        got = {int(v) for v in relation.column_values(T_COLUMN)}
        expected = {n.node_id for n in evaluate_xpath(tree, parse_xpath(query))}
        assert got == expected

    def test_gedml_query(self):
        dtd = samples.gedml_dtd()
        tree = generate_document(dtd, x_l=6, x_r=3, seed=43, max_elements=600)
        shredded = shred_document(tree, dtd)
        program = SQLGenR(dtd).translate("even//data")
        relation, _ = execute_program(shredded.database, program)
        got = {int(v) for v in relation.column_values(T_COLUMN)}
        expected = {n.node_id for n in evaluate_xpath(tree, parse_xpath("even//data"))}
        assert got == expected

    def test_naive_iteration_cost_recorded(self, cross):
        dtd, _, shredded = cross
        program = SQLGenR(dtd).translate("a//d")
        _, stats = execute_program(shredded.database, program)
        # The black-box recursion must have iterated at least tree-height times.
        assert stats.recursive_union_iterations >= 3
