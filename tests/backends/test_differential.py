"""The differential suite: every workload query, identical answers everywhere.

This is the acceptance test of the backends subsystem: every query in
``repro.workloads.queries`` (plus a non-recursive document) runs on the
in-memory engine and on SQLite, and the normalized answer sets must match
tuple-for-tuple.
"""

import pytest

from repro.backends.differential import (
    DifferentialOutcome,
    assert_backends_agree,
    default_specs,
    non_recursive_dtd,
    run_differential,
)


class TestSpecs:
    def test_default_specs_cover_recursive_and_non_recursive_dtds(self):
        specs = default_specs()
        recursive = [spec for spec in specs if spec.dtd.is_recursive()]
        flat = [spec for spec in specs if not spec.dtd.is_recursive()]
        assert recursive and flat

    def test_default_specs_cover_every_workload_query(self):
        from repro.workloads import queries as wl

        covered = set()
        for spec in default_specs():
            covered.update(spec.queries.values())
        assert set(wl.DEPT_QUERIES.values()) <= covered
        assert set(wl.CROSS_QUERIES.values()) <= covered
        assert wl.SCALABILITY_QUERY in covered
        assert wl.GEDML_QUERY in covered
        assert {case.query for case in wl.BIOML_CASES} <= covered
        # The selective templates appear instantiated with a concrete value.
        for template in wl.SELECTIVE_QUERIES.values():
            prefix = template.split("{", 1)[0]
            assert any(query.startswith(prefix) for query in covered)

    def test_non_recursive_dtd_is_non_recursive(self):
        assert not non_recursive_dtd().is_recursive()

    def test_spec_accepts_explicit_document(self):
        from repro.backends.differential import DifferentialSpec
        from repro.dtd import samples
        from repro.xmltree.generator import generate_document

        dtd = samples.cross_dtd()
        tree = generate_document(dtd, seed=1, max_elements=100)
        spec = DifferentialSpec("explicit", dtd, {"Q": "a//d"}, document=tree)
        assert spec.materialize() is tree
        assert all(outcome.matched for outcome in run_differential([spec]))

    def test_generated_fuzz_specs_run_in_same_sweep(self):
        from repro.fuzz.dtd_gen import DTDGenConfig, RandomDTDGenerator
        from repro.fuzz.cases import DocumentSpec, FuzzCase
        from repro.fuzz.xpath_gen import RandomXPathGenerator, XPathGenConfig

        dtd = RandomDTDGenerator(DTDGenConfig(seed=11, cycle_edges=2)).generate()
        queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=11)).queries(3)
        specs = [
            FuzzCase(
                label=f"gen-{index}",
                dtd_text=dtd.to_text(),
                query=query,
                document=DocumentSpec(seed=index, max_elements=120),
            ).to_differential_spec()
            for index, query in enumerate(queries)
        ]
        outcomes = run_differential(specs)
        assert outcomes
        assert all(outcome.matched for outcome in outcomes)


class TestDifferential:
    def test_all_backends_agree_on_all_workloads(self):
        outcomes = run_differential(default_specs(max_elements=300))
        assert outcomes, "differential sweep produced no comparisons"
        assert_backends_agree(outcomes)
        # Some queries must produce non-empty answers or the test is vacuous.
        assert any(outcome.reference_rows > 0 for outcome in outcomes)

    def test_requires_two_backends(self):
        with pytest.raises(ValueError, match="at least two"):
            run_differential(backends=["memory"])

    def test_assert_raises_on_mismatch(self):
        bad = DifferentialOutcome(
            spec="s",
            query_name="q",
            query="a//b",
            reference_backend="memory",
            candidate_backend="sqlite",
            reference_rows=2,
            candidate_rows=1,
            matched=False,
            missing_node_ids=("7",),
        )
        with pytest.raises(AssertionError, match="MISMATCH"):
            assert_backends_agree([bad])

    def test_outcome_describe_mentions_backends(self):
        good = DifferentialOutcome(
            spec="s",
            query_name="q",
            query="a//b",
            reference_backend="memory",
            candidate_backend="sqlite",
            reference_rows=2,
            candidate_rows=2,
            matched=True,
        )
        line = good.describe()
        assert "memory" in line and "sqlite" in line and line.startswith("OK")


class TestShredOncePerDocument:
    """A sweep shreds each distinct (DTD, document) exactly once (Issue 3).

    Before the fix, every spec re-shredded its document even when several
    specs (e.g. ``cross`` under CycleEX and under SQLGen-R) described the
    very same one; the spy pins the per-sweep shred count.
    """

    def _spy(self, monkeypatch):
        from unittest import mock

        from repro.backends import differential
        from repro.shredding.shredder import shred_document

        spy = mock.Mock(side_effect=shred_document)
        monkeypatch.setattr(differential, "shred_document", spy)
        return spy

    def test_same_document_across_strategies_shreds_once(self, monkeypatch):
        from repro.backends.differential import DifferentialSpec
        from repro.core.xpath_to_expath import DescendantStrategy
        from repro.dtd import samples

        spy = self._spy(monkeypatch)
        dtd = samples.cross_dtd()
        specs = [
            DifferentialSpec("cross", dtd, {"Qa": "a/b//c/d", "Qs": "a//d"},
                             max_elements=200),
            DifferentialSpec("cross-R", dtd, {"Qa": "a/b//c/d"},
                             strategy=DescendantStrategy.RECURSIVE_UNION,
                             max_elements=200),
        ]
        outcomes = run_differential(specs)
        assert all(outcome.matched for outcome in outcomes)
        # 3 queries, 2 specs, 1 document: exactly one shred.
        assert spy.call_count == 1

    def test_distinct_documents_shred_separately(self, monkeypatch):
        from repro.backends.differential import DifferentialSpec
        from repro.dtd import samples

        spy = self._spy(monkeypatch)
        dtd = samples.cross_dtd()
        specs = [
            DifferentialSpec("small", dtd, {"Q": "a//d"}, max_elements=150),
            DifferentialSpec("large", dtd, {"Q": "a//d"}, max_elements=250),
        ]
        run_differential(specs)
        assert spy.call_count == 2

    def test_default_sweep_shreds_one_document_per_distinct_key(self, monkeypatch):
        spy = self._spy(monkeypatch)
        specs = default_specs(max_elements=150)
        outcomes = run_differential(specs)
        assert all(outcome.matched for outcome in outcomes)
        distinct_documents = {spec.document_key() for spec in specs}
        # Strictly fewer shreds than specs: cross/cross-R/cross-push share a
        # document, as do the BIOML cases that reuse one subgraph DTD.
        assert len(distinct_documents) < len(specs)
        assert spy.call_count == len(distinct_documents)
