"""DTD data model: content models as regular expressions and the DTD itself.

Following Sect. 2.1 of the paper, a DTD ``D`` is an extended context-free
grammar ``(Ele, Rg, r)`` where ``Rg(A)`` is a regular expression over element
types built from the empty word, type references, concatenation ``,``,
disjunction ``|`` and the Kleene star ``*`` (we also support ``+`` and ``?``
as conveniences since real DTDs such as BIOML and GedML use them; both are
definable in terms of the paper's operators).

The content-model classes are immutable value objects.  Use the lowercase
constructor helpers (:func:`ref`, :func:`seq`, :func:`choice`, :func:`star`,
:func:`plus`, :func:`opt`, :func:`empty`) rather than the class constructors
when building models by hand; they normalise trivial cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional as Opt, Set, Tuple

from repro.errors import DTDError

__all__ = [
    "ContentModel",
    "Empty",
    "TypeRef",
    "Sequence",
    "Choice",
    "Star",
    "Plus",
    "Optional",
    "empty",
    "ref",
    "seq",
    "choice",
    "star",
    "plus",
    "opt",
    "ChildSpec",
    "DTD",
]


# ---------------------------------------------------------------------------
# Content models
# ---------------------------------------------------------------------------


class ContentModel:
    """Base class of content-model regular expressions.

    Subclasses are frozen dataclasses; equality and hashing are structural.
    """

    def element_types(self) -> Set[str]:
        """Return the set of element-type names referenced by this model."""
        raise NotImplementedError

    def starred_types(self) -> Set[str]:
        """Return element types that occur under a ``*``/``+`` in this model.

        These are exactly the types whose DTD-graph edge from the parent is
        labelled ``*`` in the paper's figures (i.e. may repeat).
        """
        raise NotImplementedError

    def nullable(self) -> bool:
        """Return True if the empty word matches this content model."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - exercised via subclasses
        raise NotImplementedError


@dataclass(frozen=True)
class Empty(ContentModel):
    """The empty word (PCDATA-only / empty content)."""

    def element_types(self) -> Set[str]:
        return set()

    def starred_types(self) -> Set[str]:
        return set()

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class TypeRef(ContentModel):
    """A reference to a sub-element type ``B``."""

    name: str

    def element_types(self) -> Set[str]:
        return {self.name}

    def starred_types(self) -> Set[str]:
        return set()

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Sequence(ContentModel):
    """Concatenation ``alpha, beta, ...``."""

    parts: Tuple[ContentModel, ...]

    def element_types(self) -> Set[str]:
        out: Set[str] = set()
        for part in self.parts:
            out |= part.element_types()
        return out

    def starred_types(self) -> Set[str]:
        out: Set[str] = set()
        for part in self.parts:
            out |= part.starred_types()
        return out

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def __str__(self) -> str:
        return "(" + ", ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Choice(ContentModel):
    """Disjunction ``alpha | beta | ...``."""

    parts: Tuple[ContentModel, ...]

    def element_types(self) -> Set[str]:
        out: Set[str] = set()
        for part in self.parts:
            out |= part.element_types()
        return out

    def starred_types(self) -> Set[str]:
        out: Set[str] = set()
        for part in self.parts:
            out |= part.starred_types()
        return out

    def nullable(self) -> bool:
        return any(part.nullable() for part in self.parts)

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Star(ContentModel):
    """Kleene star ``alpha*`` (zero or more)."""

    inner: ContentModel

    def element_types(self) -> Set[str]:
        return self.inner.element_types()

    def starred_types(self) -> Set[str]:
        return self.inner.element_types()

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.inner}*"


@dataclass(frozen=True)
class Plus(ContentModel):
    """``alpha+`` (one or more); equivalent to ``alpha, alpha*``."""

    inner: ContentModel

    def element_types(self) -> Set[str]:
        return self.inner.element_types()

    def starred_types(self) -> Set[str]:
        return self.inner.element_types()

    def nullable(self) -> bool:
        return self.inner.nullable()

    def __str__(self) -> str:
        return f"{self.inner}+"


@dataclass(frozen=True)
class Optional(ContentModel):
    """``alpha?`` (zero or one); equivalent to ``(alpha | epsilon)``."""

    inner: ContentModel

    def element_types(self) -> Set[str]:
        return self.inner.element_types()

    def starred_types(self) -> Set[str]:
        return self.inner.starred_types()

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.inner}?"


def empty() -> Empty:
    """Return the empty content model."""
    return Empty()


def ref(name: str) -> TypeRef:
    """Return a reference to element type ``name``."""
    return TypeRef(name)


def _coerce(part) -> ContentModel:
    if isinstance(part, ContentModel):
        return part
    if isinstance(part, str):
        return TypeRef(part)
    raise DTDError(f"cannot use {part!r} as a content-model part")


def seq(*parts) -> ContentModel:
    """Concatenate parts; strings are coerced to type references."""
    coerced = tuple(_coerce(p) for p in parts)
    if not coerced:
        return Empty()
    if len(coerced) == 1:
        return coerced[0]
    return Sequence(coerced)


def choice(*parts) -> ContentModel:
    """Disjunction of parts; strings are coerced to type references."""
    coerced = tuple(_coerce(p) for p in parts)
    if not coerced:
        return Empty()
    if len(coerced) == 1:
        return coerced[0]
    return Choice(coerced)


def star(part) -> Star:
    """Kleene star of ``part``."""
    return Star(_coerce(part))


def plus(part) -> Plus:
    """One-or-more repetition of ``part``."""
    return Plus(_coerce(part))


def opt(part) -> Optional:
    """Zero-or-one occurrence of ``part``."""
    return Optional(_coerce(part))


# ---------------------------------------------------------------------------
# DTD
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChildSpec:
    """An edge of the DTD graph: parent type, child type, and whether starred.

    ``starred`` is True when the child occurs under a ``*`` or ``+`` in the
    parent's content model (the edge is drawn with a ``*`` label in the
    paper's DTD graphs and forces the child into its own inlining subgraph).
    """

    parent: str
    child: str
    starred: bool


class DTD:
    """A DTD ``(Ele, Rg, r)``: element types, productions and a root type.

    Parameters
    ----------
    root:
        Name of the distinguished root element type.
    productions:
        Mapping from element-type name to its content model.  Every element
        type referenced by any content model must have a production; types
        with no children should map to :class:`Empty`.
    text_types:
        Optional set of element types that carry a text (PCDATA) value.
        This is metadata used by the XML generator and shredder; the
        translation algorithms only need it for ``text() = c`` qualifiers.
    name:
        Optional human-readable name (used in reports and experiment output).
    """

    def __init__(
        self,
        root: str,
        productions: Mapping[str, ContentModel],
        text_types: Opt[Iterable[str]] = None,
        name: str = "",
    ) -> None:
        self._root = root
        self._productions: Dict[str, ContentModel] = dict(productions)
        self._text_types: FrozenSet[str] = frozenset(text_types or ())
        self._name = name or root
        self._validate()

    # -- construction helpers -------------------------------------------------

    def _validate(self) -> None:
        if self._root not in self._productions:
            raise DTDError(f"root type {self._root!r} has no production")
        for parent, model in self._productions.items():
            for child in model.element_types():
                if child not in self._productions:
                    raise DTDError(
                        f"element type {child!r} (child of {parent!r}) has no production"
                    )
        unknown_text = self._text_types - set(self._productions)
        if unknown_text:
            raise DTDError(f"text types {sorted(unknown_text)} are not element types")

    # -- basic accessors -------------------------------------------------------

    @property
    def name(self) -> str:
        """Human readable name of the DTD."""
        return self._name

    @property
    def root(self) -> str:
        """The root element type."""
        return self._root

    @property
    def element_types(self) -> List[str]:
        """All element types, root first, then sorted alphabetically."""
        rest = sorted(t for t in self._productions if t != self._root)
        return [self._root] + rest

    @property
    def text_types(self) -> FrozenSet[str]:
        """Element types that carry a PCDATA value."""
        return self._text_types

    def production(self, element_type: str) -> ContentModel:
        """Return the content model of ``element_type``."""
        try:
            return self._productions[element_type]
        except KeyError:
            raise DTDError(f"unknown element type {element_type!r}") from None

    def has_type(self, element_type: str) -> bool:
        """Return True if ``element_type`` is declared in this DTD."""
        return element_type in self._productions

    def __contains__(self, element_type: str) -> bool:
        return self.has_type(element_type)

    def __len__(self) -> int:
        return len(self._productions)

    def __iter__(self) -> Iterator[str]:
        return iter(self.element_types)

    def __repr__(self) -> str:
        return f"DTD(name={self._name!r}, root={self._root!r}, types={len(self)})"

    # -- structural queries ----------------------------------------------------

    def children(self, element_type: str) -> List[str]:
        """Return the distinct sub-element types of ``element_type`` (sorted)."""
        return sorted(self.production(element_type).element_types())

    def child_specs(self, element_type: str) -> List[ChildSpec]:
        """Return one :class:`ChildSpec` per distinct child of ``element_type``."""
        model = self.production(element_type)
        starred = model.starred_types()
        return [
            ChildSpec(element_type, child, child in starred)
            for child in sorted(model.element_types())
        ]

    def edges(self) -> List[ChildSpec]:
        """Return every parent/child edge of the DTD graph."""
        out: List[ChildSpec] = []
        for parent in self.element_types:
            out.extend(self.child_specs(parent))
        return out

    def parents(self, element_type: str) -> List[str]:
        """Return the element types that have ``element_type`` as a child."""
        return sorted(
            parent
            for parent in self._productions
            if element_type in self._productions[parent].element_types()
        )

    def reachable_from(self, element_type: str) -> Set[str]:
        """Return types reachable from ``element_type`` via one or more edges."""
        seen: Set[str] = set()
        frontier = list(self.children(element_type))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self.children(node))
        return seen

    def is_recursive(self) -> bool:
        """Return True if some element type is (transitively) defined in terms of itself."""
        return any(t in self.reachable_from(t) for t in self._productions)

    def recursive_types(self) -> Set[str]:
        """Return the element types that lie on a cycle of the DTD graph."""
        return {t for t in self._productions if t in self.reachable_from(t)}

    def with_name(self, name: str) -> "DTD":
        """Return a copy of this DTD carrying a different display name."""
        return DTD(self._root, self._productions, self._text_types, name=name)

    def restricted_to(self, keep: Iterable[str], root: Opt[str] = None, name: str = "") -> "DTD":
        """Return the sub-DTD induced by the element types in ``keep``.

        Productions are rewritten so that references to dropped types are
        removed (a dropped child inside a sequence/choice simply disappears).
        This is how the BIOML subgraph DTDs of Fig. 15 are derived from the
        full 4-cycle BIOML DTD.
        """
        keep_set = set(keep)
        new_root = root or self._root
        if new_root not in keep_set:
            raise DTDError(f"root {new_root!r} must be kept")

        def prune(model: ContentModel) -> ContentModel:
            if isinstance(model, Empty):
                return model
            if isinstance(model, TypeRef):
                return model if model.name in keep_set else Empty()
            if isinstance(model, Sequence):
                parts = tuple(p for p in (prune(x) for x in model.parts) if not isinstance(p, Empty))
                return seq(*parts)
            if isinstance(model, Choice):
                parts = tuple(p for p in (prune(x) for x in model.parts) if not isinstance(p, Empty))
                return choice(*parts)
            if isinstance(model, Star):
                inner = prune(model.inner)
                return Empty() if isinstance(inner, Empty) else Star(inner)
            if isinstance(model, Plus):
                inner = prune(model.inner)
                return Empty() if isinstance(inner, Empty) else Plus(inner)
            if isinstance(model, Optional):
                inner = prune(model.inner)
                return Empty() if isinstance(inner, Empty) else Optional(inner)
            raise DTDError(f"unknown content model {model!r}")

        productions = {t: prune(self._productions[t]) for t in keep_set}
        text_types = self._text_types & keep_set
        return DTD(new_root, productions, text_types, name=name or f"{self._name}-sub")

    def is_contained_in(self, other: "DTD") -> bool:
        """Return True if this DTD's graph is a subgraph of ``other``'s graph.

        Following Sect. 2.1: D is contained in D' when the DTD graph of D is
        a subgraph of D' under the identity mapping on element-type names and
        the roots coincide.
        """
        if self._root != other.root:
            return False
        for element_type in self._productions:
            if not other.has_type(element_type):
                return False
        my_edges = {(e.parent, e.child) for e in self.edges()}
        other_edges = {(e.parent, e.child) for e in other.edges()}
        return my_edges <= other_edges

    # -- export ---------------------------------------------------------------

    def to_text(self) -> str:
        """Render the DTD in the simple grammar syntax accepted by :func:`parse_dtd`."""
        lines = [f"root {self._root}"]
        for element_type in self.element_types:
            model = self._productions[element_type]
            suffix = " #text" if element_type in self._text_types else ""
            lines.append(f"{element_type} -> {model}{suffix}")
        return "\n".join(lines) + "\n"
