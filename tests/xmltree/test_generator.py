"""Unit tests for the synthetic DTD-driven XML generator."""

import pytest

from repro.dtd import samples
from repro.dtd.model import DTD, choice, empty, plus, ref, seq, star
from repro.xmltree.generator import GeneratorConfig, XMLGenerator, generate_document
from repro.xmltree.validator import conforms


class TestDeterminism:
    def test_same_seed_same_document(self):
        dtd = samples.cross_dtd()
        first = generate_document(dtd, x_l=6, x_r=3, seed=9)
        second = generate_document(dtd, x_l=6, x_r=3, seed=9)
        assert first.size() == second.size()
        assert [n.label for n in first.nodes()] == [n.label for n in second.nodes()]
        assert [n.value for n in first.nodes()] == [n.value for n in second.nodes()]

    def test_different_seed_changes_document(self):
        dtd = samples.cross_dtd()
        shapes = {
            tuple(n.label for n in generate_document(dtd, x_l=8, x_r=4, seed=seed).nodes())
            for seed in range(1, 6)
        }
        assert len(shapes) > 1

    def test_generate_is_repeatable_on_same_instance(self):
        generator = XMLGenerator(samples.cross_dtd(), GeneratorConfig(x_l=6, x_r=3, seed=4))
        assert generator.generate().size() == generator.generate().size()


class TestShapeParameters:
    def test_x_l_bounds_height(self):
        dtd = samples.cross_dtd()
        shallow = generate_document(dtd, x_l=4, x_r=3, seed=5)
        deep = generate_document(dtd, x_l=10, x_r=3, seed=5)
        assert shallow.height() <= 4
        assert deep.height() > shallow.height()

    def test_x_r_bounds_fanout(self):
        dtd = samples.cross_dtd()
        narrow = generate_document(dtd, x_l=6, x_r=2, seed=6)
        for node in narrow.nodes():
            assert len(node.children) <= 2

    def test_wider_x_r_gives_bigger_documents(self):
        dtd = samples.cross_dtd()
        narrow = generate_document(dtd, x_l=8, x_r=2, seed=7)
        wide = generate_document(dtd, x_l=8, x_r=5, seed=7)
        assert wide.size() > narrow.size()

    def test_max_elements_trims(self):
        dtd = samples.cross_dtd()
        trimmed = generate_document(dtd, x_l=12, x_r=6, seed=8, max_elements=500)
        # Required elements may push slightly past the budget, but the
        # document must stay in the same ballpark.
        assert trimmed.size() <= 650

    def test_root_label_matches_dtd(self):
        tree = generate_document(samples.gedml_dtd(), x_l=5, x_r=2, seed=1)
        assert tree.root.label == "even"


class TestConformanceAndValues:
    @pytest.mark.parametrize(
        "factory", [samples.dept_dtd, samples.cross_dtd, samples.bioml_dtd, samples.gedml_dtd]
    )
    def test_generated_documents_conform(self, factory):
        dtd = factory()
        tree = generate_document(dtd, x_l=6, x_r=3, seed=13)
        assert conforms(tree, dtd)

    def test_text_values_only_on_text_types(self):
        dtd = samples.dept_dtd()
        tree = generate_document(dtd, x_l=6, x_r=3, seed=2)
        for node in tree.nodes():
            if node.value is not None:
                assert node.label in dtd.text_types

    def test_distinct_values_controls_selectivity(self):
        dtd = samples.cross_dtd()
        tree = generate_document(dtd, x_l=8, x_r=4, seed=3, distinct_values=2)
        values = {n.value for n in tree.nodes_with_label("b")}
        assert values <= {"b-0", "b-1"}

    def test_required_children_present_even_past_limit(self):
        # 'student' requires sno, name, qualified even at the level limit.
        dtd = samples.dept_dtd()
        tree = generate_document(dtd, x_l=3, x_r=2, seed=4)
        for student in tree.nodes_with_label("student"):
            assert {c.label for c in student.children} >= {"sno", "name", "qualified"}


class TestChoiceAndPlusHandling:
    def test_choice_picks_cheapest_at_limit(self):
        dtd = DTD(
            "r",
            {
                "r": ref("mid"),
                "mid": choice(seq("heavy1", "heavy2"), star("light")),
                "heavy1": empty(),
                "heavy2": empty(),
                "light": empty(),
            },
        )
        tree = generate_document(dtd, x_l=1, x_r=3, seed=1)
        # At the limit the generator must prefer the nullable branch.
        assert tree.labels().get("heavy1", 0) == 0

    def test_plus_generates_at_least_one(self):
        dtd = DTD("r", {"r": plus("a"), "a": empty()})
        tree = generate_document(dtd, x_l=5, x_r=3, seed=2)
        assert tree.labels()["a"] >= 1

    def test_hard_depth_limit_guarantees_termination(self):
        # A DTD whose only cycle is through *required* content would never
        # terminate without the hard depth limit.
        dtd = DTD("r", {"r": ref("a"), "a": ref("r")})
        config = GeneratorConfig(x_l=4, x_r=2, seed=0, hard_depth_limit=20)
        tree = XMLGenerator(dtd, config).generate()
        assert tree.height() <= 20
