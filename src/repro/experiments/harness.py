"""Shared infrastructure for the experiment modules.

An :class:`Approach` names one translator configuration (the paper's "R",
"E" and "X" curves); :func:`measure_query` runs one query under one
approach over a shredded document and records translation time, execution
time and result size.  The experiment modules assemble these measurements
into the rows/series of the paper's figures; :func:`format_table` renders
them as plain-text tables for the console and EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.expath_to_sql import TranslationOptions
from repro.core.optimize import push_selection_options, standard_options
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd.model import DTD
from repro.relational.executor import Executor
from repro.shredding.shredder import ShreddedDocument

__all__ = [
    "Approach",
    "MeasuredQuery",
    "default_approaches",
    "measure_query",
    "format_table",
]


@dataclass(frozen=True)
class Approach:
    """One translator configuration measured by the experiments.

    The paper's three curves are:

    * ``R`` — SQLGen-R: descendants via the SQL'99 multi-relation recursive
      union (black-box evaluation, no selection pushing);
    * ``E`` — the translation framework with CycleE (Tarjan's regular
      expressions) expanding the descendant axis;
    * ``X`` — the framework with CycleEX, i.e. the paper's approach.

    ``E`` and ``X`` both use the optimised lowering of Sect. 5.2 (prefix
    joins and selections pushed into the LFP operator); they differ only in
    how ``//`` is expanded, which is exactly the comparison the paper makes.
    """

    name: str
    strategy: DescendantStrategy
    options: TranslationOptions

    def translator(self, dtd: DTD) -> XPathToSQLTranslator:
        """Build a translator for this approach over ``dtd``."""
        return XPathToSQLTranslator(dtd, strategy=self.strategy, options=self.options)


def default_approaches(include_cyclee: bool = True) -> List[Approach]:
    """The approaches compared in Exp-1/3/4: R, E and X (in that order)."""
    approaches = [
        Approach("R", DescendantStrategy.RECURSIVE_UNION, standard_options()),
    ]
    if include_cyclee:
        approaches.append(Approach("E", DescendantStrategy.CYCLEE, push_selection_options()))
    approaches.append(Approach("X", DescendantStrategy.CYCLEEX, push_selection_options()))
    return approaches


@dataclass
class MeasuredQuery:
    """One (approach, query, dataset) measurement."""

    approach: str
    query: str
    dataset: str
    translation_seconds: float
    execution_seconds: float
    result_rows: int
    document_elements: int

    @property
    def total_seconds(self) -> float:
        """Translation plus execution time."""
        return self.translation_seconds + self.execution_seconds


def measure_query(
    approach: Approach,
    dtd: DTD,
    shredded: ShreddedDocument,
    query: str,
    dataset_label: str = "",
    translator: Optional[XPathToSQLTranslator] = None,
) -> MeasuredQuery:
    """Translate and execute ``query`` under ``approach``; return the measurement.

    A pre-built translator may be passed so repeated measurements over the
    same DTD do not pay the CycleEX/CycleE table construction each time
    (the paper likewise reports query evaluation time, not translation-table
    setup).
    """
    translator = translator or approach.translator(dtd)
    start = time.perf_counter()
    result = translator.translate(query)
    translation_seconds = time.perf_counter() - start

    executor = Executor(shredded.database, lazy=True)
    start = time.perf_counter()
    relation = executor.run(result.program)
    execution_seconds = time.perf_counter() - start

    return MeasuredQuery(
        approach=approach.name,
        query=query,
        dataset=dataset_label,
        translation_seconds=translation_seconds,
        execution_seconds=execution_seconds,
        result_rows=len(relation),
        document_elements=shredded.tree.size(),
    )


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width plain-text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
