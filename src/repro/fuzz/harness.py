"""The fuzzing loop: generate cases, run the oracle, shrink and save failures.

:func:`run_fuzz` is the engine behind ``repro fuzz``: from one master seed
it derives a deterministic stream of (DTD, query, document) cases, answers
each on every engine of the :class:`~repro.fuzz.oracle.DifferentialOracle`,
auto-shrinks any disagreement to a minimal repro and (optionally) writes
both the original and the shrunk case into a JSON corpus directory.
Replaying a corpus (``repro fuzz --replay``, or the checked-in regression
corpus under ``tests/fuzz/corpus/``) re-runs saved cases through the same
oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from pathlib import Path as FilePath
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro import obs
from repro.fuzz.cases import DocumentSpec, FuzzCase
from repro.fuzz.dtd_gen import DTDGenConfig, RandomDTDGenerator
from repro.fuzz.oracle import CaseOutcome, DifferentialOracle, EngineSpec
from repro.fuzz.shrink import shrink_case
from repro.fuzz.xpath_gen import RandomXPathGenerator, XPathGenConfig

__all__ = ["FuzzConfig", "FuzzFailure", "FuzzReport", "run_fuzz", "replay_corpus"]

_SEED_SPACE = 2**32


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing run.

    ``budget`` counts *cases* (query/document pairs); every DTD serves
    ``queries_per_dtd`` cases before a fresh one is generated, so a default
    run sweeps both many schemas and many queries per schema.
    """

    seed: int = 0
    budget: int = 100
    queries_per_dtd: int = 4
    min_types: int = 3
    max_types: int = 7
    max_cycle_edges: int = 3
    document: DocumentSpec = field(default_factory=DocumentSpec)
    shrink: bool = True
    corpus_dir: Optional[str] = None


@dataclass
class FuzzFailure:
    """One disagreement: the original case, its shrunk repro, the verdict."""

    original: FuzzCase
    shrunk: FuzzCase
    outcome: CaseOutcome
    saved_paths: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable failure report (shrunk repro first)."""
        lines = [self.outcome.describe()]
        lines.append(f"  shrunk from: query {self.original.query!r}")
        if self.saved_paths:
            lines.append(f"  saved: {', '.join(self.saved_paths)}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """The result of one :func:`run_fuzz` sweep."""

    seed: int
    cases_run: int
    engines: List[str]
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    # Total wall seconds each engine spent across every case of the sweep —
    # the slow-engine visibility the corpus replays lacked.
    engine_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every case agreed on every engine."""
        return not self.failures

    def describe(self) -> str:
        """Multi-line summary (deterministic apart from the final timing line).

        Everything timing-dependent stays on the *last* line: seed-
        reproducibility checks compare all lines but the final one.
        """
        lines = [
            f"fuzz: seed={self.seed} cases={self.cases_run} "
            f"engines={len(self.engines)} disagreements={len(self.failures)}"
        ]
        for failure in self.failures:
            lines.append(failure.describe())
        slowest = ", ".join(
            f"{name}={seconds:.2f}s"
            for name, seconds in sorted(
                self.engine_seconds.items(), key=lambda item: -item[1]
            )[:3]
        )
        timing = f"elapsed: {self.elapsed_seconds:.2f}s"
        if slowest:
            timing += f" (slowest engines: {slowest})"
        lines.append(timing)
        return "\n".join(lines)


def run_fuzz(
    config: Optional[FuzzConfig] = None,
    engines: Optional[Sequence[EngineSpec]] = None,
    on_case: Optional[Callable[[CaseOutcome], None]] = None,
) -> FuzzReport:
    """Run one seeded differential-fuzzing sweep.

    Parameters
    ----------
    config:
        The run's knobs (defaults to :class:`FuzzConfig`).
    engines:
        Engine grid override; defaults to
        :func:`~repro.fuzz.oracle.default_engines`.
    on_case:
        Optional per-case callback (progress reporting).
    """
    config = config or FuzzConfig()
    if config.queries_per_dtd < 1:
        raise ValueError("queries_per_dtd must be >= 1")
    oracle = DifferentialOracle(engines)
    rng = random.Random(config.seed)
    corpus_dir: Optional[FilePath] = None
    if config.corpus_dir is not None:
        corpus_dir = FilePath(config.corpus_dir)
        corpus_dir.mkdir(parents=True, exist_ok=True)

    report = FuzzReport(
        seed=config.seed,
        cases_run=0,
        engines=[engine.name for engine in oracle.engines],
    )
    sweep_timer = obs.Timer()
    with sweep_timer:
        _fuzz_loop(config, oracle, rng, corpus_dir, report, on_case)
    report.elapsed_seconds = sweep_timer.seconds
    return report


def _fuzz_loop(
    config: FuzzConfig,
    oracle: DifferentialOracle,
    rng: random.Random,
    corpus_dir: Optional[FilePath],
    report: FuzzReport,
    on_case: Optional[Callable[[CaseOutcome], None]],
) -> None:
    """The generate/run/shrink/save loop of :func:`run_fuzz` (timed by it)."""
    while report.cases_run < config.budget:
        dtd_config = DTDGenConfig(
            seed=rng.randrange(_SEED_SPACE),
            min_types=config.min_types,
            max_types=config.max_types,
            cycle_edges=rng.randint(0, config.max_cycle_edges),
        )
        dtd = RandomDTDGenerator(dtd_config).generate()
        query_generator = RandomXPathGenerator(
            dtd, XPathGenConfig(seed=rng.randrange(_SEED_SPACE))
        )
        for _ in range(config.queries_per_dtd):
            if report.cases_run >= config.budget:
                break
            case = FuzzCase(
                label=f"fuzz-{config.seed}-{report.cases_run:05d}",
                dtd_text=dtd.to_text(),
                query=query_generator.generate(),
                document=replace(config.document, seed=rng.randrange(_SEED_SPACE)),
            )
            outcome = oracle.run(case)
            report.cases_run += 1
            for engine_name, seconds in outcome.engine_seconds.items():
                report.engine_seconds[engine_name] = (
                    report.engine_seconds.get(engine_name, 0.0) + seconds
                )
            if on_case is not None:
                on_case(outcome)
            if outcome.ok:
                continue
            shrunk = case
            final_outcome = outcome
            if config.shrink:
                # Shrink against only the engines that disagreed (usually a
                # small subset of the grid), then confirm the shrunk repro
                # on the full grid for the report.
                failing_names = {d.engine for d in outcome.disagreements}
                focused = [e for e in oracle.engines if e.name in failing_names]
                shrink_oracle = DifferentialOracle(focused) if focused else oracle
                shrunk = shrink_case(case, lambda c: not shrink_oracle.run(c).ok)
                if shrunk is not case:
                    final_outcome = oracle.run(shrunk)
            failure = FuzzFailure(original=case, shrunk=shrunk, outcome=final_outcome)
            if corpus_dir is not None:
                for suffix, saved_case, saved_outcome in (
                    ("", case, outcome),
                    ("-shrunk", shrunk, final_outcome),
                ):
                    if suffix and saved_case is case:
                        continue
                    path = corpus_dir / f"{case.label}{suffix}.json"
                    saved_case.save(
                        path,
                        extra={
                            "timing": {
                                "engine_seconds": dict(
                                    sorted(saved_outcome.engine_seconds.items())
                                )
                            }
                        },
                    )
                    failure.saved_paths.append(str(path))
            report.failures.append(failure)


def replay_corpus(
    path: Union[str, FilePath],
    engines: Optional[Sequence[EngineSpec]] = None,
    oracle: Optional[object] = None,
) -> List[CaseOutcome]:
    """Re-run saved cases (one ``.json`` file or a directory of them).

    Returns one :class:`CaseOutcome` per case, in file-name order.  Pass
    ``oracle`` (anything with ``run(case) -> CaseOutcome``, e.g. a
    :class:`repro.live.fuzzer.MutationOracle`) to replay with a different
    arbiter than the default :class:`DifferentialOracle` — mutation-carrying
    format-2 cases need the mutation oracle's delta/scratch arms.
    """
    root = FilePath(path)
    if root.is_dir():
        files = sorted(root.glob("*.json"))
    else:
        files = [root]
    if not files:
        raise FileNotFoundError(f"no fuzz cases found under {root}")
    if oracle is None:
        oracle = DifferentialOracle(engines)
    return [oracle.run(FuzzCase.load(file)) for file in files]  # type: ignore[attr-defined]
