"""Unit tests for the relational executor (joins, fixpoints, recursion)."""

import pytest

from repro.errors import ExecutionError, SchemaError
from repro.relational.algebra import (
    AntiJoin,
    Assignment,
    Compose,
    Condition,
    Difference,
    EdgeStep,
    EquiJoin,
    Fixpoint,
    IdentityRelation,
    Intersect,
    Program,
    Project,
    RecursiveUnion,
    Scan,
    Select,
    SemiJoin,
    TagProject,
    Union,
)
from repro.relational.database import Database
from repro.relational.executor import Executor, execute_program
from repro.relational.relation import Relation
from repro.relational.schema import NODE_COLUMNS, DatabaseSchema, RelationSchema


@pytest.fixture()
def database():
    """A tiny chain/cycle database.

    Nodes: root r(0); a-nodes 1, 2; b-nodes 3, 4; the b-node 4 has an a-child
    5 (making a recursive a->b->a chain), and node 5 has a b-child 6.
    """
    schema = DatabaseSchema(
        [
            RelationSchema("R_r", NODE_COLUMNS),
            RelationSchema("R_a", NODE_COLUMNS),
            RelationSchema("R_b", NODE_COLUMNS),
        ],
        node_relations=["R_r", "R_a", "R_b"],
        element_relations={"r": "R_r", "a": "R_a", "b": "R_b"},
    )
    db = Database(schema)
    db.set_relation("R_r", Relation(NODE_COLUMNS, {("_", 0, "_")}))
    db.set_relation(
        "R_a",
        Relation(NODE_COLUMNS, {(0, 1, "a-0"), (0, 2, "a-1"), (4, 5, "a-2")}),
    )
    db.set_relation(
        "R_b",
        Relation(NODE_COLUMNS, {(1, 3, "b-0"), (1, 4, "b-1"), (5, 6, "b-2")}),
    )
    return db


def run(database, expr):
    return Executor(database).evaluate(expr)


class TestBasicOperators:
    def test_scan(self, database):
        assert len(run(database, Scan("R_a"))) == 3

    def test_scan_unknown_relation(self, database):
        with pytest.raises(ExecutionError):
            run(database, Scan("nope"))

    def test_select_equality_and_inequality(self, database):
        eq = run(database, Select(Scan("R_a"), (Condition("V", "=", "a-1"),)))
        assert eq.rows == {(0, 2, "a-1")}
        ne = run(database, Select(Scan("R_a"), (Condition("F", "!=", 0),)))
        assert ne.rows == {(4, 5, "a-2")}

    def test_select_unknown_operator(self, database):
        with pytest.raises(ExecutionError):
            run(database, Select(Scan("R_a"), (Condition("V", "<", "a"),)))

    def test_project_with_aliases(self, database):
        projected = run(database, Project(Scan("R_a"), ("T", "T", "V"), ("F", "T", "V")))
        assert projected.columns == ("F", "T", "V")
        assert (1, 1, "a-0") in projected.rows

    def test_project_alias_arity_checked(self, database):
        with pytest.raises(SchemaError):
            run(database, Project(Scan("R_a"), ("T",), ("F", "T")))

    def test_tag_project(self, database):
        tagged = run(database, TagProject(Scan("R_b"), "b"))
        assert tagged.columns == ("F", "T", "V", "TAG")
        assert (1, 3, "b-0", "b") in tagged.rows

    def test_identity_relation(self, database):
        identity = run(database, IdentityRelation())
        assert (0, 0, "_") in identity.rows
        assert len(identity) == 7

    def test_compose(self, database):
        composed = run(database, Compose(Scan("R_a"), Scan("R_b")))
        assert composed.rows == {(0, 3, "b-0"), (0, 4, "b-1"), (4, 6, "b-2")}

    def test_compose_empty_shortcircuit(self, database):
        empty = Select(Scan("R_a"), (Condition("V", "=", "none"),))
        composed = run(database, Compose(empty, Scan("R_b")))
        assert len(composed) == 0

    def test_equijoin_output_spec(self, database):
        join = EquiJoin(
            Scan("R_a"),
            Scan("R_b"),
            left_column="T",
            right_column="F",
            output=(("L", "F", "start"), ("R", "T", "end")),
        )
        result = run(database, join)
        assert result.columns == ("start", "end")
        assert (0, 3) in result.rows

    def test_semijoin_and_antijoin(self, database):
        with_b_child = run(database, SemiJoin(Scan("R_a"), Scan("R_b"), "T", "F"))
        assert {row[1] for row in with_b_child.rows} == {1, 5}
        without_b_child = run(database, AntiJoin(Scan("R_a"), Scan("R_b"), "T", "F"))
        assert {row[1] for row in without_b_child.rows} == {2}

    def test_union_and_difference_and_intersect(self, database):
        union = run(database, Union((Scan("R_a"), Scan("R_b"))))
        assert len(union) == 6
        diff = run(database, Difference(Scan("R_a"), Scan("R_a")))
        assert len(diff) == 0
        inter = run(database, Intersect(Union((Scan("R_a"), Scan("R_b"))), Scan("R_b")))
        assert len(inter) == 3

    def test_union_mismatched_columns_rejected(self, database):
        with pytest.raises(SchemaError):
            run(database, Union((Scan("R_a"), TagProject(Scan("R_b"), "b"))))


class TestFixpoint:
    def test_transitive_closure(self, database):
        # Edges a->b (via parenthood): closure over R_a union R_b composes
        # chains 0 -> 1 -> 3/4 -> 5 -> 6.
        base = Union((Scan("R_a"), Scan("R_b")))
        closure = run(database, Fixpoint(base))
        assert (0, 6, "b-2") in closure.rows  # root reaches the deepest node
        assert (1, 5, "a-2") in closure.rows
        assert (0, 1, "a-0") in closure.rows  # single edges included

    def test_closure_requires_at_least_one_step(self, database):
        closure = run(database, Fixpoint(Union((Scan("R_a"), Scan("R_b")))))
        assert all(row[0] != row[1] for row in closure.rows)

    def test_source_anchor_restricts_origins(self, database):
        base = Union((Scan("R_a"), Scan("R_b")))
        anchored = run(database, Fixpoint(base, source_anchor=Scan("R_r")))
        assert {row[0] for row in anchored.rows} == {0}
        unanchored = run(database, Fixpoint(base))
        assert {row for row in anchored.rows} == {
            row for row in unanchored.rows if row[0] == 0
        }

    def test_target_anchor_restricts_targets(self, database):
        # The target anchor is the relation composed *after* the closure, so
        # the closure only keeps tuples whose T can join that relation's F
        # (here: the parent of node 6, i.e. node 5).
        base = Union((Scan("R_a"), Scan("R_b")))
        target = Select(Scan("R_b"), (Condition("T", "=", 6),))
        anchored = run(database, Fixpoint(base, target_anchor=target))
        assert {row[1] for row in anchored.rows} == {5}
        assert (0, 5, "a-2") in anchored.rows
        assert (1, 5, "a-2") in anchored.rows

    def test_fixpoint_iterations_recorded(self, database):
        executor = Executor(database)
        executor.evaluate(Fixpoint(Union((Scan("R_a"), Scan("R_b")))))
        assert executor.stats.fixpoint_iterations >= 3


class TestRecursiveUnion:
    def _recursive(self):
        init = TagProject(SemiJoin(Scan("R_a"), Scan("R_r"), "F", "T"), "a")
        steps = (
            EdgeStep(Scan("R_b"), "a", "b"),
            EdgeStep(Scan("R_a"), "b", "a"),
        )
        return RecursiveUnion(init, steps)

    def test_origin_preserving_exploration(self, database):
        result = run(database, self._recursive())
        assert result.columns == ("F", "T", "V", "TAG")
        # Origins are the children of the root (a-nodes 1 and 2)... the F of
        # the init tuples is the root 0, so every tuple keeps origin 0.
        assert {row[0] for row in result.rows} == {0}
        assert (0, 6, "b-2", "b") in result.rows

    def test_tag_selection_gives_descendants_of_one_type(self, database):
        program = Program(
            [Assignment("acc", self._recursive())],
            Project(Select(Scan("acc"), (Condition("TAG", "=", "b"),)), ("F", "T", "V")),
        )
        result, _ = execute_program(database, program)
        assert {row[1] for row in result.rows} == {3, 4, 6}

    def test_init_column_check(self, database):
        bad = RecursiveUnion(Scan("R_a"), (EdgeStep(Scan("R_b"), "a", "b"),))
        with pytest.raises(SchemaError):
            run(database, bad)

    def test_iterations_recorded(self, database):
        executor = Executor(database)
        executor.evaluate(self._recursive())
        assert executor.stats.recursive_union_iterations >= 3


class TestProgramsAndStrategies:
    def _program(self):
        return Program(
            [
                Assignment("ab", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("unused", Compose(Scan("R_b"), Scan("R_a"))),
            ],
            Select(Scan("ab"), (Condition("F", "=", 0),)),
        )

    def test_lazy_execution_skips_unused_temporaries(self, database):
        executor = Executor(database, lazy=True)
        result = executor.run(self._program())
        assert len(result) == 2
        assert executor.stats.temporaries_evaluated == 1

    def test_eager_execution_evaluates_everything(self, database):
        executor = Executor(database, lazy=False)
        result = executor.run(self._program())
        assert len(result) == 2
        assert executor.stats.temporaries_evaluated == 2

    def test_lazy_and_eager_agree(self, database):
        lazy_result, _ = execute_program(database, self._program(), lazy=True)
        eager_result, _ = execute_program(database, self._program(), lazy=False)
        assert lazy_result == eager_result

    def test_unknown_temp_in_eager_mode(self, database):
        program = Program([], Scan("never_defined"))
        with pytest.raises(ExecutionError):
            execute_program(database, program, lazy=False)

    def test_stats_dictionary(self, database):
        _, stats = execute_program(database, self._program())
        as_dict = stats.as_dict()
        assert as_dict["temporaries_evaluated"] == 1
        assert as_dict["elapsed_seconds"] >= 0

    def test_reused_executor_reports_per_run_stats(self, database):
        # Issue 8 satellite: ``run`` used to accumulate into ``self.stats``
        # forever, so a reused executor double-counted iterations/tuples in
        # repeated-measurement harnesses.  Two identical runs must now
        # report identical (per-run) numbers.
        program = Program(
            [Assignment("closure", Fixpoint(Union((Scan("R_a"), Scan("R_b")))))],
            Scan("closure"),
        )
        executor = Executor(database)
        executor.run(program)
        first = executor.stats.as_dict()
        executor.run(program)
        second = executor.stats.as_dict()
        assert first["fixpoint_iterations"] > 0
        assert first["temporaries_evaluated"] == 1
        for counter in (
            "fixpoint_iterations",
            "recursive_union_iterations",
            "join_output_rows",
            "union_output_rows",
            "tuples_materialized",
            "temporaries_evaluated",
        ):
            assert second[counter] == first[counter], counter
