"""Synthetic DTD-conforming XML generator.

The paper generates test data with the IBM AlphaWorks XML Generator and
controls the shape of the documents through two parameters (Sect. 6):

* ``X_L`` — the maximum number of levels in the resulting tree.  Beyond
  ``X_L`` levels the generator adds none of the optional elements (``*`` and
  ``?``) and only one of each required element.
* ``X_R`` — the maximum number of occurrences of a child element under a
  ``*`` or ``+``; the actual number is random between 0 (1 for ``+``) and
  ``X_R``.

The IBM tool is not available offline, so :class:`XMLGenerator` reimplements
exactly that behaviour on top of our DTD content models, with a seeded RNG
for reproducibility and an optional element budget mirroring the paper's
practice of trimming excessively large documents to a fixed size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dtd.model import (
    DTD,
    Choice,
    ContentModel,
    Empty,
    Optional as OptModel,
    Plus,
    Sequence as SeqModel,
    Star,
    TypeRef,
)
from repro.errors import GenerationError
from repro.xmltree.tree import XMLNode, XMLTree

__all__ = ["GeneratorConfig", "XMLGenerator", "generate_document"]


@dataclass
class GeneratorConfig:
    """Shape parameters for the generator.

    Attributes
    ----------
    x_l:
        Maximum number of levels (the paper's ``X_L``, default 4 there; we
        default to 8 because our DTD graphs are shallow).
    x_r:
        Maximum repetition under ``*``/``+`` (the paper's ``X_R``).
    max_elements:
        Optional element budget.  Once the budget is reached the generator
        behaves as if every node were at the level limit (no optional
        content), which trims the document close to the requested size.
    seed:
        RNG seed; the same seed and parameters produce the same document.
    distinct_values:
        Number of distinct text values generated per text element type.
        Values look like ``"<label>-<k>"`` with ``k`` in ``[0, distinct_values)``,
        so selective predicates can target a known fraction of the elements.
    hard_depth_limit:
        Absolute recursion stop to guarantee termination on DTDs whose
        required content is itself recursive.
    """

    x_l: int = 8
    x_r: int = 4
    max_elements: Optional[int] = None
    seed: int = 0
    distinct_values: int = 100
    hard_depth_limit: int = 60


class XMLGenerator:
    """Generate random documents conforming to a DTD.

    Example
    -------
    >>> from repro.dtd.samples import cross_dtd
    >>> gen = XMLGenerator(cross_dtd(), GeneratorConfig(x_l=6, x_r=3, seed=1))
    >>> tree = gen.generate()
    >>> tree.root.label
    'a'
    """

    def __init__(self, dtd: DTD, config: Optional[GeneratorConfig] = None) -> None:
        self._dtd = dtd
        self._config = config or GeneratorConfig()
        self._rng = random.Random(self._config.seed)
        self._count = 0
        self._value_counters: Dict[str, int] = {}

    # -- public API -------------------------------------------------------------

    def generate(self) -> XMLTree:
        """Generate one document from the configured DTD."""
        self._rng = random.Random(self._config.seed)
        self._count = 1
        self._value_counters = {}
        root = XMLNode(0, self._dtd.root, self._value_for(self._dtd.root))
        tree = XMLTree(root)
        self._expand(tree, root, depth=1)
        return tree

    # -- internals --------------------------------------------------------------

    def _budget_left(self) -> bool:
        budget = self._config.max_elements
        return budget is None or self._count < budget

    def _at_limit(self, depth: int) -> bool:
        return depth >= self._config.x_l or not self._budget_left()

    def _value_for(self, label: str) -> Optional[str]:
        if label not in self._dtd.text_types:
            return None
        counter = self._value_counters.get(label, 0)
        self._value_counters[label] = counter + 1
        return f"{label}-{counter % self._config.distinct_values}"

    def _expand(self, tree: XMLTree, node: XMLNode, depth: int) -> None:
        if depth >= self._config.hard_depth_limit:
            return
        model = self._dtd.production(node.label)
        for child_label in self._instantiate(model, depth):
            child = tree.add_child(node, child_label, self._value_for(child_label))
            self._count += 1
            self._expand(tree, child, depth + 1)

    def _instantiate(self, model: ContentModel, depth: int) -> List[str]:
        """Produce an ordered list of child labels matching ``model``."""
        limited = self._at_limit(depth)
        if isinstance(model, Empty):
            return []
        if isinstance(model, TypeRef):
            return [model.name]
        if isinstance(model, SeqModel):
            out: List[str] = []
            for part in model.parts:
                out.extend(self._instantiate(part, depth))
            return out
        if isinstance(model, Choice):
            if limited:
                branch = self._cheapest_branch(model.parts)
            else:
                branch = self._rng.choice(model.parts)
            return self._instantiate(branch, depth)
        if isinstance(model, Star):
            if limited:
                return []
            # Immediately below the root at least one repetition is forced so
            # that seeded runs never degenerate to a single-node document
            # (the IBM generator's documents are likewise never empty).
            lower = 1 if depth <= 1 else 0
            count = self._rng.randint(lower, max(lower, self._config.x_r))
            return self._repeat(model.inner, count, depth)
        if isinstance(model, Plus):
            if limited:
                return self._instantiate(model.inner, depth)
            count = self._rng.randint(1, max(1, self._config.x_r))
            return self._repeat(model.inner, count, depth)
        if isinstance(model, OptModel):
            if limited or not self._rng.random() < 0.5:
                return []
            return self._instantiate(model.inner, depth)
        raise GenerationError(f"unknown content model {model!r}")

    def _repeat(self, inner: ContentModel, count: int, depth: int) -> List[str]:
        out: List[str] = []
        for _ in range(count):
            if not self._budget_left():
                break
            out.extend(self._instantiate(inner, depth))
        return out

    def _cheapest_branch(self, parts: Sequence[ContentModel]) -> ContentModel:
        """Pick the branch with the fewest required elements (prefer nullable)."""

        def cost(model: ContentModel) -> int:
            if isinstance(model, (Empty, Star, OptModel)):
                return 0
            if isinstance(model, TypeRef):
                return 1
            if isinstance(model, SeqModel):
                return sum(cost(p) for p in model.parts)
            if isinstance(model, Choice):
                return min(cost(p) for p in model.parts)
            if isinstance(model, Plus):
                return cost(model.inner)
            return 1

        return min(parts, key=cost)


def generate_document(
    dtd: DTD,
    x_l: int = 8,
    x_r: int = 4,
    max_elements: Optional[int] = None,
    seed: int = 0,
    distinct_values: int = 100,
) -> XMLTree:
    """Convenience wrapper: generate one document with the given shape knobs."""
    config = GeneratorConfig(
        x_l=x_l,
        x_r=x_r,
        max_elements=max_elements,
        seed=seed,
        distinct_values=distinct_values,
    )
    return XMLGenerator(dtd, config).generate()
