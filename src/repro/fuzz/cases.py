"""Serializable fuzz cases: one (DTD, document spec, query) triple.

A :class:`FuzzCase` is fully self-describing — the DTD travels as grammar
text (the syntax of :func:`repro.dtd.parser.parse_dtd` / ``DTD.to_text``)
and the document as a :class:`DocumentSpec` (the ``XMLGenerator`` knobs),
so a case serialized to JSON replays bit-identically anywhere.  Failing
cases saved by the harness (``repro fuzz --save-failures``) and the
checked-in regression corpus under ``tests/fuzz/corpus/`` both use this
format.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path as FilePath
from typing import Dict, Optional, Tuple, Union

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.xmltree.generator import generate_document
from repro.xmltree.tree import XMLTree

__all__ = ["DocumentSpec", "FuzzCase", "CASE_FORMAT_VERSION", "SUPPORTED_CASE_FORMATS"]

# The format written for cases that carry a mutation script.  Version 1
# (the original read-only triple) is still written when a case has no
# mutations, so the checked-in regression corpus stays byte-stable and
# older readers keep working; both versions are accepted on read.
CASE_FORMAT_VERSION = 2
SUPPORTED_CASE_FORMATS = (1, 2)


@dataclass(frozen=True)
class DocumentSpec:
    """The generator knobs that reproduce one document from a DTD."""

    x_l: int = 8
    x_r: int = 3
    max_elements: int = 150
    seed: int = 0
    distinct_values: int = 4

    def generate(self, dtd: DTD) -> XMLTree:
        """Materialise the document this spec describes."""
        return generate_document(
            dtd,
            x_l=self.x_l,
            x_r=self.x_r,
            max_elements=self.max_elements,
            seed=self.seed,
            distinct_values=self.distinct_values,
        )


@dataclass(frozen=True)
class FuzzCase:
    """One differential scenario: a DTD, a document recipe and a query.

    ``mutations`` (format 2) optionally carries a live-update script — a
    tuple of :mod:`repro.live.mutations` records applied to the generated
    document before querying.  Mutation-free cases round-trip as format 1.
    """

    label: str
    dtd_text: str
    query: str
    document: DocumentSpec = field(default_factory=DocumentSpec)
    mutations: Tuple = ()

    # -- materialisation --------------------------------------------------------

    def dtd(self) -> DTD:
        """Parse the DTD text back into a :class:`DTD`."""
        return parse_dtd(self.dtd_text, name=self.label)

    def tree(self) -> XMLTree:
        """Generate the case's (pre-mutation) document."""
        return self.document.generate(self.dtd())

    def mutated_tree(self) -> XMLTree:
        """Generate the document and apply the mutation script to it."""
        from repro.live.mutations import DocumentMutator

        dtd = self.dtd()
        tree = self.document.generate(dtd)
        if self.mutations:
            mutator = DocumentMutator(tree, dtd)
            for mutation in self.mutations:
                mutator.apply(mutation)
        return tree

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe).

        Cases without mutations serialize as format 1 — byte-identical to
        the pre-live layout — so the existing corpus never churns.
        """
        record: Dict[str, object] = {
            "format": 1,
            "label": self.label,
            "dtd": self.dtd_text,
            "query": self.query,
            "document": asdict(self.document),
        }
        if self.mutations:
            from repro.live.mutations import mutation_to_dict

            record["format"] = CASE_FORMAT_VERSION
            record["mutations"] = [
                mutation_to_dict(mutation) for mutation in self.mutations
            ]
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzCase":
        """Rebuild a case from :meth:`to_dict` output.

        Malformed input (hand-edited or version-skewed corpus files) raises
        :class:`ValueError` with a description, never a raw KeyError.
        """
        version = data.get("format", 1)
        if version not in SUPPORTED_CASE_FORMATS:
            raise ValueError(f"unsupported fuzz-case format {version!r}")
        missing = [key for key in ("label", "dtd", "query") if key not in data]
        if missing:
            raise ValueError(f"fuzz case is missing field(s) {missing}")
        document_data = data.get("document", {})
        if not isinstance(document_data, dict):
            raise ValueError(f"fuzz-case document must be an object, got {document_data!r}")
        known = set(DocumentSpec.__dataclass_fields__)
        unknown = sorted(set(document_data) - known)
        if unknown:
            raise ValueError(f"fuzz-case document has unknown knob(s) {unknown}")
        wrong_type = sorted(
            key
            for key, value in document_data.items()
            if not isinstance(value, int) or isinstance(value, bool)
        )
        if wrong_type:
            # A string seed would still *run* (random.Random accepts it) but
            # produce a different document, silently breaking replay fidelity.
            raise ValueError(f"fuzz-case document knob(s) {wrong_type} must be integers")
        mutation_data = data.get("mutations", [])
        if version == 1 and mutation_data:
            raise ValueError("format-1 fuzz cases cannot carry mutations")
        if not isinstance(mutation_data, list):
            raise ValueError(
                f"fuzz-case mutations must be a list, got {mutation_data!r}"
            )
        mutations: Tuple = ()
        if mutation_data:
            from repro.errors import MutationError
            from repro.live.mutations import mutation_from_dict

            try:
                mutations = tuple(
                    mutation_from_dict(mutation) for mutation in mutation_data
                )
            except MutationError as exc:
                raise ValueError(f"fuzz-case mutation is malformed: {exc}") from exc
        return cls(
            label=str(data["label"]),
            dtd_text=str(data["dtd"]),
            query=str(data["query"]),
            document=DocumentSpec(**document_data),
            mutations=mutations,
        )

    def to_json(self) -> str:
        """Serialize as pretty-printed JSON."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        """Parse a case from JSON text."""
        return cls.from_dict(json.loads(text))

    def save(
        self,
        path: Union[str, FilePath],
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        """Write the case to ``path`` as JSON.

        ``extra`` merges additional (JSON-safe) top-level keys into the
        file — diagnostic metadata like per-engine timing.  Replay ignores
        unknown top-level keys, so extras never affect reproduction; keys
        that would shadow the case fields themselves are rejected.
        """
        record = self.to_dict()
        if extra:
            clashes = sorted(set(extra) & set(record))
            if clashes:
                raise ValueError(f"extra key(s) {clashes} would shadow case fields")
            record.update(extra)
        text = json.dumps(record, indent=2, sort_keys=True) + "\n"
        FilePath(path).write_text(text, encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, FilePath]) -> "FuzzCase":
        """Read a case back from a JSON file."""
        return cls.from_json(FilePath(path).read_text(encoding="utf-8"))

    # -- integration ------------------------------------------------------------

    def to_differential_spec(self, **overrides: object):
        """View this case as a backend-level :class:`DifferentialSpec`.

        This is the bridge into :mod:`repro.backends.differential`: the
        generated case joins the fixed paper workloads in the same
        backend-vs-backend sweep.
        """
        from repro.backends.differential import DifferentialSpec

        spec = DifferentialSpec(
            label=self.label,
            dtd=self.dtd(),
            queries={self.label: self.query},
            x_l=self.document.x_l,
            x_r=self.document.x_r,
            seed=self.document.seed,
            max_elements=self.document.max_elements,
            distinct_values=self.document.distinct_values,
        )
        return replace(spec, **overrides) if overrides else spec
