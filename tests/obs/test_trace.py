"""Span trees: the no-op fast path, nesting, serialization, aggregation."""

from __future__ import annotations

import json
import threading

from repro import obs
from repro.obs.trace import _NOOP


class TestNoopFastPath:
    def test_span_without_active_trace_is_the_shared_noop(self):
        assert not obs.is_tracing()
        sp = obs.span("anything", key="value")
        assert sp is _NOOP
        assert not sp  # falsy: call sites guard trace-only work with `if sp:`
        # The full protocol is inert.
        with sp as inner:
            inner.set(more="attrs")
        assert obs.current_span() is None

    def test_noop_is_a_single_shared_object(self):
        assert obs.span("a") is obs.span("b")

    def test_is_tracing_flips_with_trace_lifecycle(self):
        assert not obs.is_tracing()
        with obs.trace("t"):
            assert obs.is_tracing()
        assert not obs.is_tracing()


class TestSpanTrees:
    def test_trace_records_nested_children_and_timings(self):
        with obs.trace("root", run=1) as root:
            with obs.span("child-a") as a:
                a.set(rows=3)
                with obs.span("grandchild"):
                    pass
            with obs.span("child-b"):
                pass
        assert [child.name for child in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grandchild"
        assert root.attrs == {"run": 1}
        assert root.children[0].attrs == {"rows": 3}
        # Wall time is inclusive of children; every finished span has some.
        assert root.wall_seconds >= root.children[0].wall_seconds >= 0.0
        assert root.cpu_seconds >= 0.0

    def test_walk_and_find(self):
        with obs.trace("root") as root:
            with obs.span("x"):
                with obs.span("y"):
                    pass
            with obs.span("y"):
                pass
        assert [node.name for node in root.walk()] == ["root", "x", "y", "y"]
        first_y = root.find("y")
        assert first_y is root.children[0].children[0]
        assert root.find("missing") is None

    def test_nested_start_trace_returns_inner_root_as_child(self):
        outer = obs.start_trace("outer")
        inner = obs.start_trace("inner")
        assert obs.end_trace() is inner
        assert obs.end_trace() is outer
        assert inner in outer.children

    def test_end_trace_closes_spans_left_open_by_an_exception(self):
        root = obs.start_trace("root")
        try:
            with obs.span("open"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        # The exception unwound the span cleanly; end_trace would also have
        # closed any span a non-context-manager caller left open.
        assert obs.end_trace() is root
        assert obs.end_trace() is None  # nothing active any more
        assert root.children[0].name == "open"
        assert root.children[0].wall_seconds >= 0.0


class TestAttach:
    def test_worker_thread_spans_land_under_the_captured_parent(self):
        with obs.trace("root") as root:
            parent = obs.current_span()

            def worker():
                assert not obs.is_tracing()  # thread-local: workers start cold
                with obs.attach(parent):
                    with obs.span("worker-span"):
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert [child.name for child in root.children] == ["worker-span"]

    def test_attach_none_is_a_no_op(self):
        with obs.attach(None) as adopted:
            assert adopted is None
            assert obs.span("still-off") is _NOOP


class TestSerialization:
    def test_to_dict_from_dict_is_an_exact_json_round_trip(self):
        with obs.trace("root", query="a//b") as root:
            with obs.span("child", rows=7):
                pass
        payload = json.loads(json.dumps(root.to_dict()))
        rebuilt = obs.Span.from_dict(payload)
        assert rebuilt.to_dict() == root.to_dict()
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"query": "a//b"}
        assert rebuilt.children[0].attrs == {"rows": 7}
        assert rebuilt.children[0].wall_seconds == root.children[0].wall_seconds

    def test_from_dict_rejects_non_span_payloads(self):
        import pytest

        with pytest.raises(ValueError):
            obs.Span.from_dict({"not": "a span"})

    def test_render_span_tree_indents_and_shows_attrs(self):
        with obs.trace("root") as root:
            with obs.span("child", backend="memory"):
                pass
        rendered = obs.render_span_tree(root)
        lines = rendered.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "backend='memory'" in lines[1]
        assert "ms" in lines[0]


class TestAggregation:
    def test_aggregate_spans_sums_per_name(self):
        with obs.trace("root") as root:
            for _ in range(3):
                with obs.span("phase"):
                    pass
        totals = obs.aggregate_spans(root)
        assert set(totals) == {"root", "phase"}
        assert totals["phase"]["count"] == 3
        assert totals["root"]["count"] == 1
        assert totals["phase"]["wall_seconds"] >= 0.0
        assert totals["phase"]["cpu_seconds"] >= 0.0
