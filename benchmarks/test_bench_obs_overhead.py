"""Benchmark: the cost of permanently-instrumented code with tracing off.

The observability layer's contract is that instrumentation points stay in
the hot paths forever because the disabled (no-trace) path is a no-op:
``obs.span()`` costs one thread-local read when no trace is active.  This
benchmark pins that contract on the workload the service benchmark uses
(the BENCH_3 warm repeated-workload scenario):

* the measured no-op ``span()`` cost, multiplied by the number of spans a
  warm ``answer()`` actually opens, must stay under 5% of the measured
  warm per-answer time — i.e. the instrumentation cannot account for a
  visible slice of the serving path;
* a warm answer with tracing *off* must not be slower than the same
  answer with tracing *on* (sanity: the no-op path is the cheap one).

Timing ratios between two full end-to-end runs are noisy at the
microsecond scale CI shares with other tenants; deriving the bound from
the per-span cost x span count keeps the assertion stable while pinning
exactly the overhead the design promises.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.dtd import samples
from repro.service import QueryService
from repro.workloads.queries import CROSS_QUERIES
from repro.xmltree.generator import generate_document

ELEMENTS = 300  # the BENCH_3 quick-config document size
WARM_CALLS = 200
NOOP_CALLS = 100_000


@pytest.fixture(scope="module")
def warm_service():
    dtd = samples.cross_dtd()
    tree = generate_document(dtd, x_l=10, x_r=3, seed=11, max_elements=ELEMENTS)
    with QueryService(dtd) as service:
        service.register_document("doc", tree)
        for query in CROSS_QUERIES.values():  # warm plans + result cache
            service.answer(query)
        yield service


def _spans_per_warm_answer(service: QueryService) -> int:
    """How many spans one warm (result-cache hit) answer actually opens."""
    query = next(iter(CROSS_QUERIES.values()))
    with obs.trace("probe") as root:
        service.answer(query)
    return sum(1 for _ in root.walk()) - 1  # minus the probe root itself


def _best_of(repeats: int, run) -> float:
    """Smallest elapsed wall time over ``repeats`` runs (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_noop_span_overhead_is_under_5_percent_of_a_warm_answer(warm_service):
    query = next(iter(CROSS_QUERIES.values()))
    assert not obs.is_tracing()

    warm_seconds = _best_of(
        5, lambda: [warm_service.answer(query) for _ in range(WARM_CALLS)]
    )
    per_answer = warm_seconds / WARM_CALLS

    def noop_spans():
        for _ in range(NOOP_CALLS):
            with obs.span("probe", attr=1):
                pass

    per_span = _best_of(5, noop_spans) / NOOP_CALLS

    # A result-cache hit opens exactly one span (the answer span) — the
    # warm path's overhead is that count times the no-op cost.
    spans = _spans_per_warm_answer(warm_service)
    assert spans >= 1
    overhead_fraction = (per_span * spans) / per_answer
    assert overhead_fraction <= 0.05, (
        f"no-op instrumentation costs {overhead_fraction:.2%} of a warm answer "
        f"({spans} spans x {per_span * 1e9:.0f}ns vs {per_answer * 1e6:.1f}us/answer)"
    )


def test_untraced_answer_is_not_slower_than_traced(warm_service):
    query = next(iter(CROSS_QUERIES.values()))

    untraced = _best_of(
        5, lambda: [warm_service.answer(query) for _ in range(WARM_CALLS)]
    )

    def traced_run():
        with obs.trace("bench"):
            for _ in range(WARM_CALLS):
                warm_service.answer(query)

    traced = _best_of(5, traced_run)
    # Generous slack: both paths are microseconds per call, and the traced
    # run allocates real Span objects — the untraced one must not lose.
    assert untraced <= traced * 1.25, (
        f"untraced {untraced:.4f}s vs traced {traced:.4f}s — the no-op "
        f"fast path should never be the slow one"
    )


def test_bench_answer_warm_untraced(benchmark, warm_service):
    """pytest-benchmark hook: the warm answer path with tracing off."""
    query = next(iter(CROSS_QUERIES.values()))
    benchmark(lambda: warm_service.answer(query))
