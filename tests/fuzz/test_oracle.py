"""The differential oracle, the harness and the auto-shrinker.

The headline check is the acceptance scenario: with a deliberately injected
sqlgen bug (the SQLite result SELECT silently truncated), the harness must
*catch* the disagreement and *shrink* it to a minimal (DTD, query, doc)
repro that still fails.
"""

from unittest import mock

import pytest

import repro.backends.sqlite as sqlite_backend
from repro.dtd import samples
from repro.fuzz.cases import DocumentSpec, FuzzCase
from repro.fuzz.harness import FuzzConfig, replay_corpus, run_fuzz
from repro.fuzz.oracle import DifferentialOracle, default_engines
from repro.fuzz.shrink import path_reductions, shrink_case
from repro.core.xpath_to_expath import DescendantStrategy
from repro.xpath.ast import path_size
from repro.xpath.parser import parse_xpath


def _cross_case(query: str = "a//d", seed: int = 3) -> FuzzCase:
    return FuzzCase(
        label="cross-case",
        dtd_text=samples.cross_dtd().to_text(),
        query=query,
        document=DocumentSpec(seed=seed, max_elements=150),
    )


class TestEngineGrid:
    def test_default_grid_covers_all_strategies_and_both_settings(self):
        engines = default_engines()
        names = {engine.name for engine in engines}
        for strategy in DescendantStrategy:
            assert f"memory/{strategy.value}/baseline" in names
            assert f"memory/{strategy.value}/opt" in names
            assert f"sqlite/{strategy.value}/opt" in names

    def test_grid_is_filterable(self):
        engines = default_engines(backends=["memory"], strategies=[DescendantStrategy.CYCLEEX])
        assert [engine.name for engine in engines] == [
            "memory/cycleex/baseline",
            "memory/cycleex/opt",
            # The tuple-executor oracle arm: same plans, row-at-a-time engine.
            "memory/cycleex/opt/tuple",
            # The raw-lowering sentinel: optimizer level pinned to 0 so every
            # sweep differentially checks the optimizer passes themselves.
            "memory/cycleex/opt/O0",
        ]

    def test_grid_can_pin_the_optimizer_level(self):
        engines = default_engines(
            backends=["memory"],
            strategies=[DescendantStrategy.CYCLEEX],
            optimize_level=0,
        )
        assert [engine.name for engine in engines] == [
            "memory/cycleex/baseline/O0",
            "memory/cycleex/opt/O0",
            "memory/cycleex/opt/O0/tuple",
        ]

    def test_default_grid_runs_both_executors(self):
        engines = default_engines()
        by_executor = {
            engine.executor for engine in engines if engine.backend == "memory"
        }
        assert by_executor == {"columnar", "tuple"}
        # SQLite arms don't consume the knob; the grid doesn't duplicate them.
        assert all(
            engine.executor == "columnar"
            for engine in engines
            if engine.backend == "sqlite"
        )


class TestOracle:
    def test_clean_case_agrees_everywhere(self):
        outcome = DifferentialOracle().run(_cross_case())
        assert outcome.ok
        assert outcome.expected  # the seeded document has a//d matches
        assert len(outcome.engine_results) == len(default_engines())
        assert all(ids == outcome.expected for ids in outcome.engine_results.values())

    def test_setup_error_is_a_failure(self):
        broken = FuzzCase("broken", "root r\nr -> EMPTY\n", "r[[[")
        outcome = DifferentialOracle().run(broken)
        assert not outcome.ok
        assert outcome.setup_error is not None

    def test_injected_bug_is_caught(self, injected_sqlite_bug):
        outcome = DifferentialOracle().run(_cross_case())
        assert not outcome.ok
        assert all(d.engine.startswith("sqlite/") for d in outcome.disagreements)
        assert outcome.disagreements[0].missing  # rows silently dropped

    def test_engine_crash_reported_not_raised(self):
        def exploding(program, dialect):
            raise RuntimeError("rendered garbage")

        with mock.patch.object(sqlite_backend, "program_statements", exploding):
            outcome = DifferentialOracle().run(_cross_case())
        assert not outcome.ok
        assert any(d.error and "rendered garbage" in d.error for d in outcome.disagreements)


class TestShrinking:
    def test_path_reductions_are_strictly_smaller(self):
        path = parse_xpath('a/b[not(c//d and text() = "b-1")]//c | a//d')
        size = path_size(path)
        reduced = list(path_reductions(path))
        assert reduced
        assert all(path_size(candidate) < size for candidate in reduced)

    def test_shrunk_repro_is_minimal_and_still_failing(self, injected_sqlite_bug):
        oracle = DifferentialOracle()
        original = _cross_case(query="a/b[c]//c/d | a//b")
        assert not oracle.run(original).ok

        def failing(case):
            return not oracle.run(case).ok

        shrunk = shrink_case(original, failing)
        assert failing(shrunk)  # still a repro
        # Strictly simpler on every axis the shrinker touches.
        assert path_size(parse_xpath(shrunk.query)) <= path_size(parse_xpath(original.query))
        assert shrunk.document.max_elements < original.document.max_elements
        # Locally minimal: no single further reduction still fails.
        from repro.fuzz.shrink import _candidates

        assert all(not failing(candidate) for candidate in _candidates(shrunk))


class TestHarness:
    def test_clean_sweep_has_no_disagreements(self):
        report = run_fuzz(FuzzConfig(seed=42, budget=15))
        assert report.ok
        assert report.cases_run == 15
        assert "disagreements=0" in report.describe()

    def test_sweep_is_deterministic(self):
        first = run_fuzz(FuzzConfig(seed=7, budget=8))
        second = run_fuzz(FuzzConfig(seed=7, budget=8))
        assert first.describe().splitlines()[:-1] == second.describe().splitlines()[:-1]

    def test_injected_bug_caught_and_corpus_written(self, injected_sqlite_bug, tmp_path):
        corpus = tmp_path / "failures"
        report = run_fuzz(
            FuzzConfig(seed=42, budget=10, corpus_dir=str(corpus)),
        )
        assert not report.ok
        saved = sorted(corpus.glob("*.json"))
        assert saved  # originals and shrunk repros were persisted
        assert any(path.name.endswith("-shrunk.json") for path in saved)
        for failure in report.failures:
            assert not failure.outcome.ok
            assert failure.saved_paths

    def test_replay_corpus_roundtrip(self, tmp_path):
        case = _cross_case()
        case.save(tmp_path / "one.json")
        outcomes = replay_corpus(tmp_path)
        assert len(outcomes) == 1 and outcomes[0].ok
        with pytest.raises(FileNotFoundError):
            replay_corpus(tmp_path / "empty-dir-that-does-not-exist.json")

    def test_memory_only_engine_grid(self):
        engines = default_engines(backends=["memory"])
        report = run_fuzz(FuzzConfig(seed=3, budget=6), engines)
        assert report.ok
        assert all(name.startswith("memory/") for name in report.engines)


class TestDifferentialBridge:
    def test_fuzz_case_joins_backend_differential_sweep(self):
        from repro.backends.differential import run_differential

        outcomes = run_differential([_cross_case().to_differential_spec()])
        assert outcomes
        assert all(outcome.matched for outcome in outcomes)

    def test_explicit_document_spec(self):
        from repro.backends.differential import DifferentialSpec, run_differential

        case = _cross_case()
        spec = DifferentialSpec(
            label="explicit-doc",
            dtd=case.dtd(),
            queries={"Q": case.query},
            document=case.tree(),
        )
        outcomes = run_differential([spec])
        assert all(outcome.matched for outcome in outcomes)
