"""Exp-4: real-life DTDs — BIOML (Fig. 16 / Table 4) and GedML (Fig. 17).

Part A (Fig. 16): the seven query/DTD cases of Table 4 (``gene//locus`` and
``gene//dna`` over the 2/3/4-cycle BIOML subgraphs of Fig. 15 and the full
4-cycle DTD of Fig. 11b), all evaluated over one dataset generated from the
largest BIOML DTD.

Part B (Fig. 17): ``even//data`` over the 9-cycle GedML DTD of Fig. 11(c),
varying X_L in {13, 14, 15} with X_R = 6, and X_R in {6, 7, 8} with
X_L = 16 (dataset sizes scaled down from the paper's multi-million-element
documents).

Run with ``python -m repro.experiments.exp4 [--quick]``.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence

from repro.backends import create_backend
from repro.dtd.samples import bioml_dtd, gedml_dtd
from repro.experiments.harness import (
    Approach,
    MeasuredQuery,
    default_approaches,
    format_table,
    measure_query,
    parse_backend_arg,
    parse_int_arg,
)
from repro.shredding.shredder import shred_document
from repro.workloads.datasets import DatasetSpec, scaled_elements
from repro.workloads.queries import BIOML_CASES, GEDML_QUERY

__all__ = ["run_bioml", "run_gedml", "main"]

# The paper's BIOML dataset has 1,990,858 elements; GedML datasets range
# from ~0.3M to ~5M elements.  Both are scaled down via scaled_elements().
PAPER_BIOML_ELEMENTS = 1_990_858
PAPER_GEDML_ELEMENTS = 1_000_000
BIOML_XL, BIOML_XR = 16, 6
GEDML_XL_VALUES = (13, 14, 15)
GEDML_XR_VALUES = (6, 7, 8)
GEDML_FIXED_XR = 6
GEDML_FIXED_XL = 16


def run_bioml(
    max_elements: Optional[int] = None,
    approaches: Optional[Sequence[Approach]] = None,
    cases=BIOML_CASES,
    seed: int = 31,
    backend: str = "memory",
) -> List[MeasuredQuery]:
    """Fig. 16: the Table 4 cases over one dataset of the 4-cycle BIOML DTD.

    As in the paper, the dataset is generated once from the *largest* DTD
    (Fig. 11b); each case then translates its query over its own extracted
    sub-DTD, so the translated SQL only touches the relations that sub-DTD
    mentions.
    """
    max_elements = max_elements or scaled_elements(PAPER_BIOML_ELEMENTS, scale=32)
    approaches = list(approaches or default_approaches())
    full_dtd = bioml_dtd()
    spec = DatasetSpec(full_dtd, x_l=BIOML_XL, x_r=BIOML_XR, max_elements=max_elements, seed=seed)
    tree = spec.generate()
    shredded = shred_document(tree, full_dtd)
    rows: List[MeasuredQuery] = []
    engine = create_backend(backend, shredded.database)
    try:
        for case in cases:
            case_dtd = case.dtd()
            # The sub-DTD's relations coincide (by name) with the full DTD's,
            # so the shredded database can serve every case; the translators
            # are rebuilt per case because the DTD graph differs.
            for approach in approaches:
                translator = approach.translator(case_dtd)
                # Reuse the shredded document but answer through the
                # sub-DTD's mapping (same relation names).
                measured = measure_query(
                    approach,
                    case_dtd,
                    shredded,
                    case.query,
                    dataset_label=f"case {case.name} ({case.cycles} cycles)",
                    translator=translator,
                    engine=engine,
                )
                measured.query = f"{case.name}:{case.query}"
                rows.append(measured)
    finally:
        engine.close()
    return rows


def run_gedml(
    max_elements: Optional[int] = None,
    approaches: Optional[Sequence[Approach]] = None,
    xl_values: Sequence[int] = GEDML_XL_VALUES,
    xr_values: Sequence[int] = GEDML_XR_VALUES,
    seed: int = 37,
    backend: str = "memory",
) -> List[MeasuredQuery]:
    """Fig. 17: even//data over the 9-cycle GedML DTD, varying X_L and X_R."""
    max_elements = max_elements or scaled_elements(PAPER_GEDML_ELEMENTS, scale=32)
    approaches = list(approaches or default_approaches())
    dtd = gedml_dtd()
    rows: List[MeasuredQuery] = []
    for x_l in xl_values:
        spec = DatasetSpec(dtd, x_l=x_l, x_r=GEDML_FIXED_XR, max_elements=max_elements, seed=seed)
        tree = spec.generate()
        shredded = shred_document(tree, dtd)
        engine = create_backend(backend, shredded.database)
        try:
            for approach in approaches:
                rows.append(
                    measure_query(
                        approach, dtd, shredded, GEDML_QUERY,
                        dataset_label=f"XL={x_l},XR={GEDML_FIXED_XR}",
                        engine=engine,
                    )
                )
        finally:
            engine.close()
    for x_r in xr_values:
        spec = DatasetSpec(dtd, x_l=GEDML_FIXED_XL, x_r=x_r, max_elements=max_elements, seed=seed)
        tree = spec.generate()
        shredded = shred_document(tree, dtd)
        engine = create_backend(backend, shredded.database)
        try:
            for approach in approaches:
                rows.append(
                    measure_query(
                        approach, dtd, shredded, GEDML_QUERY,
                        dataset_label=f"XL={GEDML_FIXED_XL},XR={x_r}",
                        engine=engine,
                    )
                )
        finally:
            engine.close()
    return rows


def summarize(rows: List[MeasuredQuery]) -> str:
    """Format Exp-4 measurements."""
    return format_table(
        ["query", "dataset", "approach", "exec_s", "rows", "elements"],
        [
            (
                row.query,
                row.dataset,
                row.approach,
                f"{row.execution_seconds:.3f}",
                row.result_rows,
                row.document_elements,
            )
            for row in rows
        ],
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: print the Fig. 16 and Fig. 17 series."""
    argv = list(sys.argv[1:] if argv is None else argv)
    backend = parse_backend_arg(argv)
    bioml_seed = parse_int_arg(argv, "--seed", 31)
    # One --seed flag steers both halves; GedML keeps its offset so the two
    # documents stay distinct, as in the seeded defaults.
    gedml_seed = bioml_seed + 6
    elements = parse_int_arg(argv, "--elements")
    optimize_level = parse_int_arg(argv, "--optimize-level")
    approaches = (
        default_approaches(optimize_level=optimize_level)
        if optimize_level is not None
        else None
    )
    quick = "--quick" in argv
    if quick:
        bioml_rows = run_bioml(
            max_elements=elements or 2000,
            seed=bioml_seed,
            backend=backend,
            approaches=approaches,
        )
        gedml_rows = run_gedml(
            max_elements=elements or 2000,
            xl_values=(13,),
            xr_values=(6,),
            seed=gedml_seed,
            backend=backend,
            approaches=approaches,
        )
    else:
        bioml_rows = run_bioml(
            max_elements=elements, seed=bioml_seed, backend=backend, approaches=approaches
        )
        gedml_rows = run_gedml(
            max_elements=elements, seed=gedml_seed, backend=backend, approaches=approaches
        )
    print("Exp-4a (Fig. 16): BIOML cases of Table 4")
    print(summarize(bioml_rows))
    print()
    print("Exp-4b (Fig. 17): even//data over the 9-cycle GedML DTD")
    print(summarize(gedml_rows))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
