"""The translation-plan cache: reuse compiled plans across queries.

Translating one XPath query runs CycleEX/CycleE over the DTD graph and the
Sect. 5 lowering — work that depends only on (DTD, query, strategy,
options), never on the document.  A serving layer that answers thousands of
queries over the same DTD therefore wants to pay it once; :class:`PlanCache`
is the LRU that makes that safe:

* entries are keyed by :class:`PlanKey` — the DTD *fingerprint* (a content
  hash, so two structurally different DTDs can never alias), the canonical
  query text, the descendant strategy, the optimisation options, the SQL
  dialect the plan will be rendered in and the storage-mapping fingerprint
  (plans lowered against differently-named relations must not alias);
* the cache is bounded (LRU eviction at ``capacity``) and thread-safe, so
  one cache can sit behind a multi-threaded :class:`~repro.service.QueryService`;
* :meth:`PlanCache.cache_info` exposes hit/miss/eviction counters in the
  spirit of :func:`functools.lru_cache`, which is what the service
  benchmarks and the cache-policy tests read.

The cache stores opaque values (in practice
:class:`~repro.core.pipeline.TranslationResult` objects); it never inspects
them, so it is reusable for prepared backend plans too.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Any, Callable, Optional

from repro import obs
from repro.core.expath_to_sql import TranslationOptions
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd.model import DTD
from repro.relational.sqlgen import SQLDialect
from repro.shredding.inlining import SimpleMapping

__all__ = [
    "CacheInfo",
    "PlanCache",
    "PlanKey",
    "dtd_fingerprint",
    "mapping_fingerprint",
    "options_fingerprint",
    "plan_key",
]


def dtd_fingerprint(dtd: DTD) -> str:
    """A short content hash of a DTD (name + grammar text).

    Two DTDs share a fingerprint iff they serialize identically, so a cache
    keyed on it is invalidated "for free" the moment a service is pointed at
    a different (or edited) DTD — there is no stale-plan failure mode.
    """
    digest = hashlib.sha256(f"{dtd.name}\n{dtd.to_text()}".encode("utf-8"))
    return digest.hexdigest()[:16]


def mapping_fingerprint(mapping: SimpleMapping) -> str:
    """A short content hash of a storage mapping.

    Covers the mapping's class and its complete element-type -> relation
    assignment, so translators lowering against differently-named (or
    differently-shaped) storage never alias in a shared cache.
    """
    assignment = ",".join(
        f"{element_type}->{mapping.relation_for(element_type)}"
        for element_type in mapping.dtd.element_types
    )
    digest = hashlib.sha256(
        f"{type(mapping).__qualname__}\n{assignment}".encode("utf-8")
    )
    return digest.hexdigest()[:16]


def options_fingerprint(options: TranslationOptions) -> str:
    """A canonical rendering of the lowering options (all fields, sorted)."""
    parts = [
        f"{field.name}={getattr(options, field.name)!r}"
        for field in sorted(fields(options), key=lambda field: field.name)
    ]
    return ",".join(parts)


@dataclass(frozen=True)
class PlanKey:
    """The identity of one compiled plan.

    Everything translation output depends on is in the key; the document is
    deliberately *not* (plans are document-independent, which is the whole
    point of caching them).  ``optimize`` records the optimizer level the
    program was rewritten at (PR 4): plans produced at different levels are
    semantically identical but structurally different, so they must not
    alias.  For the ``auto`` strategy the *resolved* per-query strategy is
    recorded, so an auto translator and an explicit one sharing a cache
    converge on the same entry.  ``emission`` (PR 9) records the SQL
    statement shape (``multi`` per-assignment statements vs one fused
    ``single`` statement): the relational program is the same either way,
    but the rendered SQL a cached plan carries is not.
    """

    dtd: str
    query: str
    strategy: str
    options: str
    dialect: str
    mapping: str
    optimize: str = "2"
    emission: str = "multi"


def plan_key(
    dtd: DTD,
    query: str,
    strategy: DescendantStrategy = DescendantStrategy.CYCLEEX,
    options: Optional[TranslationOptions] = None,
    dialect: SQLDialect = SQLDialect.GENERIC,
    mapping: Optional[SimpleMapping] = None,
    optimize_level: Optional[int] = None,
    emission: str = "multi",
) -> PlanKey:
    """Build the :class:`PlanKey` for one (DTD, query, configuration) point."""
    from repro.core.optimize import DEFAULT_OPTIMIZE_LEVEL, select_strategy

    if strategy is DescendantStrategy.AUTO:
        strategy = select_strategy(dtd, query)
    level = DEFAULT_OPTIMIZE_LEVEL if optimize_level is None else optimize_level
    return PlanKey(
        dtd=dtd_fingerprint(dtd),
        query=str(query),
        strategy=strategy.value,
        options=options_fingerprint(options or TranslationOptions()),
        dialect=dialect.value,
        mapping=mapping_fingerprint(mapping or SimpleMapping(dtd)),
        optimize=str(level),
        emission=emission,
    )


class _InFlight:
    """One in-progress factory call: followers block on ``event`` and then
    read the leader's ``value`` (or re-raise its ``error``)."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = _UNSET
        self.error: Optional[BaseException] = None


_UNSET = object()


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of cache counters (:func:`functools.lru_cache` style)."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """A bounded, thread-safe LRU mapping :class:`PlanKey` -> plan.

    ``capacity`` bounds the number of retained plans; 0 disables retention
    entirely (every lookup misses) while keeping the counters live, which is
    how benchmarks measure the uncached baseline through identical code
    paths.

    :meth:`get_or_create` is the primary API: it looks up the key and calls
    the factory on a miss.  The factory runs *outside* the internal lock —
    translation can take milliseconds and must not serialize unrelated
    lookups — but misses on the *same* key are single-flight: one caller
    becomes the leader and runs the factory, concurrent callers for that key
    block on a per-key in-flight record and receive the leader's result (or
    re-raise its exception) instead of duplicating the work.

    ``name`` labels the cache in the process-wide metrics registry: every
    hit/miss/eviction also increments ``cache.<name>.hits`` etc., so
    ``repro stats`` sees all caches of a kind aggregated together while
    :meth:`cache_info` stays per-instance.
    """

    def __init__(self, capacity: int = 128, name: str = "plan") -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[PlanKey, Any]" = OrderedDict()
        self._inflight: "dict[PlanKey, _InFlight]" = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self.name = name
        registry = obs.registry()
        self._hit_counter = registry.counter(f"cache.{name}.hits")
        self._miss_counter = registry.counter(f"cache.{name}.misses")
        self._eviction_counter = registry.counter(f"cache.{name}.evictions")

    @property
    def capacity(self) -> int:
        """Maximum number of retained plans."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: PlanKey) -> Optional[Any]:
        """The cached plan for ``key``, or ``None`` (counts a hit/miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                value = self._entries[key]
            else:
                self._misses += 1
                value = None
        if value is not None:
            self._hit_counter.inc()
        else:
            self._miss_counter.inc()
        return value

    def put(self, key: PlanKey, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry at capacity."""
        evicted = 0
        with self._lock:
            if self._capacity == 0:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            self._eviction_counter.inc(evicted)

    def get_or_create(self, key: PlanKey, factory: Callable[[], Any]) -> Any:
        """The cached plan for ``key``, creating it via ``factory`` on a miss.

        Concurrent misses on the same key are deduplicated (single-flight):
        exactly one caller runs ``factory`` while the others block and share
        its result.  A factory exception is propagated to every waiter and
        nothing is cached, so the next call retries.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                value = self._entries[key]
                leader = None
            else:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                    self._misses += 1
                else:
                    leader = False
        if leader is None:
            self._hit_counter.inc()
            return value

        if leader:
            self._miss_counter.inc()
            try:
                value = factory()
            except BaseException as exc:
                flight.error = exc
                with self._lock:
                    self._inflight.pop(key, None)
                flight.event.set()
                raise
            # Publish to the cache *before* retiring the flight so a thread
            # arriving in between sees the entry rather than starting a
            # duplicate flight.
            self.put(key, value)
            flight.value = value
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            return value

        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        # Joining an in-flight computation avoided a duplicate factory run —
        # account for it as a hit, exactly like finding the finished entry.
        with self._lock:
            self._hits += 1
        self._hit_counter.inc()
        return flight.value

    def cache_info(self) -> CacheInfo:
        """Current hit/miss/eviction counters and occupancy."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def __repr__(self) -> str:
        info = self.cache_info()
        return (
            f"PlanCache(capacity={info.capacity}, size={info.size}, "
            f"hits={info.hits}, misses={info.misses})"
        )
