"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["describe", "dept"])
        assert args.command == "describe"
        args = parser.parse_args(["translate", "cross", "a//d", "--dialect", "db2"])
        assert args.dialect == "db2"
        args = parser.parse_args(["answer", "cross", "a//d", "--elements", "500"])
        assert args.elements == 500
        args = parser.parse_args(["experiment", "exp5"])
        assert args.name == "exp5"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["translate", "cross", "a//d", "--strategy", "magic"])


class TestCommands:
    def test_describe_named_dtd(self, capsys):
        assert main(["describe", "dept"]) == 0
        output = capsys.readouterr().out
        assert "dept" in output
        assert "recursive=True" in output
        assert "course ->" in output

    def test_describe_dtd_file(self, tmp_path, capsys):
        path = tmp_path / "tiny.dtd"
        path.write_text("root r\nr -> a*\na -> r*\n")
        assert main(["describe", str(path)]) == 0
        assert "recursive=True" in capsys.readouterr().out

    def test_describe_unknown_dtd_exits(self):
        with pytest.raises(SystemExit):
            main(["describe", "no-such-dtd"])

    def test_translate_prints_all_artifacts(self, capsys):
        assert main(["translate", "dept", "dept//project", "--dialect", "db2"]) == 0
        output = capsys.readouterr().out
        assert "extended XPath" in output
        assert "relational program" in output
        assert "SQL (db2)" in output
        assert "LFPs" in output

    def test_translate_show_sql_only(self, capsys):
        assert main(["translate", "cross", "a//d", "--show", "sql"]) == 0
        output = capsys.readouterr().out
        assert "SQL (generic)" in output
        assert "relational program" not in output

    def test_translate_with_push_and_baseline_strategy(self, capsys):
        assert main(
            ["translate", "cross", "a//d", "--strategy", "recursive-union"]
        ) == 0
        assert "SQL'99 recursions" in capsys.readouterr().out
        assert main(["translate", "cross", "a//d", "--push-selections"]) == 0

    def test_answer_prints_matches(self, capsys):
        assert main(
            ["answer", "cross", "a//d", "--elements", "400", "--seed", "3", "--limit", "5"]
        ) == 0
        output = capsys.readouterr().out
        assert "matches:" in output
        assert "a/b" in output  # printed node paths start at the root

    def test_answer_respects_limit(self, capsys):
        main(["answer", "cross", "a//d", "--elements", "600", "--seed", "5", "--limit", "1"])
        output = capsys.readouterr().out
        assert "more" in output or output.count("node ") <= 1

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "exp3", "--quick"]) == 0
        assert "Fig. 14" in capsys.readouterr().out


class TestBackendFlags:
    def test_answer_backend_choices_registered(self):
        parser = build_parser()
        args = parser.parse_args(["answer", "cross", "a//d", "--backend", "sqlite"])
        assert args.backend == "sqlite"
        with pytest.raises(SystemExit):
            parser.parse_args(["answer", "cross", "a//d", "--backend", "nope"])

    def test_answer_on_sqlite_matches_memory(self, capsys):
        argv = ["answer", "cross", "a//d", "--elements", "300", "--seed", "3", "--limit", "3"]
        assert main(argv + ["--backend", "memory"]) == 0
        memory_output = capsys.readouterr().out
        assert main(argv + ["--backend", "sqlite"]) == 0
        sqlite_output = capsys.readouterr().out
        # Same matches, same printed nodes; only the stats line differs.
        assert memory_output.splitlines()[1:] == sqlite_output.splitlines()[1:]
        assert "matches:" in memory_output
        assert "backend: sqlite" in sqlite_output

    def test_translate_sqlite_dialect(self, capsys):
        assert main(["translate", "cross", "a//d", "--dialect", "sqlite", "--show", "sql"]) == 0
        output = capsys.readouterr().out
        assert "SQL (sqlite)" in output
        assert "WITH RECURSIVE" in output

    def test_experiment_backend_flag(self, capsys):
        assert main(["experiment", "exp3", "--quick", "--backend", "sqlite"]) == 0
        assert "Fig. 14" in capsys.readouterr().out

    def test_diff_subcommand(self, capsys):
        assert main(["diff", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "comparisons agree" in output
        assert "MISMATCH" not in output


class TestDiffExitCodes:
    def test_diff_reports_failure_with_nonzero_exit(self, injected_sqlite_bug, capsys):
        assert main(["diff", "--quick"]) == 1
        assert "MISMATCH" in capsys.readouterr().out


class TestGenerateCommand:
    def test_stats_report_shape_knobs(self, capsys):
        assert main(
            ["generate", "cross", "--seed", "3", "--elements", "100", "--show", "stats"]
        ) == 0
        output = capsys.readouterr().out
        assert "conforms: True" in output
        assert "seed=3" in output
        assert "labels:" in output

    def test_seed_reproducibility(self, capsys):
        argv = ["generate", "gedml", "--seed", "9", "--elements", "200"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert first == capsys.readouterr().out

    def test_xml_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "doc.xml"
        assert main(
            ["generate", "cross", "--elements", "60", "--show", "xml", "--out", str(out)]
        ) == 0
        assert out.read_text().startswith("<a")

    def test_experiment_seed_and_elements_flags(self, capsys):
        assert main(
            ["experiment", "exp3", "--quick", "--seed", "9", "--elements", "400"]
        ) == 0
        output = capsys.readouterr().out
        assert "Fig. 14" in output
        assert "400 elements" in output

    def test_experiment_exp5_notes_translation_only(self, capsys):
        assert main(["experiment", "exp5", "--seed", "1"]) == 0
        assert "translation-only" in capsys.readouterr().out


class TestFuzzCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seed == 0 and args.budget == 100
        args = build_parser().parse_args(["fuzz", "--strategies", "cycleex", "--backends", "memory"])
        assert args.strategies == "cycleex"

    def test_clean_sweep_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "42", "--budget", "10"]) == 0
        output = capsys.readouterr().out
        assert "disagreements=0" in output
        assert "cases=10" in output

    def test_seed_reproducibility(self, capsys):
        argv = ["fuzz", "--seed", "5", "--budget", "6"]
        assert main(argv) == 0
        first = capsys.readouterr().out.splitlines()
        assert main(argv) == 0
        second = capsys.readouterr().out.splitlines()
        # Identical apart from the trailing timing line.
        assert first[:-1] == second[:-1]

    def test_unknown_strategy_and_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--strategies", "magic"])
        with pytest.raises(SystemExit):
            main(["fuzz", "--backends", "nope"])

    def test_engine_axes_are_honoured(self, capsys):
        # baseline + opt at the default level, the opt/tuple executor arm,
        # plus the level-0 sentinel.
        assert main(
            ["fuzz", "--seed", "1", "--budget", "4", "--strategies", "cycleex",
             "--backends", "memory"]
        ) == 0
        assert "engines=4" in capsys.readouterr().out

    def test_optimize_level_pin_drops_the_sentinel(self, capsys):
        assert main(
            ["fuzz", "--seed", "1", "--budget", "4", "--strategies", "cycleex",
             "--backends", "memory", "--optimize-level", "0"]
        ) == 0
        assert "engines=3" in capsys.readouterr().out

    def test_failures_saved_and_exit_nonzero(self, injected_sqlite_bug, tmp_path, capsys):
        corpus = tmp_path / "failures"
        assert main(
            ["fuzz", "--seed", "42", "--budget", "8", "--save-failures", str(corpus)]
        ) == 1
        output = capsys.readouterr().out
        assert "MISMATCH" in output
        saved = sorted(corpus.glob("*.json"))
        assert saved
        from repro.fuzz.cases import FuzzCase

        case = FuzzCase.load(saved[0])
        assert case.query  # replayable artifact

    def test_replay_corpus_exits_by_verdict(self, tmp_path, capsys, injected_sqlite_bug):
        from repro.dtd import samples
        from repro.fuzz.cases import DocumentSpec, FuzzCase

        case = FuzzCase(
            label="replay-me",
            dtd_text=samples.cross_dtd().to_text(),
            query="a//d",
            document=DocumentSpec(seed=3, max_elements=150),
        )
        case.save(tmp_path / "case.json")
        assert main(["fuzz", "--replay", str(tmp_path)]) == 1  # bug still injected
        assert "MISMATCH" in capsys.readouterr().out

    def test_replay_clean_corpus_exits_zero(self, tmp_path, capsys):
        from repro.dtd import samples
        from repro.fuzz.cases import DocumentSpec, FuzzCase

        case = FuzzCase(
            label="replay-clean",
            dtd_text=samples.cross_dtd().to_text(),
            query="a//d",
            document=DocumentSpec(seed=3, max_elements=150),
        )
        case.save(tmp_path / "case.json")
        assert main(["fuzz", "--replay", str(tmp_path)]) == 0
        assert "1/1 corpus case(s) agree" in capsys.readouterr().out


class TestErrorHandling:
    """Library failures exit non-zero with a one-line message, no traceback."""

    def test_malformed_dtd_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.dtd"
        path.write_text("root r\nr -> ((broken\n")
        assert main(["describe", str(path)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_malformed_dtd_in_translate_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.dtd"
        path.write_text("this is not a dtd ((((\n")
        assert main(["translate", str(path), "a//d"]) == 2
        assert capsys.readouterr().err.startswith("error: ")

    def test_unparseable_xpath_exits_2(self, capsys):
        assert main(["translate", "cross", "a[[["]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_unparseable_xpath_in_answer_exits_2(self, capsys):
        assert main(["answer", "cross", "//", "--elements", "50"]) == 2
        assert capsys.readouterr().err.startswith("error: ")

    def test_valid_inputs_still_exit_zero(self, capsys):
        assert main(["translate", "cross", "a//d", "--show", "sql"]) == 0


class TestOptimizerFlags:
    def test_translate_accepts_levels_and_auto(self, capsys):
        for level in ("0", "1", "2"):
            assert main(
                ["translate", "cross", "a//d", "--optimize-level", level,
                 "--show", "program"]
            ) == 0
        assert main(
            ["translate", "cross", "a//d", "--strategy", "auto", "--show", "program"]
        ) == 0
        assert "strategy: auto ->" in capsys.readouterr().out

    def test_translate_rejects_bad_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["translate", "cross", "a//d", "--optimize-level", "7"]
            )

    def test_level_0_and_2_answers_agree(self, capsys):
        argv = ["answer", "cross", "a//d", "--elements", "300", "--seed", "3",
                "--limit", "5"]
        assert main(argv + ["--optimize-level", "0"]) == 0
        level0 = capsys.readouterr().out
        assert main(argv + ["--optimize-level", "2"]) == 0
        level2 = capsys.readouterr().out
        # Same matches and node lines; only the timing stats differ.
        assert level0.splitlines()[1:] == level2.splitlines()[1:]

    def test_experiment_forwards_optimize_level(self, capsys):
        assert main(
            ["experiment", "exp3", "--quick", "--optimize-level", "1"]
        ) == 0
        assert "Fig. 14" in capsys.readouterr().out

    def test_bench_optimizer_quick_writes_report(self, capsys, tmp_path):
        out = tmp_path / "BENCH_4.json"
        assert main(["bench-optimizer", "--quick", "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "optimizer benchmark" in output
        import json

        report = json.loads(out.read_text())
        assert report["bench"] == "optimizer-levels"
        assert report["ok"] is True
        assert report["scenarios"]["empty_queries"]["level2_fully_collapsed"] is True

    def test_bench_optimizer_rejects_bad_budget(self):
        with pytest.raises(SystemExit):
            main(["bench-optimizer", "--elements", "0"])


class TestServiceFlags:
    def test_answer_repeat_prints_cache_stats(self, capsys):
        assert main(
            ["answer", "cross", "a//d", "--elements", "200", "--repeat", "5"]
        ) == 0
        output = capsys.readouterr().out
        assert "matches:" in output
        assert "warm" in output and "cache:" in output
        assert "hits" in output

    def test_answer_no_cache_disables_stats(self, capsys):
        argv = ["answer", "cross", "a//d", "--elements", "200", "--seed", "3",
                "--repeat", "3", "--no-cache"]
        assert main(argv) == 0
        assert "cache: disabled" in capsys.readouterr().out

    def test_answer_repeat_does_not_change_matches(self, capsys):
        argv = ["answer", "cross", "a//d", "--elements", "300", "--seed", "3",
                "--limit", "5"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--repeat", "4"]) == 0
        repeated = capsys.readouterr().out
        # Same match count and same node lines; only the (timing-bearing)
        # stats tail and the new repeat line differ.
        assert plain.splitlines()[0].split("(")[0] == repeated.splitlines()[0].split("(")[0]
        assert plain.splitlines()[1:] == repeated.splitlines()[2:]

    def test_answer_repeat_rejects_zero(self):
        with pytest.raises(SystemExit):
            main(["answer", "cross", "a//d", "--repeat", "0"])

    def test_bench_service_quick_writes_report(self, capsys, tmp_path):
        out = tmp_path / "BENCH_3.json"
        assert main(["bench-service", "--quick", "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "repeated workload" in output
        assert "batch vs per-query" in output
        import json

        report = json.loads(out.read_text())
        assert report["bench"] == "service-throughput"
        assert report["ok"] is True
        assert report["scenarios"]["repeated_workload"]["results_match"] is True

    def test_bench_service_rejects_bad_budget(self):
        with pytest.raises(SystemExit):
            main(["bench-service", "--elements", "0"])
