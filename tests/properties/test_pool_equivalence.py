"""Property: the multiprocess tier is semantically invisible (Issue 7).

For every sample DTD × both backends,
:meth:`~repro.service.ProcessQueryService.answer` and
:meth:`~repro.service.ProcessQueryService.answer_batch` must return
node-for-node what the serial :class:`~repro.service.QueryService`
returns — including after a simulated worker crash + respawn, and under
the ``spawn`` start method (the one that re-imports everything from
scratch).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.api import EngineConfig
from repro.dtd import samples
from repro.service import ProcessQueryService, QueryService
from repro.workloads.queries import GEDML_QUERY
from repro.xmltree.generator import generate_document

DTD_CASES = {
    "dept": ("dept//project", samples.dept_dtd),
    "cross": ("a/b//c/d", samples.cross_dtd),
    "bioml-a": ("gene//locus", samples.bioml_subgraph_a),
    "bioml-b": ("gene//locus", samples.bioml_subgraph_b),
    "bioml-c": ("gene//locus", samples.bioml_subgraph_c),
    "bioml-d": ("gene//locus", samples.bioml_subgraph_d),
    "bioml": ("gene//dna", samples.bioml_dtd),
    "gedml": (GEDML_QUERY, samples.gedml_dtd),
}

BACKENDS = ["memory", "sqlite"]

_METHODS = multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif("fork" not in _METHODS, reason="fork unavailable")
spawn_only = pytest.mark.skipif("spawn" not in _METHODS, reason="spawn unavailable")


def _ids(nodes):
    return [node.node_id for node in nodes]


def _tree(dtd):
    return generate_document(dtd, x_l=7, x_r=3, seed=13, max_elements=250)


def _batch_queries(dtd, query):
    return [query, f"{dtd.root}/*", query, dtd.root]


@fork_only
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtd_name", sorted(DTD_CASES))
def test_pool_answers_equal_serial_service(dtd_name, backend):
    query, factory = DTD_CASES[dtd_name]
    dtd = factory()
    tree = _tree(dtd)
    config = EngineConfig(backend=backend)
    queries = _batch_queries(dtd, query)

    with QueryService(dtd, config=config) as serial:
        serial.register_document("doc", tree)
        expected_one = _ids(serial.answer(query, "doc"))
        expected_batch = [_ids(serial.answer(text, "doc")) for text in queries]

    with ProcessQueryService(
        dtd, config=config, workers=2, replicas=2, start_method="fork"
    ) as pool:
        pool.register_document("doc", tree)
        assert list(pool.answer(query, "doc").node_ids) == expected_one
        batch = pool.answer_batch(queries, "doc")
        assert [list(answer.node_ids) for answer in batch] == expected_batch


@fork_only
@pytest.mark.parametrize("backend", BACKENDS)
def test_pool_answers_equal_serial_after_crash_and_respawn(backend):
    query, factory = DTD_CASES["cross"]
    dtd = factory()
    tree = _tree(dtd)
    config = EngineConfig(backend=backend)
    queries = _batch_queries(dtd, query)

    with QueryService(dtd, config=config) as serial:
        serial.register_document("doc", tree)
        expected = [_ids(serial.answer(text, "doc")) for text in queries]

    with ProcessQueryService(
        dtd, config=config, workers=2, replicas=2, start_method="fork"
    ) as pool:
        pool.register_document("doc", tree)
        before = pool.answer_batch(queries, "doc")
        assert [list(answer.node_ids) for answer in before] == expected
        for index in range(pool.workers):  # every replica dies once
            pool._kill_worker(index)
            after = pool.answer_batch(queries, "doc")
            assert [list(answer.node_ids) for answer in after] == expected
        assert pool.stats()["metrics"]["pool.respawns"]["value"] >= pool.workers


@spawn_only
@pytest.mark.parametrize("backend", BACKENDS)
def test_pool_answers_equal_serial_under_spawn(backend):
    # spawn re-imports the worker module from scratch: nothing may depend
    # on inherited parent state (this is also the Windows/macOS default).
    query, factory = DTD_CASES["dept"]
    dtd = factory()
    tree = _tree(dtd)
    config = EngineConfig(backend=backend)

    with QueryService(dtd, config=config) as serial:
        serial.register_document("doc", tree)
        expected = _ids(serial.answer(query, "doc"))

    with ProcessQueryService(
        dtd, config=config, workers=2, replicas=2, start_method="spawn",
        warmup=[query],
    ) as pool:
        pool.register_document("doc", tree)
        assert list(pool.answer(query, "doc").node_ids) == expected
