"""Fuzz-case serialization: format 2 (mutations) and format-1 compatibility."""

import json

import pytest

from repro.dtd import samples
from repro.fuzz.cases import (
    CASE_FORMAT_VERSION,
    SUPPORTED_CASE_FORMATS,
    DocumentSpec,
    FuzzCase,
)
from repro.live.mutations import DeleteSubtree, InsertSubtree, ReplaceText


def _dept_case(**overrides):
    fields = dict(
        label="case",
        dtd_text=samples.paper_dtds()["dept"].to_text(),
        query="dept//project",
        document=DocumentSpec(max_elements=100, seed=5),
    )
    fields.update(overrides)
    return FuzzCase(**fields)


class TestFormatVersions:
    def test_constants(self):
        assert CASE_FORMAT_VERSION == 2
        assert SUPPORTED_CASE_FORMATS == (1, 2)

    def test_mutation_free_case_still_writes_format_1(self):
        """The checked-in corpus must not churn: no mutations, no format bump."""
        record = _dept_case().to_dict()
        assert record["format"] == 1
        assert "mutations" not in record

    def test_mutation_carrying_case_writes_format_2(self):
        case = _dept_case(mutations=(ReplaceText(3, "x"),))
        record = case.to_dict()
        assert record["format"] == 2
        assert record["mutations"] == [
            {"op": "replace_text", "node": 3, "value": "x"}
        ]

    def test_format_1_reads_back(self):
        """A pre-live corpus file (no ``format`` key at all) still loads."""
        record = _dept_case().to_dict()
        del record["format"]
        case = FuzzCase.from_dict(record)
        assert case.query == "dept//project"
        assert case.mutations == ()

    def test_format_2_round_trips_with_mutations(self):
        original = _dept_case(
            mutations=(
                InsertSubtree(2, ("project", None, ()), index=0),
                DeleteSubtree(9),
                ReplaceText(3, None),
            )
        )
        restored = FuzzCase.from_json(original.to_json())
        assert restored == original

    def test_format_1_with_mutations_rejected(self):
        record = _dept_case(mutations=(ReplaceText(3, "x"),)).to_dict()
        record["format"] = 1
        with pytest.raises(ValueError, match="format-1"):
            FuzzCase.from_dict(record)

    def test_unsupported_format_rejected(self):
        record = _dept_case().to_dict()
        record["format"] = 99
        with pytest.raises(ValueError, match="unsupported"):
            FuzzCase.from_dict(record)

    def test_malformed_mutation_payload_rejected(self):
        record = _dept_case(mutations=(ReplaceText(3, "x"),)).to_dict()
        record["mutations"] = [{"op": "teleport"}]
        with pytest.raises(ValueError, match="malformed"):
            FuzzCase.from_dict(record)


class TestMutatedTree:
    def test_mutated_tree_applies_the_script(self):
        base_case = _dept_case()
        tree = base_case.tree()
        text_node = next(
            node
            for node in tree.nodes()
            if node.label in base_case.dtd().text_types
        )
        case = _dept_case(mutations=(ReplaceText(text_node.node_id, "mutated"),))
        mutated = case.mutated_tree()
        assert mutated.node(text_node.node_id).value == "mutated"
        # The base tree accessor is unaffected.
        assert case.tree().node(text_node.node_id).value != "mutated"

    def test_save_and_load_round_trip(self, tmp_path):
        case = _dept_case(mutations=(ReplaceText(3, "x"),))
        path = tmp_path / "case.json"
        case.save(path)
        on_disk = json.loads(path.read_text())
        assert on_disk["format"] == 2
        assert FuzzCase.load(path) == case
