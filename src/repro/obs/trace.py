"""Hierarchical spans: where one query's time actually goes.

A :class:`Span` is one timed region of work — a name, free-form attributes,
wall-clock and per-thread CPU time, and child spans — and a finished trace
is just the root span of such a tree.  Tracing is *off by default* and
per-thread: instrumentation points throughout the engine call
:func:`span` unconditionally, and when no trace is active on the calling
thread the call returns a shared no-op object whose enter/exit/annotate
methods do nothing.  That no-op fast path is the contract the disabled-
observability overhead benchmark (``benchmarks/test_bench_obs_overhead.py``)
pins: code paths stay instrumented permanently because un-traced calls cost
one thread-local read.

Starting a trace (:func:`start_trace` / the :func:`trace` context manager)
makes subsequent :func:`span` calls on the same thread record real child
spans; :func:`attach` re-parents a worker thread under a span captured on
the caller (the batch fan-out case).  Traces nest: an inner
``start_trace``/``end_trace`` pair inside an active trace produces a child
span that is also returned as that inner trace's root.

Spans serialize to plain dicts (:meth:`Span.to_dict` /
:meth:`Span.from_dict`, an exact JSON round-trip) and render as an indented
tree (:func:`render_span_tree`, the ``repro answer --trace`` output).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "span",
    "trace",
    "start_trace",
    "end_trace",
    "current_span",
    "is_tracing",
    "attach",
    "aggregate_spans",
    "render_span_tree",
]


def _thread_cpu() -> float:
    # thread_time is per-thread CPU; fall back to process_time on platforms
    # without it (none of the supported ones, but the API is optional).
    try:
        return time.thread_time()
    except AttributeError:  # pragma: no cover - py<3.7 / exotic platforms
        return time.process_time()


class Span:
    """One timed, attributed region of work; a node of a trace tree.

    Spans are context managers: entering records start times and makes the
    span the thread's current one, exiting finalizes ``wall_seconds`` /
    ``cpu_seconds`` and restores the parent.  Attributes set via
    :meth:`set` (or the ``span(name, key=value)`` shorthand) must be
    JSON-representable — they travel into ``to_dict``.
    """

    __slots__ = (
        "name",
        "attrs",
        "children",
        "wall_seconds",
        "cpu_seconds",
        "_parent",
        "_start_wall",
        "_start_cpu",
    )

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs)
        self.children: List["Span"] = []
        self.wall_seconds: float = 0.0
        self.cpu_seconds: float = 0.0
        self._parent: Optional["Span"] = None
        self._start_wall: float = 0.0
        self._start_cpu: float = 0.0

    def __bool__(self) -> bool:
        # Real spans are truthy; the no-op span is falsy, so call sites can
        # guard trace-only work with ``if sp: ...``.
        return True

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (JSON-safe values) to the span."""
        self.attrs.update(attrs)
        return self

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "Span":
        self._parent = getattr(_STATE, "span", None)
        if self._parent is not None:
            # list.append is atomic under the GIL, so worker threads
            # attached under a shared parent need no extra lock.
            self._parent.children.append(self)
        _STATE.span = self
        self._start_wall = time.perf_counter()
        self._start_cpu = _thread_cpu()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.wall_seconds = time.perf_counter() - self._start_wall
        self.cpu_seconds = _thread_cpu() - self._start_cpu
        _STATE.span = self._parent

    # -- traversal ---------------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """The first span named ``name`` in depth-first order (or ``None``)."""
        for candidate in self.walk():
            if candidate.name == name:
                return candidate
        return None

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-safe) form; inverse of :meth:`from_dict`."""
        record: Dict[str, Any] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a (finished) span tree from :meth:`to_dict` output."""
        if not isinstance(data, dict) or "name" not in data:
            raise ValueError(f"not a serialized span: {data!r}")
        rebuilt = cls(str(data["name"]), **data.get("attrs", {}))
        rebuilt.wall_seconds = float(data.get("wall_seconds", 0.0))
        rebuilt.cpu_seconds = float(data.get("cpu_seconds", 0.0))
        rebuilt.children = [
            cls.from_dict(child) for child in data.get("children", [])
        ]
        return rebuilt

    def render(self) -> str:
        """The span tree as indented text (one line per span)."""
        return render_span_tree(self)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, wall={self.wall_seconds * 1000:.3f}ms, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """The shared do-nothing span returned when no trace is active."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()
_STATE = threading.local()


def current_span() -> Optional[Span]:
    """The calling thread's innermost open span (``None`` when not tracing)."""
    return getattr(_STATE, "span", None)


def is_tracing() -> bool:
    """True when a trace is active on the calling thread."""
    return getattr(_STATE, "span", None) is not None


def span(name: str, **attrs: Any):
    """A child span of the current trace — or a shared no-op when not tracing.

    This is *the* instrumentation primitive: call it unconditionally in any
    code path worth timing; the un-traced cost is one thread-local read.
    """
    if getattr(_STATE, "span", None) is None:
        return _NOOP
    return Span(name, **attrs)


def start_trace(name: str, **attrs: Any) -> Span:
    """Open a trace root on this thread; pair with :func:`end_trace`.

    Inside an already-active trace this opens a nested root: the span both
    joins the outer tree as a child and is returned by the matching
    :func:`end_trace`.
    """
    root = Span(name, **attrs)
    root.__enter__()
    roots = getattr(_STATE, "roots", None)
    if roots is None:
        roots = _STATE.roots = []
    roots.append(root)
    return root


def end_trace() -> Optional[Span]:
    """Close the innermost open trace and return its (finished) root span.

    Spans left open inside the trace (an exception unwound past them) are
    closed on the way out.  Returns ``None`` when no trace is active.
    """
    roots = getattr(_STATE, "roots", None)
    if not roots:
        return None
    root = roots.pop()
    # Close any still-open descendants, then the root itself.
    current = getattr(_STATE, "span", None)
    while current is not None and current is not root:
        current.__exit__(None, None, None)
        current = getattr(_STATE, "span", None)
    if current is root:
        root.__exit__(None, None, None)
    return root


class trace:
    """Context manager form of :func:`start_trace`/:func:`end_trace`.

    ``with obs.trace("answer") as root: ...`` — after the block, ``root``
    carries the finished timings and children.
    """

    def __init__(self, name: str, **attrs: Any) -> None:
        self._name = name
        self._attrs = attrs
        self.root: Optional[Span] = None

    def __enter__(self) -> Span:
        self.root = start_trace(self._name, **self._attrs)
        return self.root

    def __exit__(self, *exc_info: object) -> None:
        end_trace()


class attach:
    """Adopt ``parent`` as the calling thread's current span for a block.

    The batch fan-out bridge: a thread pool worker has no thread-local
    trace of its own, so the dispatching thread captures
    :func:`current_span` and each worker runs inside
    ``with attach(parent): ...`` — its spans land under the caller's tree.
    ``attach(None)`` is a no-op, so call sites need no conditional.
    """

    def __init__(self, parent: Optional[Span]) -> None:
        self._parent = parent
        self._previous: Optional[Span] = None

    def __enter__(self) -> Optional[Span]:
        if self._parent is not None:
            self._previous = getattr(_STATE, "span", None)
            _STATE.span = self._parent
        return self._parent

    def __exit__(self, *exc_info: object) -> None:
        if self._parent is not None:
            _STATE.span = self._previous


def aggregate_spans(root: Span) -> Dict[str, Dict[str, float]]:
    """Per-phase totals of a trace: span name -> count/wall/CPU sums.

    The benchmark harnesses use this to turn one traced pass into the
    ``phases`` breakdown of the BENCH_*.json reports.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for node in root.walk():
        entry = totals.setdefault(
            node.name, {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0}
        )
        entry["count"] += 1
        entry["wall_seconds"] += node.wall_seconds
        entry["cpu_seconds"] += node.cpu_seconds
    return totals


def render_span_tree(root: Span) -> str:
    """Indented one-line-per-span rendering of a trace (CLI ``--trace``)."""
    lines: List[str] = []

    def emit(node: Span, depth: int) -> None:
        attrs = ""
        if node.attrs:
            rendered = " ".join(
                f"{key}={value!r}" for key, value in sorted(node.attrs.items())
            )
            attrs = f"  [{rendered}]"
        lines.append(
            f"{'  ' * depth}{node.name:<{max(28 - 2 * depth, 1)}} "
            f"{node.wall_seconds * 1000:9.3f}ms  cpu {node.cpu_seconds * 1000:8.3f}ms"
            f"{attrs}"
        )
        for child in node.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)
