"""The process-wide metrics registry: counters, gauges, histograms.

Instruments are created on first use (``registry().counter("x").inc()``)
and live for the process lifetime; every instrument is thread-safe behind
its own lock, and the registry itself only locks around the instrument
dictionary.  :meth:`MetricsRegistry.snapshot` renders everything as one
JSON-safe dict — the payload of ``repro stats`` and the structured-log
emitter.

Disabling a registry (:meth:`MetricsRegistry.disable`) turns every
``inc``/``set``/``observe`` into an attribute read plus a branch, so
permanently-instrumented hot paths cost nothing measurable when metrics
are off; the overhead benchmark pins this together with the tracing no-op
path.

Histograms keep a bounded reservoir (the most recent ``reservoir_size``
observations) plus exact count/sum/min/max, and report p50/p95/p99 over
the reservoir — enough fidelity for per-query latency distributions
without unbounded memory.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "registry",
    "set_registry",
]


class Counter:
    """A monotonically increasing count (cache hits, queries answered, ...)."""

    __slots__ = ("name", "_value", "_lock", "_registry")

    def __init__(self, name: str, owner: "MetricsRegistry") -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()
        self._registry = owner

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (no-op while the owning registry is disabled)."""
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (registered documents, cache occupancy, ...)."""

    __slots__ = ("name", "_value", "_lock", "_registry")

    def __init__(self, name: str, owner: "MetricsRegistry") -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()
        self._registry = owner

    def set(self, value: float) -> None:
        """Record the current value (no-op while the registry is disabled)."""
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = value

    def add(self, amount: float = 1.0) -> None:
        """Adjust the value by ``amount`` (gauges may go down)."""
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The last recorded value."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A distribution with exact count/sum and reservoir percentiles.

    The reservoir keeps the most recent ``reservoir_size`` observations —
    a sliding window, which is what a serving layer wants (old latencies
    age out) and keeps memory bounded for unbounded query streams.
    """

    __slots__ = (
        "name",
        "_samples",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_capacity",
        "_next",
        "_lock",
        "_registry",
    )

    def __init__(
        self, name: str, owner: "MetricsRegistry", reservoir_size: int = 1024
    ) -> None:
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self.name = name
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._capacity = reservoir_size
        self._next = 0
        self._lock = threading.Lock()
        self._registry = owner

    def observe(self, value: float) -> None:
        """Record one observation (no-op while the registry is disabled)."""
        if not self._registry.enabled:
            return
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if len(self._samples) < self._capacity:
                self._samples.append(value)
            else:  # ring buffer: overwrite the oldest sample
                self._samples[self._next] = value
                self._next = (self._next + 1) % self._capacity

    @property
    def count(self) -> int:
        """Total number of observations (not just the retained window)."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        with self._lock:
            return self._sum

    @staticmethod
    def _percentile(ordered: Sequence[float], fraction: float) -> float:
        # Nearest-rank on the sorted window; ordered is non-empty here.
        rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[int(rank)]

    def percentile(self, fraction: float) -> Optional[float]:
        """The ``fraction`` quantile over the retained window (``None`` if empty)."""
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        return self._percentile(ordered, fraction)

    def _reset(self) -> None:
        with self._lock:
            self._samples = []
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None
            self._next = 0

    def _snapshot(self, include_reservoir: bool = False) -> Dict[str, object]:
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self._count, self._sum
            low, high = self._min, self._max
        snapshot: Dict[str, object] = {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "mean": (total / count) if count else None,
        }
        for label, fraction in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            snapshot[label] = self._percentile(ordered, fraction) if ordered else None
        if include_reservoir:
            # The retained window itself, for cross-process merging: a
            # worker ships its snapshot home and the parent recomputes
            # percentiles over the concatenated reservoirs.
            snapshot["reservoir"] = ordered
        return snapshot


class MetricsRegistry:
    """A named collection of instruments, shared process-wide by default.

    ``counter``/``gauge``/``histogram`` create on first use and always
    return the same instrument for a name; a name is permanently bound to
    its first instrument kind (asking for the same name as a different
    kind raises, catching wiring typos early).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def enable(self) -> None:
        """Turn recording on (the default)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn every instrument into a no-op until re-enabled."""
        self.enabled = False

    def _instrument(self, name: str, kind: type, **kwargs: object):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is None:
                existing = self._instruments[name] = kind(name, self, **kwargs)
            elif not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {kind.__name__}"
                )
            return existing

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._instrument(name, Gauge)

    def histogram(self, name: str, reservoir_size: int = 1024) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._instrument(name, Histogram, reservoir_size=reservoir_size)

    def names(self) -> List[str]:
        """All instrument names, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(
        self, include_reservoirs: bool = False
    ) -> Dict[str, Dict[str, object]]:
        """Every instrument rendered as a JSON-safe dict, keyed by name.

        With ``include_reservoirs=True`` every histogram also carries its
        retained sample window — the form worker processes ship back so
        :func:`merge_snapshots` can compute truthful merged percentiles.
        """
        with self._lock:
            instruments = dict(self._instruments)
        return {
            name: (
                instrument._snapshot(include_reservoir=True)
                if isinstance(instrument, Histogram) and include_reservoirs
                else instrument._snapshot()  # type: ignore[attr-defined]
            )
            for name, instrument in sorted(instruments.items())
        }

    def reset(self) -> None:
        """Zero every instrument (they stay registered)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument._reset()  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(instruments={len(self._instruments)}, "
            f"enabled={self.enabled})"
        )


def merge_snapshots(
    snapshots: Sequence[Dict[str, Dict[str, object]]]
) -> Dict[str, Dict[str, object]]:
    """Merge per-process metric snapshots into one truthful aggregate.

    This is how multiprocess serving keeps ``repro stats`` honest: each
    worker owns a process-local registry and ships
    ``snapshot(include_reservoirs=True)`` home; the parent merges.

    * counters and gauges sum their values (gauges in this codebase are
      additive occupancies — documents registered, cache sizes — so the
      sum across workers is the fleet total);
    * histograms keep exact ``count``/``sum`` (summed), exact ``min``/
      ``max`` (extremes across processes), recompute ``mean`` from the
      merged exact totals, and recompute percentiles over the concatenated
      reservoirs.  The merged output drops the raw reservoir again.

    A name appearing with different instrument types raises ``ValueError``.
    """
    merged: Dict[str, Dict[str, object]] = {}
    reservoirs: Dict[str, List[float]] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            kind = entry.get("type")
            current = merged.get(name)
            if current is not None and current["type"] != kind:
                raise ValueError(
                    f"metric {name!r} is a {current['type']} in one snapshot "
                    f"and a {kind} in another"
                )
            if kind == "histogram":
                if current is None:
                    current = merged[name] = {
                        "type": "histogram",
                        "count": 0,
                        "sum": 0.0,
                        "min": None,
                        "max": None,
                    }
                    reservoirs[name] = []
                current["count"] += entry.get("count", 0) or 0
                current["sum"] += entry.get("sum", 0.0) or 0.0
                for bound, pick in (("min", min), ("max", max)):
                    value = entry.get(bound)
                    if value is not None:
                        held = current[bound]
                        current[bound] = value if held is None else pick(held, value)
                reservoirs[name].extend(entry.get("reservoir") or ())
            else:
                if current is None:
                    current = merged[name] = {"type": kind, "value": 0}
                current["value"] += entry.get("value", 0) or 0
    for name, entry in merged.items():
        if entry["type"] != "histogram":
            continue
        count = entry["count"]
        entry["mean"] = (entry["sum"] / count) if count else None
        ordered = sorted(reservoirs[name])
        for label, fraction in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            entry[label] = (
                Histogram._percentile(ordered, fraction) if ordered else None
            )
    return dict(sorted(merged.items()))


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry every instrumentation point records into."""
    return _REGISTRY


def set_registry(replacement: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests isolate themselves with this).

    Returns the previous registry so callers can restore it.  Note that
    instrumentation sites may cache instrument objects from the old
    registry; swapping is for test isolation, not live reconfiguration.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = replacement
    return previous
