"""In-memory XML trees, a DTD-driven synthetic generator and a validator.

The paper evaluates queries over XML documents conforming to (recursive)
DTDs.  This package supplies that substrate: an ordered labelled tree with
stable node identifiers (:class:`~repro.xmltree.tree.XMLTree`), a seeded
generator reproducing the IBM AlphaWorks XML Generator's ``X_L`` (maximum
levels) and ``X_R`` (maximum repetition) shape parameters
(:class:`~repro.xmltree.generator.XMLGenerator`), and a Glushkov-automaton
validator checking DTD conformance (:func:`~repro.xmltree.validator.validate`).
"""

from repro.xmltree.tree import XMLNode, XMLTree, build_tree
from repro.xmltree.generator import GeneratorConfig, XMLGenerator, generate_document
from repro.xmltree.validator import validate, conforms

__all__ = [
    "XMLNode",
    "XMLTree",
    "build_tree",
    "XMLGenerator",
    "GeneratorConfig",
    "generate_document",
    "validate",
    "conforms",
]
