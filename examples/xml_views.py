#!/usr/bin/env python3
"""Scenario: XPath query answering over virtual XML views (Sect. 3.4).

An access-control setting: a hospital-style source document conforms to a
recursive source DTD, but a class of users is only allowed to see the
sub-structure described by a *view DTD* contained in it (Example 3.2/3.3).
The view is never materialised; queries the users pose on the view are
rewritten — with the paper's XPath-to-extended-XPath translation — into
queries on the source that return exactly the view's answers.

The example demonstrates both failure modes the paper points out:

* plain XPath cannot express the rewritten query (the rewriting needs to
  avoid paths the view excludes, here any path through a ``B`` node);
* regular XPath can, but only with an exponentially large expression on the
  ``D1(n)/D2(n)`` family — while extended XPath stays polynomial.

Run with ``python examples/xml_views.py``.
"""

from repro import GAVView, generate_document
from repro.dtd.samples import (
    complete_dag_dtd,
    complete_dag_with_blocker_dtd,
    fig3_source_dtd,
    fig3_view_dtd,
)
from repro.expath.metrics import count_operators
from repro.core.tarjan import cycle_expression
from repro.core.cycleex import rec_query
from repro.views.gav import extract_view
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath


def one_cycle_example() -> None:
    """Example 3.2: the 1-cycle view DTD of Fig. 3(a) over the source of Fig. 3(b)."""
    print("== Example 3.2: recursive view, source with an extra B -> C edge ==")
    view_dtd = fig3_view_dtd()
    source_dtd = fig3_source_dtd()
    source = generate_document(source_dtd, x_l=8, x_r=3, seed=11, max_elements=2000)
    print(f"source document: {source.size()} elements (conforms to D')")

    view = GAVView(view_dtd, source_dtd)
    query = "//C"

    answered = view.answer(query, source)
    materialized = extract_view(source, view_dtd)
    on_view = evaluate_xpath(materialized, parse_xpath(query))
    print(f"//C on the virtual view: {len(answered)} nodes "
          f"(materialised view agrees: {len(on_view)})")

    total_c = len(evaluate_xpath(source, parse_xpath("//C")))
    print(f"//C on the raw source would leak {total_c - len(answered)} extra C nodes "
          "(the children of B elements the view hides)\n")


def exponential_blowup_example(n: int = 8) -> None:
    """Example 3.3 / 4.2: avoid B nodes on the D1(n)/D2(n) DAG family."""
    print(f"== Example 3.3: //A{n} on the D1({n}) view of a D2({n}) source ==")
    view_dtd = complete_dag_dtd(n)
    source_dtd = complete_dag_with_blocker_dtd(n)
    source = generate_document(source_dtd, x_l=10, x_r=2, seed=13, max_elements=4000)

    view = GAVView(view_dtd, source_dtd)
    query = f"//A{n}"
    answered = view.answer(query, source)
    for node in answered:
        assert "B" not in node.path_from_root()
    print(f"{query} on the virtual view: {len(answered)} nodes, none reached through B")

    # Size comparison: regular-expression rewriting (CycleE) vs extended XPath (CycleEX).
    regular = cycle_expression(view_dtd, "A1", f"A{n}")
    extended = rec_query(view_dtd, "A1", f"A{n}")
    print(f"rewriting size for the descendant step A1 => A{n}:")
    print(f"  regular expression (CycleE): {count_operators(regular).slashes} '/'-operators")
    print(f"  extended XPath (CycleEX):    {count_operators(extended).slashes} '/'-operators")
    print("  (the first grows as 2^n, the second as n^2 — Example 4.2)\n")


def rdbms_backed_view_example() -> None:
    """Answer a view query by pushing the rewritten query into SQL."""
    print("== View query answered through the relational engine ==")
    view_dtd = fig3_view_dtd()
    source_dtd = fig3_source_dtd()
    source = generate_document(source_dtd, x_l=7, x_r=3, seed=17, max_elements=1500)
    view = GAVView(view_dtd, source_dtd)
    native = view.answer("A//B[A]", source)
    via_sql = view.answer_via_rdbms("A//B[A]", source)
    print(f"A//B[A]: native evaluation {len(native)} nodes, via SQL {len(via_sql)} nodes")
    assert {n.node_id for n in native} == {n.node_id for n in via_sql}
    print("both paths agree\n")


def main() -> None:
    one_cycle_example()
    exponential_blowup_example()
    rdbms_backed_view_example()
    print("xml_views example finished")


if __name__ == "__main__":
    main()
