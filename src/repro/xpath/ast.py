"""Abstract syntax for the XPath fragment of Sect. 2.2.

The grammar is::

    p ::= eps | A | * | p/p | //p | p UNION p | p[q]
    q ::= p | text() = c | not q | q and q | q or q

plus the special query ``EMPTYSET`` which returns the empty node set over
every document (used by the translation algorithms for pruning).

All nodes are immutable dataclasses with structural equality; ``str()`` of a
node produces concrete syntax that re-parses to an equal tree (round-trip
property tested in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple, Union as TUnion

__all__ = [
    "Path",
    "Qualifier",
    "EmptyPath",
    "EmptySet",
    "Label",
    "Wildcard",
    "Slash",
    "Descendant",
    "Union",
    "Qualified",
    "PathQual",
    "TextEquals",
    "Not",
    "And",
    "Or",
    "iter_subpaths",
    "path_size",
]


class Path:
    """Base class of path expressions."""

    def children(self) -> Tuple["Path", ...]:
        """Immediate path sub-expressions (not qualifiers)."""
        return ()

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class Qualifier:
    """Base class of qualifier ([q]) expressions."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Paths
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EmptyPath(Path):
    """The empty path ``eps``: returns the context node itself."""

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class EmptySet(Path):
    """The special query returning the empty set over all documents."""

    def __str__(self) -> str:
        return "EMPTYSET"


@dataclass(frozen=True)
class Label(Path):
    """A label step ``A``: children of the context node labelled ``A``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Wildcard(Path):
    """The wildcard ``*``: all children of the context node."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class Slash(Path):
    """Concatenation ``p1/p2``."""

    left: Path
    right: Path

    def children(self) -> Tuple[Path, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        left = _maybe_paren(self.left)
        # `a//b` prints without the intermediate slash: a/(//b) == a//b.
        if isinstance(self.right, Descendant):
            return f"{left}{self.right}"
        return f"{left}/{_maybe_paren(self.right)}"


@dataclass(frozen=True)
class Descendant(Path):
    """The descendant-or-self axis ``//p``."""

    inner: Path

    def children(self) -> Tuple[Path, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"//{_maybe_paren(self.inner)}"


@dataclass(frozen=True)
class Union(Path):
    """Union ``p1 UNION p2`` (written ``p1 | p2`` in concrete syntax)."""

    left: Path
    right: Path

    def children(self) -> Tuple[Path, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Qualified(Path):
    """A qualified path ``p[q]``."""

    path: Path
    qualifier: "Qualifier"

    def children(self) -> Tuple[Path, ...]:
        return (self.path,)

    def __str__(self) -> str:
        return f"{_maybe_paren(self.path)}[{self.qualifier}]"


def _maybe_paren(path: Path) -> str:
    if isinstance(path, Union):
        return str(path)  # Union already prints with parentheses.
    return str(path)


# ---------------------------------------------------------------------------
# Qualifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PathQual(Qualifier):
    """Existential path qualifier ``[p]``: true iff ``p`` is non-empty."""

    path: Path

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class TextEquals(Qualifier):
    """Value qualifier ``[text() = 'c']``."""

    value: str

    def __str__(self) -> str:
        return f'text() = "{self.value}"'


@dataclass(frozen=True)
class Not(Qualifier):
    """Negation ``[not q]``."""

    inner: Qualifier

    def __str__(self) -> str:
        return f"not({self.inner})"


@dataclass(frozen=True)
class And(Qualifier):
    """Conjunction ``[q1 and q2]``."""

    left: Qualifier
    right: Qualifier

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Qualifier):
    """Disjunction ``[q1 or q2]``."""

    left: Qualifier
    right: Qualifier

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


# ---------------------------------------------------------------------------
# Utilities
# ---------------------------------------------------------------------------


def iter_subpaths(path: Path) -> Iterator[Path]:
    """Yield every path sub-expression of ``path`` in post-order.

    Qualifier contents are included (their path sub-expressions are visited),
    matching the post-order sub-query list ``L`` used by XPathToEXp.
    """
    if isinstance(path, Qualified):
        yield from iter_subpaths(path.path)
        yield from _iter_qualifier_paths(path.qualifier)
    else:
        for child in path.children():
            yield from iter_subpaths(child)
    yield path


def _iter_qualifier_paths(qualifier: Qualifier) -> Iterator[Path]:
    if isinstance(qualifier, PathQual):
        yield from iter_subpaths(qualifier.path)
    elif isinstance(qualifier, Not):
        yield from _iter_qualifier_paths(qualifier.inner)
    elif isinstance(qualifier, (And, Or)):
        yield from _iter_qualifier_paths(qualifier.left)
        yield from _iter_qualifier_paths(qualifier.right)
    # TextEquals contributes no path sub-expressions.


def path_size(path: Path) -> int:
    """Number of AST nodes in ``path`` (paths and qualifiers)."""
    total = 1
    if isinstance(path, Qualified):
        total += path_size(path.path) + _qualifier_size(path.qualifier)
        return total
    for child in path.children():
        total += path_size(child)
    return total


def _qualifier_size(qualifier: Qualifier) -> int:
    if isinstance(qualifier, PathQual):
        return 1 + path_size(qualifier.path)
    if isinstance(qualifier, TextEquals):
        return 1
    if isinstance(qualifier, Not):
        return 1 + _qualifier_size(qualifier.inner)
    if isinstance(qualifier, (And, Or)):
        return 1 + _qualifier_size(qualifier.left) + _qualifier_size(qualifier.right)
    raise TypeError(f"unknown qualifier {qualifier!r}")
