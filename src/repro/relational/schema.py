"""Relational schemas: per-relation column lists and whole-database schemas.

The shredding layer produces a :class:`DatabaseSchema` describing one
relation per element type (the paper's simplified mapping ``R_A(F, T, V)``)
or the shared-inlining layout; the relational engine only needs the column
lists plus the list of *node relations* (the relations whose ``T`` column
enumerates document nodes, used to build the identity relation ``R_id``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError

__all__ = [
    "RelationSchema",
    "DatabaseSchema",
    "F",
    "T",
    "V",
    "NODE_COLUMNS",
    "DOC_ORDER",
    "PRE",
    "POST",
    "SIZE",
    "ORDER_COLUMNS",
]

# Canonical column names of the paper's simplified storage mapping.
F = "F"  # from (parentId)
T = "T"  # to (node ID)
V = "V"  # text value of the T node ('_' when absent)

NODE_COLUMNS: Tuple[str, str, str] = (F, T, V)

# The interval (pre/post/size) document-order side relation.  One row per
# document node: ``(T, PRE, POST, SIZE)`` where ``SIZE`` counts the proper
# descendants, which are exactly the nodes with ``PRE`` in the half-open
# window ``(pre, pre + size]``.  It is *not* a node relation (its rows are not
# ``(F, T, V)`` edges), so it never contributes to ``R_id`` or the
# ``ALL_NODES`` view.
DOC_ORDER = "DOC_ORDER"
PRE = "PRE"
POST = "POST"
SIZE = "SIZE"

ORDER_COLUMNS: Tuple[str, str, str, str] = (T, PRE, POST, SIZE)


@dataclass(frozen=True)
class RelationSchema:
    """Schema of a single relation: a name and ordered column names."""

    name: str
    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate column names in relation {self.name!r}")

    def has_column(self, column: str) -> bool:
        """Return True if ``column`` belongs to this relation."""
        return column in self.columns

    def ddl(self) -> str:
        """Render a CREATE TABLE statement (VARCHAR columns, key on T if present)."""
        cols = ",\n  ".join(f"{c} VARCHAR(64)" for c in self.columns)
        key = f",\n  PRIMARY KEY ({T})" if T in self.columns else ""
        return f"CREATE TABLE {self.name} (\n  {cols}{key}\n);"


class DatabaseSchema:
    """A set of relation schemas plus bookkeeping for the XML-derived layout.

    Parameters
    ----------
    relations:
        The relation schemas.
    node_relations:
        Names of the relations whose rows are document nodes (``(F, T, V)``
        triples).  The union of their ``T``/``V`` columns defines the
        identity relation ``R_id`` used for ``eps`` and ``E*`` handling.
    element_relations:
        Mapping from element-type name to the relation storing its nodes.
    """

    def __init__(
        self,
        relations: Iterable[RelationSchema],
        node_relations: Optional[Sequence[str]] = None,
        element_relations: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        for schema in relations:
            if schema.name in self._relations:
                raise SchemaError(f"duplicate relation name {schema.name!r}")
            self._relations[schema.name] = schema
        self._node_relations: List[str] = list(node_relations or [])
        for name in self._node_relations:
            if name not in self._relations:
                raise SchemaError(f"node relation {name!r} is not declared")
        self._element_relations: Dict[str, str] = dict(element_relations or {})
        for element_type, relation in self._element_relations.items():
            if relation not in self._relations:
                raise SchemaError(
                    f"element type {element_type!r} maps to undeclared relation {relation!r}"
                )

    # -- accessors --------------------------------------------------------------

    @property
    def relation_names(self) -> List[str]:
        """All relation names, in declaration order."""
        return list(self._relations)

    @property
    def node_relations(self) -> List[str]:
        """Names of the node relations (used to build ``R_id``)."""
        return list(self._node_relations)

    def relation(self, name: str) -> RelationSchema:
        """Return the schema of relation ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        """Return True if the schema declares relation ``name``."""
        return name in self._relations

    def relation_for_element(self, element_type: str) -> str:
        """Return the relation storing nodes of ``element_type``."""
        try:
            return self._element_relations[element_type]
        except KeyError:
            raise SchemaError(f"no relation mapped for element type {element_type!r}") from None

    def element_types(self) -> List[str]:
        """Element types that have a mapped relation."""
        return list(self._element_relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:
        return f"DatabaseSchema(relations={self.relation_names})"

    def ddl(self) -> str:
        """Render CREATE TABLE statements for every relation."""
        return "\n\n".join(self._relations[name].ddl() for name in self._relations)
