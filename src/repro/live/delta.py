"""Shred deltas: the relational footprint of a document mutation.

A :class:`ShredDelta` records, per base relation, the rows a mutation
removes and the rows it adds, such that applying the delta to the shredded
database of the pre-mutation tree yields exactly the database that
:func:`~repro.shredding.shredder.shred_document` would produce for the
post-mutation tree.  Deltas compose: ``merge_deltas(d1, d2)`` is the delta
of applying the two underlying mutations in sequence.  Composition is sound
because node ids are never reused (``XMLTree`` hands out strictly
increasing ids), so a row deleted by one mutation can only reappear via an
insert carried by a *later* delta, never spontaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Set, Tuple

from repro.errors import ExecutionError
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = ["ShredDelta", "merge_deltas", "apply_delta_to_database"]

Row = Tuple
RowSet = FrozenSet[Row]

_EMPTY: RowSet = frozenset()


@dataclass(frozen=True)
class ShredDelta:
    """Row-level inserts and deletes per base relation.

    ``deletes`` are applied before ``inserts``; both map relation names to
    frozen row sets.  Relations absent from both maps are untouched.  The
    ``DOC_ORDER`` side relation participates like any other relation: a
    structural mutation carries the renumbered interval rows as an ordinary
    delete/insert pair.
    """

    deletes: Mapping[str, RowSet] = field(default_factory=dict)
    inserts: Mapping[str, RowSet] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        deletes: Mapping[str, Iterable[Row]],
        inserts: Mapping[str, Iterable[Row]],
    ) -> "ShredDelta":
        """Normalise mappings-of-iterables into a delta, dropping empties."""
        return cls(
            deletes={name: frozenset(rows) for name, rows in deletes.items() if rows},
            inserts={name: frozenset(rows) for name, rows in inserts.items() if rows},
        )

    def is_empty(self) -> bool:
        """True when the delta changes no rows."""
        return not self.deletes and not self.inserts

    def relations(self) -> Tuple[str, ...]:
        """Sorted names of relations the delta touches."""
        return tuple(sorted(set(self.deletes) | set(self.inserts)))

    def delete_count(self) -> int:
        """Total rows removed."""
        return sum(len(rows) for rows in self.deletes.values())

    def insert_count(self) -> int:
        """Total rows added."""
        return sum(len(rows) for rows in self.inserts.values())

    def summary(self) -> Dict[str, int]:
        """Compact row counts, e.g. for HTTP responses and CLI output."""
        return {
            "relations": len(self.relations()),
            "rows_deleted": self.delete_count(),
            "rows_inserted": self.insert_count(),
        }


def merge_deltas(first: ShredDelta, second: ShredDelta) -> ShredDelta:
    """Compose two deltas applied in sequence into one.

    Per relation: a row inserted by ``first`` and deleted by ``second``
    cancels; a row deleted by ``second`` that ``first`` did not insert must
    have existed before ``first``, so it joins the merged deletes.
    """
    deletes: Dict[str, RowSet] = {}
    inserts: Dict[str, RowSet] = {}
    for name in set(first.deletes) | set(first.inserts) | set(second.deletes) | set(second.inserts):
        del1 = first.deletes.get(name, _EMPTY)
        ins1 = first.inserts.get(name, _EMPTY)
        del2 = second.deletes.get(name, _EMPTY)
        ins2 = second.inserts.get(name, _EMPTY)
        merged_inserts = (ins1 - del2) | ins2
        merged_deletes = del1 | (del2 - ins1)
        if merged_deletes:
            deletes[name] = merged_deletes
        if merged_inserts:
            inserts[name] = merged_inserts
    return ShredDelta(deletes=deletes, inserts=inserts)


def apply_delta_to_database(database: Database, delta: ShredDelta) -> None:
    """Apply ``delta`` to an in-memory :class:`Database` via ``set_relation``.

    Each ``set_relation`` bumps the database's version counter, so derived
    caches (the columnar store) notice the mutation and re-encode lazily.
    Raises :class:`ExecutionError` when a delete targets a row that is not
    present — the delta was computed against a different database state.
    """
    for name in delta.relations():
        relation = database.relation(name)
        rows: Set[Row] = set(relation.rows)
        removals = delta.deletes.get(name, _EMPTY)
        missing = removals - rows
        if missing:
            sample = sorted(missing)[0]
            raise ExecutionError(
                f"delta deletes {len(missing)} row(s) absent from relation "
                f"{name!r} (e.g. {sample!r}); the delta was computed against "
                "a different database state"
            )
        rows -= removals
        rows |= delta.inserts.get(name, _EMPTY)
        database.set_relation(name, Relation(relation.columns, rows, name=name))
