"""The shared ``obs.Timer`` elapsed-time block."""

from __future__ import annotations

import time

from repro import obs
from repro.obs.metrics import MetricsRegistry


class TestTimer:
    def test_seconds_frozen_after_exit(self):
        with obs.Timer() as timer:
            time.sleep(0.01)
        frozen = timer.seconds
        assert frozen >= 0.01
        time.sleep(0.01)
        assert timer.seconds == frozen

    def test_seconds_reads_live_while_open(self):
        timer = obs.Timer()
        with timer:
            first = timer.seconds
            time.sleep(0.005)
            second = timer.seconds
            assert second > first >= 0.0

    def test_reentering_restarts_the_clock(self):
        timer = obs.Timer()
        with timer:
            time.sleep(0.01)
        first = timer.seconds
        with timer:
            pass
        assert timer.seconds < first

    def test_metric_records_into_a_registry_histogram(self):
        replacement = MetricsRegistry()
        previous = obs.set_registry(replacement)
        try:
            with obs.Timer(metric="unit.block_seconds"):
                pass
            histogram = replacement.histogram("unit.block_seconds")
            assert histogram.count == 1
            assert histogram.sum >= 0.0
        finally:
            obs.set_registry(previous)
