"""``Backend.apply_delta``: the one sanctioned route for mutating a store."""

from __future__ import annotations

import pytest

from repro.api.config import EngineConfig
from repro.backends import create_backend
from repro.backends.base import Backend
from repro.core.pipeline import XPathToSQLTranslator
from repro.dtd import samples
from repro.errors import ExecutionError
from repro.live.delta import ShredDelta
from repro.live.mutations import DocumentMutator
from repro.relational.columnar import COLUMNAR_MIN_ROWS, columnar_store
from repro.relational.relation import Relation
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath

QUERY = "a//d"


def _setup(max_elements=300):
    dtd = samples.cross_dtd()
    tree = generate_document(dtd, seed=13, max_elements=max_elements)
    shredded = shred_document(tree, dtd)
    program = XPathToSQLTranslator(dtd).translate(parse_xpath(QUERY)).program
    return dtd, tree, shredded, program


def _expected(tree):
    return {n.node_id for n in evaluate_xpath(tree, parse_xpath(QUERY))}


class TestMemoryStaleGuard:
    def test_out_of_band_mutation_raises_a_clear_error(self):
        """Regression: a database mutated behind the backend's back used to be
        silently re-encoded into the columnar store on the next query."""
        dtd, tree, shredded, program = _setup()
        backend = create_backend("memory", shredded.database)
        backend.execute(program)
        relation = shredded.database.relation("DOC_ORDER")
        shredded.database.set_relation(
            "DOC_ORDER", Relation(relation.columns, set(relation.rows), name="DOC_ORDER")
        )
        with pytest.raises(ExecutionError, match="apply_delta"):
            backend.execute(program)

    def test_apply_delta_is_the_sanctioned_route(self):
        dtd, tree, shredded, program = _setup()
        backend = create_backend("memory", shredded.database)
        mutator = DocumentMutator(tree, dtd)
        text_node = next(n for n in tree.nodes() if n.label in dtd.text_types)
        backend.apply_delta(mutator.replace_text(text_node, "sanctioned"))
        ids = {int(i) for i in backend.execute(program).node_ids()}
        assert ids == _expected(tree)

    def test_default_apply_delta_is_rejected_with_guidance(self):
        dtd, tree, shredded, _ = _setup(max_elements=60)

        class InertBackend(Backend):
            name = "inert"

            def execute(self, program):  # pragma: no cover - never called
                raise AssertionError

        backend = InertBackend(shredded.database)
        with pytest.raises(ExecutionError, match="re-register"):
            backend.apply_delta(ShredDelta())


class TestColumnarInPlacePatch:
    def test_store_is_patched_not_rebuilt(self):
        dtd, tree, shredded, program = _setup()
        assert shredded.database.total_rows() >= COLUMNAR_MIN_ROWS
        backend = create_backend(
            EngineConfig(backend="memory", executor="columnar"), shredded.database
        )
        backend.execute(program)
        store = columnar_store(shredded.database)
        untouched = {
            name: store.relation(name)
            for name in shredded.database
        }
        mutator = DocumentMutator(tree, dtd)
        text_node = next(n for n in tree.nodes() if n.label in dtd.text_types)
        delta = mutator.replace_text(text_node, "patched-in-place")
        backend.apply_delta(delta)
        # Same store object, adopted version: no from-scratch re-encode.
        assert columnar_store(shredded.database) is store
        assert store.version == shredded.database.version
        # Relations outside the delta keep their encodings.
        for name, relation in untouched.items():
            if name not in delta.relations():
                assert store.relation(name) is relation, name
        ids = {int(i) for i in backend.execute(program).node_ids()}
        assert ids == _expected(tree)

    def test_patched_store_equals_fresh_encode(self):
        dtd, tree, shredded, program = _setup()
        backend = create_backend(
            EngineConfig(backend="memory", executor="columnar"), shredded.database
        )
        mutator = DocumentMutator(tree, dtd)
        text_nodes = [n for n in tree.nodes() if n.label in dtd.text_types]
        backend.apply_delta(mutator.replace_text(text_nodes[0], "round-1"))
        backend.apply_delta(mutator.replace_text(text_nodes[-1], "round-2"))
        patched = columnar_store(shredded.database)
        scratch = shred_document(tree, dtd)
        fresh = columnar_store(scratch.database)
        for name in scratch.database:
            assert set(map(tuple, _decoded_rows(patched, name))) == set(
                map(tuple, _decoded_rows(fresh, name))
            ), name


def _decoded_rows(store, name):
    relation = store.relation(name)
    decode = store.dictionary.decode
    return [tuple(decode(code) for code in row) for row in relation.rows()]


class TestSqliteApplyDelta:
    def test_delta_updates_answers(self):
        dtd, tree, shredded, program = _setup()
        backend = create_backend("sqlite", shredded.database)
        try:
            backend.execute(program)
            mutator = DocumentMutator(tree, dtd)
            text_node = next(n for n in tree.nodes() if n.label in dtd.text_types)
            backend.apply_delta(mutator.replace_text(text_node, "sqlite-side"))
            ids = {int(i) for i in backend.execute(program).node_ids()}
            assert ids == _expected(tree)
        finally:
            backend.close()

    def test_bad_delta_rejected_before_reaching_sqlite(self):
        dtd, tree, shredded, program = _setup(max_elements=80)
        backend = create_backend("sqlite", shredded.database)
        try:
            before = frozenset(shredded.database.relation("DOC_ORDER").rows)
            bogus = ShredDelta.build({"DOC_ORDER": {(999999, 1, 2, 3)}}, {})
            with pytest.raises(ExecutionError, match="different database state"):
                backend.apply_delta(bogus)
            assert frozenset(shredded.database.relation("DOC_ORDER").rows) == before
            backend.execute(program)  # still serviceable
        finally:
            backend.close()
