"""Benchmark: Fig. 13 (Exp-2) — pushing selections into the LFP operator.

Each of the two selective queries (Qe: selection at the start of the path,
Qf: selection at the end) is lowered twice: with the Sect. 5.2 push-selection
rewrite and without it.  The expectation from the paper: the pushed variant
is consistently faster, with the gap widening for the query whose selection
anchors the recursion (Qe).
"""

import pytest

from repro.core.optimize import push_selection_options, standard_options
from repro.core.pipeline import XPathToSQLTranslator
from repro.relational.executor import Executor
from repro.workloads.queries import SELECTIVE_QUERIES

VARIANTS = {
    "push": push_selection_options(),
    "no-push": standard_options(),
}


@pytest.mark.parametrize("query_name", sorted(SELECTIVE_QUERIES))
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_fig13_push_selection(benchmark, cross_dataset, query_name, variant):
    dtd, tree, shredded = cross_dataset
    label = "b" if query_name == "Qe" else "d"
    query = SELECTIVE_QUERIES[query_name].format(value=f"{label}-0")
    translator = XPathToSQLTranslator(dtd, options=VARIANTS[variant])
    program = translator.translate(query).program

    def run():
        return Executor(shredded.database).run(program)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    selected = sum(1 for n in tree.nodes_with_label(label) if n.value == f"{label}-0")
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["selected_elements"] = selected
    benchmark.extra_info["result_rows"] = len(result)
