"""Executor equivalence: columnar batch engine == tuple-at-a-time engine.

The Issue 8 property: the columnar executor is a pure representation
change — same algebra, same result sets, byte-for-byte.  Checked four
ways:

* schema-guided random queries over *all 8 sample DTDs*, the translated
  program executed on both executors at optimize levels 0 and 2 —
  identical node sets, and identical to the direct XPath evaluator;
* every differential-sweep spec (the paper workloads plus the
  non-recursive DTD, including the recursive-union and pushed-selection
  configurations), with the sqlite backend as a third arm so both
  backends' answers pin the executors;
* every case of the checked-in fuzz regression corpus replayed through
  the default engine grid, which since Issue 8 carries a
  ``.../opt/tuple`` oracle arm per strategy — plus an explicit
  per-corpus-case executor comparison at both optimize levels;
* lazy and eager evaluation agree per executor (the strategies share the
  warm-temporaries namespace, so this also exercises temp reuse).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api.config import EngineConfig
from repro.backends import create_backend
from repro.backends.differential import default_specs
from repro.core.pipeline import XPathToSQLTranslator
from repro.dtd import samples
from repro.fuzz.cases import FuzzCase
from repro.fuzz.harness import replay_corpus
from repro.fuzz.oracle import default_engines
from repro.fuzz.xpath_gen import RandomXPathGenerator, XPathGenConfig
from repro.relational.columnar import EXECUTOR_NAMES
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath

ALL_SAMPLE_DTDS = sorted(samples.paper_dtds())
OPTIMIZE_LEVELS = (0, 2)
CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz" / "corpus"
CORPUS_CASES = sorted(CORPUS_DIR.glob("*.json"))


def _memory_backends(database):
    """One memory backend per executor, keyed by executor name."""
    return {
        executor: create_backend(
            EngineConfig(backend="memory", executor=executor), database
        )
        for executor in EXECUTOR_NAMES
    }


@pytest.fixture(scope="module")
def sample_documents():
    documents = {}
    for name, dtd in samples.paper_dtds().items():
        tree = generate_document(
            dtd, x_l=7, x_r=3, seed=37, max_elements=250, distinct_values=4
        )
        documents[name] = (dtd, tree, shred_document(tree, dtd))
    return documents


class TestExecutorsAgreeOnSampleDTDs:
    @pytest.mark.parametrize("level", OPTIMIZE_LEVELS)
    @pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
    def test_columnar_matches_tuple_and_evaluator(
        self, sample_documents, dtd_name, level
    ):
        dtd, tree, shredded = sample_documents[dtd_name]
        queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=41)).queries(5)
        translator = XPathToSQLTranslator(dtd, optimize_level=level)
        backends = _memory_backends(shredded.database)
        for query_text in queries:
            query = parse_xpath(query_text)
            expected = {str(n.node_id) for n in evaluate_xpath(tree, query)}
            program = translator.translate(query).program
            per_executor = {
                executor: set(backend.execute(program).node_ids())
                for executor, backend in backends.items()
            }
            for executor, ids in per_executor.items():
                assert ids == expected, (dtd_name, executor, level, query_text)


class TestExecutorsAgreeOnDifferentialSpecs:
    SPECS = default_specs(max_elements=250)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.label)
    def test_spec_queries_agree_across_executors_and_backends(self, spec):
        shredded = shred_document(spec.materialize(), spec.dtd)
        translator = XPathToSQLTranslator(spec.dtd, config=spec.engine_config())
        backends = _memory_backends(shredded.database)
        backends["sqlite"] = create_backend("sqlite", shredded.database)
        try:
            for query_name, query in spec.queries.items():
                program = translator.translate(query).program
                answers = {
                    name: backend.execute(program).rows
                    for name, backend in backends.items()
                }
                reference = answers["tuple"]
                for name, rows in answers.items():
                    assert rows == reference, (spec.label, query_name, name)
        finally:
            for backend in backends.values():
                backend.close()


class TestExecutorsAgreeOnFuzzCorpus:
    @pytest.mark.parametrize("level", OPTIMIZE_LEVELS)
    @pytest.mark.parametrize("case_path", CORPUS_CASES, ids=lambda p: p.stem)
    def test_corpus_case_executor_invariant(self, case_path, level):
        case = FuzzCase.load(case_path)
        dtd = case.dtd()
        tree = case.tree()
        query = parse_xpath(case.query)
        shredded = shred_document(tree, dtd)
        expected = {str(n.node_id) for n in evaluate_xpath(tree, query)}
        translator = XPathToSQLTranslator(dtd, optimize_level=level)
        program = translator.translate(query).program
        for executor, backend in _memory_backends(shredded.database).items():
            ids = set(backend.execute(program).node_ids())
            assert ids == expected, (case.label, executor, level)

    def test_corpus_replay_through_the_default_grid_is_clean(self):
        # The default grid has carried a tuple-executor oracle arm per
        # strategy since Issue 8, so a full-grid replay differentially
        # checks the executors on every saved regression case.
        engines = default_engines()
        assert any(e.executor == "tuple" for e in engines)
        assert any(e.executor == "columnar" for e in engines)
        outcomes = replay_corpus(CORPUS_DIR, engines)
        failed = [o for o in outcomes if not o.ok]
        assert not failed, [o.case.label for o in failed]


class TestLazyEagerAgreePerExecutor:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_lazy_and_eager_agree(self, sample_documents, executor):
        dtd, tree, shredded = sample_documents["cross"]
        queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=43)).queries(4)
        translator = XPathToSQLTranslator(dtd)
        lazy = create_backend("memory", shredded.database, executor=executor)
        eager = create_backend(
            "memory", shredded.database, executor=executor, lazy=False
        )
        for query_text in queries:
            program = translator.translate(query_text).program
            assert lazy.execute(program).rows == eager.execute(program).rows, (
                executor,
                query_text,
            )
