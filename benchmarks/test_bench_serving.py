"""Benchmark: serving tiers — serial vs threaded vs multiprocess (BENCH_5).

Runs the shared harness of :mod:`repro.service.servebench` (the same tiers
``repro bench-serving`` measures) and writes ``BENCH_5.json`` at the repo
root, continuing the committed BENCH_* trajectory.

Asserted here (the Issue 7 acceptance bar):

* every tier returned node-for-node the serial tier's answers — always, on
  every host (a tier cannot win by being wrong);
* rps and p50/p99 latency are recorded for serial, threaded and
  multiprocess on both backends;
* on hosts with >= 2 CPUs, the multiprocess tier beats both serial and
  threaded on the memory-backend workload (the ">1x" headline).  On a
  single-core host that ordering is physically impossible — CPython runs
  one CPU-bound process at a time no matter how many you fork — so there
  the assertion degrades to a sanity floor (multiprocess completes within
  3x of serial, i.e. the IPC tax stays bounded) and the report's
  ``cpu_count`` field documents which regime produced the numbers.

The pytest-benchmark cases additionally time one representative call per
tier so ``--benchmark-compare`` runs catch per-tier regressions.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.dtd import samples
from repro.service import ProcessQueryService, QueryService
from repro.service.servebench import (
    ServingBenchConfig,
    run_serving_benchmark,
    write_report,
)
from repro.xmltree.generator import generate_document

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_5.json"

BENCH_CONFIG = ServingBenchConfig(elements=1000, repeats=5, threads=4)

MODES = ("serial", "threaded", "multiprocess", "multiprocess_batch")

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="micro-benchmarks use the fork start method for speed",
)


@pytest.fixture(scope="module")
def serving_report():
    return run_serving_benchmark(BENCH_CONFIG)


def test_writes_bench_5_json(serving_report):
    write_report(serving_report, str(REPORT_PATH))
    on_disk = json.loads(REPORT_PATH.read_text())
    assert on_disk["bench"] == "serving-tiers"
    assert on_disk["issue"] == 7
    assert on_disk["cpu_count"] == os.cpu_count()
    assert set(on_disk["scenarios"]) == {"memory", "sqlite"}


def test_every_tier_returned_exact_answers(serving_report):
    assert serving_report["ok"] is True
    for entry in serving_report["scenarios"].values():
        assert entry["results_match"] is True


def test_all_tiers_report_rps_and_latency_percentiles(serving_report):
    for entry in serving_report["scenarios"].values():
        for mode in MODES:
            stats = entry[mode]
            assert stats["calls"] == entry["calls"]
            assert stats["seconds"] > 0 and stats["rps"] > 0
            if mode != "multiprocess_batch":  # batch has no per-request timings
                assert stats["p50_ms"] is not None
                assert stats["p99_ms"] is not None
                assert stats["p99_ms"] >= stats["p50_ms"]


def test_multiprocess_beats_serial_and_threaded_given_cpus(serving_report):
    entry = serving_report["scenarios"]["memory"]
    vs_serial = entry["multiprocess_vs_serial"]
    vs_threaded = entry["multiprocess_vs_threaded"]
    if (os.cpu_count() or 1) >= 2:
        assert vs_serial > 1.0, (
            f"multiprocess only {vs_serial:.2f}x of serial on a "
            f"{os.cpu_count()}-cpu host"
        )
        assert vs_threaded > 1.0, (
            f"multiprocess only {vs_threaded:.2f}x of threaded on a "
            f"{os.cpu_count()}-cpu host"
        )
    else:
        # One CPU: parallel speedup is impossible; assert the IPC tax is
        # bounded instead so a broken pool still fails loudly.
        assert vs_serial > 1.0 / 3.0, (
            f"multiprocess {vs_serial:.2f}x of serial: IPC overhead exceeds "
            "the 3x single-core budget"
        )


# -- per-tier micro-benchmarks --------------------------------------------------


@pytest.fixture(scope="module")
def cross_case():
    dtd = samples.cross_dtd()
    tree = generate_document(
        dtd, x_l=10, x_r=3, seed=11, max_elements=BENCH_CONFIG.elements
    )
    return dtd, tree


def test_serial_tier_answer_per_call(benchmark, cross_case):
    dtd, tree = cross_case
    with QueryService(dtd, result_cache=False) as service:
        service.register_document("doc", tree)
        service.answer("a/b//c/d")  # warm the plan + prepared store
        result = benchmark.pedantic(
            lambda: service.answer("a/b//c/d"), rounds=3, iterations=2
        )
    benchmark.extra_info["tier"] = "serial"
    benchmark.extra_info["matches"] = len(result)


@fork_only
def test_multiprocess_tier_answer_per_call(benchmark, cross_case):
    dtd, tree = cross_case
    from repro.api.config import EngineConfig

    config = EngineConfig(result_cache_size=0)
    with ProcessQueryService(
        dtd, config=config, workers=2, replicas=2, start_method="fork",
        warmup=["a/b//c/d"],
    ) as pool:
        pool.register_document("doc", tree)
        pool.answer("a/b//c/d", "doc")  # warm the owning replica
        result = benchmark.pedantic(
            lambda: pool.answer("a/b//c/d", "doc", include_nodes=False),
            rounds=3,
            iterations=2,
        )
    benchmark.extra_info["tier"] = "multiprocess"
    benchmark.extra_info["matches"] = result.count
