"""Live updates through the serving stack: service, process pool, HTTP."""

from __future__ import annotations

import http.client
import json
import multiprocessing
import random
import threading

import pytest

from repro import obs
from repro.dtd import samples
from repro.errors import MutationError, UnknownDocumentError
from repro.live.fuzzer import MutationGenConfig, RandomMutationGenerator
from repro.live.mutations import DeleteSubtree, InsertSubtree, ReplaceText
from repro.service import ProcessQueryService, QueryService
from repro.service.http import QueryHTTPServer
from repro.xmltree.generator import generate_document
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath

QUERY = "a//d"

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool tests use the fork start method for speed",
)


def _script(dtd, tree, seed=7, mutations=5):
    generator = RandomMutationGenerator(
        dtd, random.Random(seed), MutationGenConfig(mutations=mutations)
    )
    script = generator.script(tree)
    assert script, "document too constrained to mutate"
    return script


def _evaluator_ids(tree, query=QUERY):
    return sorted(n.node_id for n in evaluate_xpath(tree, parse_xpath(query)))


class TestQueryServiceUpdate:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_update_keeps_answers_in_sync_with_the_tree(self, backend):
        dtd = samples.cross_dtd()
        tree = generate_document(dtd, seed=3, max_elements=200)
        with QueryService(dtd, backend=backend) as service:
            service.register_document("doc", tree)
            script = _script(dtd, tree)
            summary = service.update_document(script, "doc")
            assert summary["applied"] == len(script)
            assert summary["document"] == "doc"
            live_tree = service.store("doc").shredded.tree
            answered = sorted(
                n.node_id for n in service.answer(QUERY, document_id="doc")
            )
            assert answered == _evaluator_ids(live_tree)

    def test_result_cache_dropped_but_plan_cache_survives(self):
        dtd = samples.cross_dtd()
        tree = generate_document(dtd, seed=3, max_elements=200)
        with QueryService(dtd) as service:
            service.register_document("doc", tree)
            service.answer(QUERY, document_id="doc")
            service.answer(QUERY, document_id="doc")
            assert service.result_cache_info().hits >= 1
            plans_before = service.cache_info()

            service.update_document(_script(dtd, tree), "doc")
            # The store's result LRU was computed over the old rows: gone.
            assert service.result_cache_info().size == 0
            misses_before = service.result_cache_info().misses
            service.answer(QUERY, document_id="doc")
            assert service.result_cache_info().misses == misses_before + 1
            # The plan is a function of (DTD, query) alone: no re-translation.
            assert service.cache_info().misses == plans_before.misses

    def test_invalidation_counter_increments(self):
        dtd = samples.cross_dtd()
        tree = generate_document(dtd, seed=3, max_elements=120)
        counter = obs.registry().counter("service.invalidations")
        before = counter.value
        with QueryService(dtd) as service:
            service.register_document("doc", tree)
            service.update_document(_script(dtd, tree, mutations=2), "doc")
        assert counter.value == before + 1

    def test_json_form_mutations_accepted(self):
        dtd = samples.cross_dtd()
        tree = generate_document(dtd, seed=3, max_elements=120)
        text_node = next(n for n in tree.nodes() if n.label in dtd.text_types)
        with QueryService(dtd) as service:
            service.register_document("doc", tree)
            summary = service.update_document(
                [{"op": "replace_text", "node": text_node.node_id, "value": "wired"}],
                "doc",
            )
            assert summary["applied"] == 1
            assert service.store("doc").shredded.tree.node(
                text_node.node_id
            ).value == "wired"

    def test_failing_mutation_applies_prefix_and_stays_consistent(self):
        dtd = samples.cross_dtd()
        tree = generate_document(dtd, seed=3, max_elements=200)
        text_node = next(n for n in tree.nodes() if n.label in dtd.text_types)
        with QueryService(dtd) as service:
            service.register_document("doc", tree)
            script = [
                ReplaceText(text_node.node_id, "applied-before-failure"),
                DeleteSubtree(99_999),  # unknown node: fails validation
            ]
            with pytest.raises(MutationError):
                service.update_document(script, "doc")
            live_tree = service.store("doc").shredded.tree
            assert live_tree.node(text_node.node_id).value == "applied-before-failure"
            # Tree and relational store did not diverge on the partial apply.
            answered = sorted(
                n.node_id for n in service.answer(QUERY, document_id="doc")
            )
            assert answered == _evaluator_ids(live_tree)

    def test_unknown_document_rejected(self):
        dtd = samples.cross_dtd()
        with QueryService(dtd) as service:
            service.register_document("doc", generate_document(dtd, seed=1, max_elements=60))
            with pytest.raises(UnknownDocumentError):
                service.update_document([DeleteSubtree(1)], "nope")


@fork_only
class TestProcessPoolUpdate:
    def test_update_reaches_every_owning_replica(self):
        dtd = samples.cross_dtd()
        with ProcessQueryService(
            dtd, workers=2, replicas=2, start_method="fork", warmup=[QUERY]
        ) as pool:
            tree = generate_document(dtd, seed=3, max_elements=200)
            pool.register_document("doc", tree)
            script = _script(dtd, tree)
            summary = pool.update_document(script, "doc")
            assert sorted(summary["workers"]) == sorted(pool.owners("doc"))
            # Round-robin across both replicas: answers must agree post-update.
            answers = {tuple(pool.answer(QUERY, "doc").node_ids) for _ in range(4)}
            assert len(answers) == 1
            stats = pool.stats()
            assert stats["metrics"]["pool.updates"]["value"] == 1

    def test_respawned_worker_replays_the_mutation_log(self):
        dtd = samples.cross_dtd()
        with ProcessQueryService(
            dtd, workers=2, replicas=2, start_method="fork", warmup=[QUERY]
        ) as pool:
            tree = generate_document(dtd, seed=3, max_elements=200)
            pool.register_document("doc", tree)
            pool.update_document(_script(dtd, tree), "doc")
            expected = list(pool.answer(QUERY, "doc").node_ids)
            for index in range(2):  # kill both owners, one at a time
                pool._kill_worker(index)
                assert list(pool.answer(QUERY, "doc").node_ids) == expected


@fork_only
class TestHTTPUpdate:
    @pytest.fixture()
    def server(self):
        dtd = samples.cross_dtd()
        pool = ProcessQueryService(
            dtd, workers=1, replicas=1, start_method="fork", warmup=[QUERY]
        )
        tree = generate_document(dtd, seed=3, max_elements=200)
        pool.register_document("doc", tree)
        http_server = QueryHTTPServer(pool, port=0)
        ready = threading.Event()
        thread = threading.Thread(
            target=http_server.run, kwargs={"ready": lambda _url: ready.set()}, daemon=True
        )
        thread.start()
        assert ready.wait(10), "server did not come up"
        yield http_server, pool, dtd, tree
        http_server.request_stop()
        thread.join(10)
        pool.close()

    def _request(self, http_server, method, path, payload=None):
        connection = http.client.HTTPConnection(
            http_server.host, http_server.port, timeout=30
        )
        try:
            body = json.dumps(payload) if payload is not None else None
            connection.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            raw = response.read()
            return response.status, json.loads(raw) if raw else None
        finally:
            connection.close()

    def test_post_update_applies_and_invalidates(self, server):
        http_server, pool, dtd, tree = server
        from repro.live.mutations import mutation_to_dict

        script = [mutation_to_dict(m) for m in _script(dtd, tree)]
        status, summary = self._request(
            http_server, "POST", "/update", {"mutations": script, "document": "doc"}
        )
        assert status == 200
        assert summary["applied"] == len(script)
        status, payload = self._request(
            http_server, "POST", "/answer", {"query": QUERY, "document": "doc"}
        )
        assert status == 200
        # Verify against a locally mutated oracle tree.
        from repro.live.mutations import DocumentMutator, mutation_from_dict

        oracle_tree = tree.copy()
        DocumentMutator(oracle_tree, dtd).apply_script(
            [mutation_from_dict(m) for m in script]
        )
        assert payload["node_ids"] == _evaluator_ids(oracle_tree)

    def test_post_update_requires_mutation_list(self, server):
        http_server, _pool, _dtd, _tree = server
        status, payload = self._request(
            http_server, "POST", "/update", {"mutations": "not-a-list"}
        )
        assert status == 400
        assert "mutations" in payload["message"]
