#!/usr/bin/env python3
"""Scenario: a university course catalog stored in an RDBMS.

This is the workload the paper's introduction motivates: a department's
course catalog with a *recursive* prerequisite hierarchy, stored in
relations via DTD-based shredding, queried with XPath by applications that
only have a SQL connection.

The example shows a small "catalog service" built on the public facade:

* ``CatalogService`` owns an :class:`~repro.api.Engine` (the translator +
  plan cache) and a :class:`~repro.api.Session` (the shredded, loaded
  document);
* callers ask XPath questions (deep prerequisites, project requirements,
  students qualified for a course, courses safe to drop);
* every question is answered by running the translated SQL program on the
  relational engine — the XML document is never traversed at query time.

Run with ``python examples/university_catalog.py``.
"""

from __future__ import annotations

from typing import List

from repro import Engine, EngineConfig, generate_document
from repro.dtd.samples import dept_dtd
from repro.xmltree.tree import XMLNode, XMLTree


class CatalogService:
    """Answer catalog questions over the shredded dept database."""

    def __init__(self, document: XMLTree) -> None:
        # Repeated questions hit the engine's plan cache; the session keeps
        # the shredded document's backend warm.
        self._engine = Engine.from_dtd(dept_dtd(), EngineConfig(strategy="auto"))
        self._session = self._engine.open_session(document)

    # -- helpers ---------------------------------------------------------------

    def _ask(self, xpath: str) -> List[XMLNode]:
        return self._session.answer(xpath).nodes()

    @staticmethod
    def _code_of(course: XMLNode) -> str:
        for child in course.children:
            if child.label == "cno" and child.value is not None:
                return child.value
        return f"course#{course.node_id}"

    # -- catalog questions -------------------------------------------------------

    def all_course_codes(self) -> List[str]:
        """Codes of every course in the catalog (any nesting depth)."""
        return sorted({node.value or "" for node in self._ask("dept//course/cno")})

    def transitive_prerequisites(self, cno: str) -> List[str]:
        """Codes of all direct and indirect prerequisites of a course."""
        query = f'dept//course[cno = "{cno}"]/prereq//course/cno'
        return sorted({node.value or "" for node in self._ask(query)})

    def project_required_courses(self) -> List[str]:
        """Courses that some project (anywhere in the catalog) requires."""
        return sorted({node.value or "" for node in self._ask("dept//project/required/course/cno")})

    def courses_without_projects(self) -> List[str]:
        """Courses with no project anywhere below them (safe to archive)."""
        return sorted(
            {self._code_of(node) for node in self._ask("dept//course[not //project]")}
        )

    def students_qualified_for(self, cno: str) -> int:
        """How many registered students are qualified for the given course."""
        query = f'dept//student[qualified//course[cno = "{cno}"]]'
        return len(self._ask(query))

    def sql_for(self, xpath: str) -> str:
        """Expose the SQL a question compiles to (for DBAs to inspect)."""
        return self._session.sql(xpath)

    def close(self) -> None:
        """Release the session's backend."""
        self._engine.close()


def main() -> None:
    document = generate_document(dept_dtd(), x_l=8, x_r=3, seed=7, max_elements=3000)
    print(f"catalog document: {document.size()} elements")
    service = CatalogService(document)

    codes = service.all_course_codes()
    print(f"courses in catalog: {len(codes)} (showing 5): {codes[:5]}")

    if codes:
        probe = codes[0]
        prerequisites = service.transitive_prerequisites(probe)
        print(f"transitive prerequisites of {probe}: {len(prerequisites)}")
        print(f"students qualified for {probe}: {service.students_qualified_for(probe)}")

    required = service.project_required_courses()
    print(f"courses required by some project: {len(required)}")

    archivable = service.courses_without_projects()
    print(f"courses with no project below them: {len(archivable)}")

    print("\nSQL generated for the 'courses without projects' question:\n")
    print(service.sql_for("dept//course[not //project]")[:800], "...")
    service.close()


if __name__ == "__main__":
    main()
