"""Unit tests for the XPath evaluator (the correctness oracle)."""

import pytest

from repro.xmltree.tree import build_tree
from repro.xpath.evaluator import XPathEvaluator, evaluate_xpath
from repro.xpath.parser import parse_xpath


@pytest.fixture()
def tree():
    # dept
    #   course(c1) [cno=cs66, prereq -> course(c2)[cno=cs11], project p1]
    #   course(c3) [cno=cs42, takenBy -> student s1 [qualified -> course c4 cno=cs66]]
    return build_tree(
        (
            "dept",
            [
                (
                    "course",
                    [
                        ("cno", "cs66"),
                        ("prereq", [("course", [("cno", "cs11")])]),
                        ("project", [("pno", "p1")]),
                    ],
                ),
                (
                    "course",
                    [
                        ("cno", "cs42"),
                        (
                            "takenBy",
                            [("student", [("qualified", [("course", [("cno", "cs66")])])])],
                        ),
                    ],
                ),
            ],
        )
    )


def labels(nodes):
    return [node.label for node in nodes]


def values(tree, query):
    return sorted(
        child.value
        for node in evaluate_xpath(tree, parse_xpath(query))
        for child in node.children
        if child.label == "cno"
    )


class TestAxes:
    def test_root_label_step(self, tree):
        result = evaluate_xpath(tree, parse_xpath("dept"))
        assert result == [tree.root]

    def test_root_label_mismatch(self, tree):
        assert evaluate_xpath(tree, parse_xpath("course")) == []

    def test_child_step(self, tree):
        result = evaluate_xpath(tree, parse_xpath("dept/course"))
        assert labels(result) == ["course", "course"]

    def test_descendant_step_counts_all_matches(self, tree):
        result = evaluate_xpath(tree, parse_xpath("dept//course"))
        assert len(result) == 4

    def test_descendant_step_at_inner_context(self, tree):
        # //course at a course element returns course children of its
        # descendants-or-self (the nested prerequisite course), not the
        # context node itself — matching the paper's //p semantics.
        course = tree.root.children[0]
        evaluator = XPathEvaluator(tree)
        result = evaluator.evaluate_at(course, parse_xpath("//course"))
        assert course not in result
        assert labels(result) == ["course"]
        assert result[0].children[0].value == "cs11"

    def test_wildcard(self, tree):
        result = evaluate_xpath(tree, parse_xpath("dept/course/*"))
        assert set(labels(result)) == {"cno", "prereq", "project", "takenBy"}

    def test_leading_descendant_matches_everywhere(self, tree):
        result = evaluate_xpath(tree, parse_xpath("//cno"))
        assert len(result) == 4

    def test_union(self, tree):
        result = evaluate_xpath(tree, parse_xpath("dept/course/cno | dept/course/project"))
        assert sorted(labels(result)) == ["cno", "cno", "project"]

    def test_empty_path_returns_document_root(self, tree):
        assert evaluate_xpath(tree, parse_xpath(".")) == [tree.root]

    def test_emptyset_returns_nothing(self, tree):
        assert evaluate_xpath(tree, parse_xpath("EMPTYSET")) == []

    def test_results_in_document_order(self, tree):
        result = evaluate_xpath(tree, parse_xpath("dept//cno"))
        assert [n.node_id for n in result] == sorted(n.node_id for n in result)


class TestQualifiers:
    def test_existential_path_qualifier(self, tree):
        result = evaluate_xpath(tree, parse_xpath("dept/course[project]"))
        assert len(result) == 1

    def test_text_equals_via_shorthand(self, tree):
        result = evaluate_xpath(tree, parse_xpath('dept/course[cno = "cs42"]'))
        assert len(result) == 1
        assert result[0].children[0].value == "cs42"

    def test_text_equals_no_match(self, tree):
        assert evaluate_xpath(tree, parse_xpath('dept/course[cno = "cs99"]')) == []

    def test_negation(self, tree):
        result = evaluate_xpath(tree, parse_xpath("dept/course[not project]"))
        assert len(result) == 1

    def test_conjunction(self, tree):
        result = evaluate_xpath(
            tree, parse_xpath('dept/course[cno = "cs66" and project]')
        )
        assert len(result) == 1

    def test_disjunction(self, tree):
        result = evaluate_xpath(
            tree, parse_xpath('dept/course[cno = "cs42" or project]')
        )
        assert len(result) == 2

    def test_descendant_inside_qualifier(self, tree):
        result = evaluate_xpath(
            tree, parse_xpath('dept/course[//course[cno = "cs11"]]')
        )
        assert len(result) == 1

    def test_qualifier_on_intermediate_step(self, tree):
        result = evaluate_xpath(tree, parse_xpath("dept/course[prereq]/project"))
        assert labels(result) == ["project"]

    def test_paper_query_q2_semantics(self, tree):
        # Courses with a cs11 prerequisite, no project anywhere below, and no
        # student qualified for cs66: none in this document (the only course
        # with the prerequisite also has a project).
        query = (
            'dept/course[//prereq/course[cno = "cs11"] and not //project '
            'and not takenBy/student/qualified//course[cno = "cs66"]]'
        )
        assert evaluate_xpath(tree, parse_xpath(query)) == []

    def test_satisfies_api(self, tree):
        evaluator = XPathEvaluator(tree)
        course_with_project = tree.root.children[0]
        qualifier = parse_xpath("x[project]").qualifier
        assert evaluator.satisfies(course_with_project, qualifier)
        assert not evaluator.satisfies(tree.root.children[1], qualifier)
