"""The in-memory backend: an adapter over the hash-join/LFP executor."""

from __future__ import annotations

from typing import Dict

from repro import obs
from repro.backends.base import Backend, BackendResult, normalize_rows
from repro.relational.algebra import Program
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.sqlgen import SQLDialect

__all__ = ["MemoryBackend"]


class MemoryBackend(Backend):
    """Execute programs on the pure-Python engine of ``relational.executor``.

    Every :meth:`execute` call builds a fresh :class:`Executor` over the
    (immutable after shredding) database, so concurrent calls from many
    threads are lock-free reads — there is no shared mutable state.

    Parameters
    ----------
    database:
        The shredded database to execute over.
    lazy:
        Evaluation strategy: lazy/top-down (default, the paper's strategy)
        or eager assignment-by-assignment.
    """

    name = "memory"
    dialect = SQLDialect.GENERIC

    def __init__(self, database: Database, lazy: bool = True) -> None:
        super().__init__(database)
        self._lazy = lazy

    def execute(self, program: Program) -> BackendResult:
        with obs.span("execute", backend=self.name) as sp:
            executor = Executor(self._database, lazy=self._lazy)
            relation = executor.run(program)
            stats: Dict[str, float] = executor.stats.as_dict()
            stats["rows"] = len(relation)
            sp.set(rows=len(relation))
        return BackendResult(
            backend=self.name,
            columns=tuple(relation.columns),
            rows=normalize_rows(relation.rows),
            stats=stats,
        )
