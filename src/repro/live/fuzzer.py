"""Mutation fuzzing: random valid update scripts, differentially checked.

The oracle here extends the read-only fuzz loop of :mod:`repro.fuzz` to
live documents.  For one mutation-carrying
:class:`~repro.fuzz.cases.FuzzCase` it answers the query two ways on every
engine of the grid and compares both against the XPath evaluator run on
the mutated tree:

* the **delta arm** shreds the *original* document, applies the script's
  merged :class:`~repro.live.delta.ShredDelta` through
  ``Backend.apply_delta``, then runs the query — the production update
  path;
* the **scratch arm** (engine names suffixed ``@scratch``) re-shreds the
  *mutated* tree from nothing and runs the same program — the paper's
  static ``Q'(tau_d(T))`` path.

Agreement of both arms with the evaluator is exactly the invariant a live
update must preserve: mutate-then-query equals reshred-from-scratch-then-
query equals the tree semantics.

:class:`RandomMutationGenerator` produces the scripts.  Every mutation it
emits is valid by construction — it rehearses the script on a scratch copy
of the document through the real :class:`DocumentMutator`, so DTD
validation has already accepted the exact sequence — and node ids are
deterministic, so a script replays bit-identically on a regenerated
document.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass, field, replace
from pathlib import Path as FilePath
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.dtd.model import (
    DTD,
    Choice,
    ContentModel,
    Empty,
    Optional as OptModel,
    Plus,
    Sequence as SeqModel,
    Star,
    TypeRef,
)
from repro.backends import create_backend
from repro.core.pipeline import XPathToSQLTranslator
from repro.errors import MutationError
from repro.fuzz.cases import DocumentSpec, FuzzCase
from repro.fuzz.dtd_gen import DTDGenConfig, RandomDTDGenerator
from repro.fuzz.harness import FuzzFailure, FuzzReport
from repro.fuzz.oracle import CaseOutcome, EngineDisagreement, EngineSpec, default_engines
from repro.fuzz.xpath_gen import RandomXPathGenerator, XPathGenConfig
from repro.live.delta import ShredDelta, merge_deltas
from repro.live.mutations import (
    DeleteSubtree,
    DocumentMutator,
    InsertSubtree,
    Mutation,
    ReplaceText,
    SubtreeSpec,
)
from repro.shredding.shredder import shred_document
from repro.xmltree.tree import XMLTree
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath

__all__ = [
    "MutationGenConfig",
    "RandomMutationGenerator",
    "MutationOracle",
    "MutationFuzzConfig",
    "run_mutation_fuzz",
]

_SEED_SPACE = 2**32

SCRATCH_SUFFIX = "@scratch"

# Small closed pool so replaced values sometimes collide with generator
# output (value predicates stay selective but satisfiable).
_VALUE_POOL = ("v0", "v1", "v2", "mut0", "mut1")


# -- script generation ----------------------------------------------------------


@dataclass(frozen=True)
class MutationGenConfig:
    """Knobs of one random mutation script."""

    mutations: int = 4
    max_subtree_depth: int = 3
    # Relative weights of (insert, delete, replace_text) attempts.
    insert_weight: int = 3
    delete_weight: int = 2
    replace_weight: int = 3


class RandomMutationGenerator:
    """Generate random DTD-valid mutation scripts for one document.

    The generator rehearses every candidate mutation on a scratch copy of
    the tree through the real :class:`DocumentMutator`; rejected candidates
    are simply skipped, so the returned script is valid as a *sequence*
    (each mutation valid in the state left by its predecessors).
    """

    def __init__(
        self,
        dtd: DTD,
        rng: Optional[random.Random] = None,
        config: Optional[MutationGenConfig] = None,
    ) -> None:
        self._dtd = dtd
        self._rng = rng if rng is not None else random.Random(0)
        self._config = config or MutationGenConfig()

    def script(self, tree: XMLTree) -> Tuple[Mutation, ...]:
        """One random valid mutation sequence against ``tree`` (not mutated)."""
        scratch = tree.copy()
        mutator = DocumentMutator(scratch, self._dtd)
        config = self._config
        kinds = (
            ["insert"] * config.insert_weight
            + ["delete"] * config.delete_weight
            + ["replace"] * config.replace_weight
        )
        script: List[Mutation] = []
        misses = 0
        while len(script) < config.mutations and misses < 8 * config.mutations:
            kind = self._rng.choice(kinds)
            if kind == "insert":
                mutation = self._try_insert(scratch, mutator)
            elif kind == "delete":
                mutation = self._try_delete(scratch, mutator)
            else:
                mutation = self._try_replace(scratch, mutator)
            if mutation is None:
                misses += 1
                continue
            script.append(mutation)
        return tuple(script)

    # -- candidates -------------------------------------------------------------

    def _nodes(self, tree: XMLTree):
        return list(tree.root.descendants_or_self())

    def _try_replace(self, tree: XMLTree, mutator: DocumentMutator) -> Optional[Mutation]:
        candidates = [
            node for node in self._nodes(tree) if node.label in self._dtd.text_types
        ]
        if not candidates:
            return None
        node = self._rng.choice(candidates)
        value: Optional[str] = (
            None if self._rng.random() < 0.15 else self._rng.choice(_VALUE_POOL)
        )
        try:
            mutator.replace_text(node, value)
        except MutationError:
            return None
        return ReplaceText(node.node_id, value)

    def _try_delete(self, tree: XMLTree, mutator: DocumentMutator) -> Optional[Mutation]:
        candidates = [node for node in self._nodes(tree) if node.parent is not None]
        self._rng.shuffle(candidates)
        # Prefer small subtrees: an unconstrained delete near the root tends
        # to erase most of the document, leaving trivially-empty queries.
        if self._rng.random() < 0.85:
            small = [
                node
                for node in candidates
                if sum(1 for _ in node.descendants_or_self()) <= 6
            ]
            candidates = small or candidates
        for node in candidates[:12]:
            node_id = node.node_id
            try:
                mutator.delete_subtree(node)
            except MutationError:
                continue
            return DeleteSubtree(node_id)
        return None

    def _try_insert(self, tree: XMLTree, mutator: DocumentMutator) -> Optional[Mutation]:
        parents = [node for node in self._nodes(tree) if self._dtd.children(node.label)]
        self._rng.shuffle(parents)
        for parent in parents[:12]:
            labels = self._dtd.children(parent.label)
            label = self._rng.choice(labels)
            spec = self._sample_subtree(label, self._config.max_subtree_depth)
            if spec is None:
                continue
            index = self._rng.randrange(len(parent.children) + 1)
            parent_id = parent.node_id
            try:
                mutator.insert_subtree(parent, spec, index=index)
            except MutationError:
                continue
            return InsertSubtree(parent_id, spec, index)
        return None

    # -- subtree sampling -------------------------------------------------------

    def _sample_subtree(self, label: str, depth: int) -> Optional[SubtreeSpec]:
        """A random conforming subtree of type ``label``, or None if the
        content model cannot be closed within ``depth`` levels (recursive
        types whose every word re-references an element type)."""
        model = self._dtd.production(label)
        word = self._sample_word(model, depth - 1)
        if word is None:
            return None
        children: List[SubtreeSpec] = []
        for child_label in word:
            child = self._sample_subtree(child_label, depth - 1)
            if child is None:
                return None
            children.append(child)
        value: Optional[str] = None
        if label in self._dtd.text_types and self._rng.random() < 0.8:
            value = self._rng.choice(_VALUE_POOL)
        return (label, value, tuple(children))

    def _sample_word(self, model: ContentModel, depth: int) -> Optional[List[str]]:
        """A random word of the model's language; None when ``depth`` is
        exhausted and the model is not nullable."""
        if isinstance(model, Empty):
            return []
        if depth <= 0 and model.nullable():
            return []
        if isinstance(model, TypeRef):
            return [model.name] if depth > 0 else None
        if isinstance(model, SeqModel):
            out: List[str] = []
            for part in model.parts:
                word = self._sample_word(part, depth)
                if word is None:
                    return None
                out.extend(word)
            return out
        if isinstance(model, Choice):
            parts = list(model.parts)
            self._rng.shuffle(parts)
            for part in parts:
                word = self._sample_word(part, depth)
                if word is not None:
                    return word
            return None
        if isinstance(model, Star):
            out = []
            for _ in range(self._rng.randint(0, 2)):
                word = self._sample_word(model.inner, depth)
                if word is None:
                    break
                out.extend(word)
            return out
        if isinstance(model, Plus):
            first = self._sample_word(model.inner, depth)
            if first is None:
                return None
            if self._rng.random() < 0.3:
                extra = self._sample_word(model.inner, depth)
                if extra is not None:
                    first = first + extra
            return first
        if isinstance(model, OptModel):
            if self._rng.random() < 0.5:
                word = self._sample_word(model.inner, depth)
                if word is not None:
                    return word
            return []
        return None


# -- the differential oracle ----------------------------------------------------


class MutationOracle:
    """Answer mutation cases on every engine, delta arm and scratch arm.

    Each engine *backend* gets its own fresh shred of the base document —
    ``apply_delta`` mutates the backing database in place and the memory
    backend's staleness guard assumes exclusive ownership, so sharing one
    database across backends (as the read-only oracle does) would be
    unsound here.
    """

    def __init__(self, engines: Optional[Sequence[EngineSpec]] = None) -> None:
        self._engines = list(engines or default_engines())

    @property
    def engines(self) -> List[EngineSpec]:
        """The engine grid this oracle compares."""
        return list(self._engines)

    def run(self, case: FuzzCase) -> CaseOutcome:
        """Answer ``case`` (mutations applied) on every engine, both arms."""
        outcome = CaseOutcome(case=case)
        try:
            dtd = case.dtd()
            query = parse_xpath(case.query)
            # One mutator run yields both the reference tree and the delta
            # every backend applies.
            mutated = case.tree()
            mutator = DocumentMutator(mutated, dtd)
            delta = ShredDelta()
            for mutation in case.mutations:
                delta = merge_deltas(delta, mutator.apply(mutation))
            outcome.expected = frozenset(
                node.node_id for node in evaluate_xpath(mutated, query)
            )
        except Exception:
            outcome.setup_error = traceback.format_exc(limit=3).strip()
            return outcome

        backends: Dict[Tuple[str, str, str, str], object] = {}
        programs: Dict[Tuple[object, ...], object] = {}
        try:
            for engine in self._engines:
                program_key = engine.config.translation_signature()
                program = programs.get(program_key)
                if program is None:
                    try:
                        translator = XPathToSQLTranslator(dtd, config=engine.config)
                        program = translator.translate(query).program
                        programs[program_key] = program
                    except Exception:
                        outcome.disagreements.append(
                            EngineDisagreement(
                                engine=engine.name,
                                error=traceback.format_exc(limit=3).strip(),
                            )
                        )
                        continue
                for arm in ("delta", "scratch"):
                    name = engine.name + (SCRATCH_SUFFIX if arm == "scratch" else "")
                    timer = obs.Timer()
                    try:
                        with timer:
                            key = (arm, engine.backend, engine.executor, engine.emission)
                            backend = backends.get(key)
                            if backend is None:
                                backend = self._make_backend(engine, case, arm, delta)
                                backends[key] = backend
                            result = backend.execute(program)  # type: ignore[attr-defined]
                            actual = frozenset(
                                int(node_id) for node_id in result.node_ids()
                            )
                    except Exception:
                        outcome.engine_seconds[name] = timer.seconds
                        outcome.disagreements.append(
                            EngineDisagreement(
                                engine=name,
                                error=traceback.format_exc(limit=3).strip(),
                            )
                        )
                        continue
                    outcome.engine_seconds[name] = timer.seconds
                    outcome.engine_results[name] = actual
                    if actual != outcome.expected:
                        outcome.disagreements.append(
                            EngineDisagreement(
                                engine=name,
                                missing=tuple(sorted(outcome.expected - actual)),
                                extra=tuple(sorted(actual - outcome.expected)),
                            )
                        )
        finally:
            for backend in backends.values():
                backend.close()  # type: ignore[attr-defined]
        return outcome

    def _make_backend(self, engine: EngineSpec, case: FuzzCase, arm: str, delta):
        """A backend over its own database: base + delta, or mutated-from-scratch."""
        dtd = case.dtd()
        if arm == "scratch":
            shredded = shred_document(case.mutated_tree(), dtd)
            return create_backend(engine.config, shredded.database)
        shredded = shred_document(case.tree(), dtd)
        backend = create_backend(engine.config, shredded.database)
        if not delta.is_empty():
            backend.apply_delta(delta)
        return backend


# -- the fuzz loop --------------------------------------------------------------


@dataclass(frozen=True)
class MutationFuzzConfig:
    """Knobs of one mutation-fuzzing sweep (mirrors ``FuzzConfig``)."""

    seed: int = 0
    budget: int = 50
    queries_per_dtd: int = 4
    min_types: int = 3
    max_types: int = 7
    max_cycle_edges: int = 3
    document: DocumentSpec = field(default_factory=DocumentSpec)
    mutations_per_case: int = 4
    corpus_dir: Optional[str] = None


def run_mutation_fuzz(
    config: Optional[MutationFuzzConfig] = None,
    engines: Optional[Sequence[EngineSpec]] = None,
    on_case: Optional[Callable[[CaseOutcome], None]] = None,
) -> FuzzReport:
    """Run one seeded mutation-fuzzing sweep.

    Mirrors :func:`repro.fuzz.harness.run_fuzz` but every case carries a
    random valid mutation script and runs through :class:`MutationOracle`.
    Failures are reported unshrunk — a script's mutations depend on the
    exact node ids of the generated document, so document shrinking would
    invalidate the script rather than minimise the repro.
    """
    config = config or MutationFuzzConfig()
    if config.queries_per_dtd < 1:
        raise ValueError("queries_per_dtd must be >= 1")
    if config.mutations_per_case < 1:
        raise ValueError("mutations_per_case must be >= 1")
    oracle = MutationOracle(engines)
    rng = random.Random(config.seed)
    corpus_dir: Optional[FilePath] = None
    if config.corpus_dir is not None:
        corpus_dir = FilePath(config.corpus_dir)
        corpus_dir.mkdir(parents=True, exist_ok=True)

    report = FuzzReport(
        seed=config.seed,
        cases_run=0,
        engines=[engine.name for engine in oracle.engines],
    )
    sweep_timer = obs.Timer()
    with sweep_timer:
        while report.cases_run < config.budget:
            dtd_config = DTDGenConfig(
                seed=rng.randrange(_SEED_SPACE),
                min_types=config.min_types,
                max_types=config.max_types,
                cycle_edges=rng.randint(0, config.max_cycle_edges),
            )
            dtd = RandomDTDGenerator(dtd_config).generate()
            query_generator = RandomXPathGenerator(
                dtd, XPathGenConfig(seed=rng.randrange(_SEED_SPACE))
            )
            for _ in range(config.queries_per_dtd):
                if report.cases_run >= config.budget:
                    break
                document = replace(config.document, seed=rng.randrange(_SEED_SPACE))
                generator = RandomMutationGenerator(
                    dtd,
                    random.Random(rng.randrange(_SEED_SPACE)),
                    MutationGenConfig(mutations=config.mutations_per_case),
                )
                script = generator.script(document.generate(dtd))
                case = FuzzCase(
                    label=f"mutfuzz-{config.seed}-{report.cases_run:05d}",
                    dtd_text=dtd.to_text(),
                    query=query_generator.generate(),
                    document=document,
                    mutations=script,
                )
                outcome = oracle.run(case)
                report.cases_run += 1
                for engine_name, seconds in outcome.engine_seconds.items():
                    report.engine_seconds[engine_name] = (
                        report.engine_seconds.get(engine_name, 0.0) + seconds
                    )
                if on_case is not None:
                    on_case(outcome)
                if outcome.ok:
                    continue
                failure = FuzzFailure(original=case, shrunk=case, outcome=outcome)
                if corpus_dir is not None:
                    path = corpus_dir / f"{case.label}.json"
                    case.save(
                        path,
                        extra={
                            "timing": {
                                "engine_seconds": dict(
                                    sorted(outcome.engine_seconds.items())
                                )
                            }
                        },
                    )
                    failure.saved_paths.append(str(path))
                report.failures.append(failure)
    report.elapsed_seconds = sweep_timer.seconds
    return report
