"""DTD model, parsing, graph analysis, and the paper's example DTDs.

A DTD is represented (Sect. 2.1 of the paper) as an extended context-free
grammar ``(Ele, Rg, r)``: a set of element types, a regular expression
content model for each type, and a distinguished root type.  The module also
provides the *DTD graph* abstraction used throughout the translation
algorithms, where nodes are element types and an edge ``A -> B`` exists when
``B`` occurs in the production of ``A``.
"""

from repro.dtd.model import (
    DTD,
    Choice,
    ContentModel,
    Empty,
    Optional,
    Plus,
    Sequence,
    Star,
    TypeRef,
    choice,
    empty,
    opt,
    plus,
    ref,
    seq,
    star,
)
from repro.dtd.graph import DTDGraph
from repro.dtd.parser import parse_dtd
from repro.dtd import samples

__all__ = [
    "DTD",
    "ContentModel",
    "Empty",
    "TypeRef",
    "Sequence",
    "Choice",
    "Star",
    "Plus",
    "Optional",
    "empty",
    "ref",
    "seq",
    "choice",
    "star",
    "plus",
    "opt",
    "DTDGraph",
    "parse_dtd",
    "samples",
]
