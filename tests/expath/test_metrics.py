"""Unit tests for extended XPath operator counting (Table 5 quantities)."""

from repro.expath.ast import (
    ELabel,
    EPathQual,
    EQualified,
    ESlash,
    EStar,
    EUnion,
    EVar,
    Equation,
    ExtendedXPathQuery,
)
from repro.expath.metrics import OperatorCounts, count_operators


class TestExpressionCounts:
    def test_single_label_has_no_operators(self):
        counts = count_operators(ELabel("a"))
        assert counts.total == 0

    def test_slash_and_union_counts(self):
        expr = EUnion(ESlash(ELabel("a"), ELabel("b")), ELabel("c"))
        counts = count_operators(expr)
        assert counts.slashes == 1
        assert counts.unions == 1
        assert counts.total == 2

    def test_star_counts_as_lfp(self):
        expr = EStar(ESlash(ELabel("a"), ELabel("b")))
        counts = count_operators(expr)
        assert counts.stars == 1
        assert counts.lfp == 1
        assert counts.total == 2

    def test_qualifier_counts(self):
        expr = EQualified(ELabel("a"), EPathQual(ESlash(ELabel("b"), ELabel("c"))))
        counts = count_operators(expr)
        assert counts.qualifiers == 1
        assert counts.slashes == 1

    def test_variables_counted_separately(self):
        expr = ESlash(EVar("X"), EVar("Y"))
        counts = count_operators(expr)
        assert counts.variables == 2
        assert counts.total == 1  # only the slash is an operator

    def test_counts_are_additive(self):
        total = OperatorCounts(slashes=1) + OperatorCounts(slashes=2, unions=1)
        assert total.slashes == 3
        assert total.unions == 1


class TestQueryCounts:
    def test_query_sums_equations_and_result(self):
        query = ExtendedXPathQuery(
            [
                Equation("X", ESlash(ELabel("a"), ELabel("b"))),
                Equation("Y", EStar(EVar("X"))),
            ],
            ESlash(ELabel("r"), EVar("Y")),
        )
        counts = count_operators(query)
        assert counts.slashes == 2
        assert counts.stars == 1
        assert counts.total == 3

    def test_variable_reuse_counted_once(self):
        # The whole point of CycleEX: reusing X does not duplicate its operators.
        shared = ESlash(ELabel("a"), ESlash(ELabel("b"), ELabel("c")))
        query = ExtendedXPathQuery(
            [Equation("X", shared)],
            EUnion(EVar("X"), ESlash(EVar("X"), ELabel("d"))),
        )
        counts = count_operators(query)
        assert counts.slashes == 2 + 1  # shared counted once, plus the /d
