"""Benchmark: Fig. 16 (Exp-4a) — the Table 4 cases over BIOML DTD extracts.

All cases run over the same dataset generated from the largest (4-cycle)
BIOML DTD, each translated over its own extracted sub-DTD, exactly as in the
paper.  Expected shape: CycleEX beats SQLGen-R and CycleE on (nearly) every
case, with the gap growing with the number of cycles.
"""

import pytest

from repro.experiments.harness import default_approaches
from repro.relational.executor import Executor
from repro.workloads.queries import BIOML_CASES

APPROACHES = {approach.name: approach for approach in default_approaches()}
CASES = {case.name: case for case in BIOML_CASES}


@pytest.mark.parametrize("case_name", sorted(CASES))
@pytest.mark.parametrize("approach_name", ["R", "E", "X"])
def test_fig16_bioml_cases(benchmark, bioml_dataset, case_name, approach_name):
    _, tree, shredded = bioml_dataset
    case = CASES[case_name]
    case_dtd = case.dtd()
    translator = APPROACHES[approach_name].translator(case_dtd)
    program = translator.translate(case.query).program

    def run():
        return Executor(shredded.database).run(program)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["case"] = case_name
    benchmark.extra_info["query"] = case.query
    benchmark.extra_info["cycles"] = case.cycles
    benchmark.extra_info["approach"] = approach_name
    benchmark.extra_info["result_rows"] = len(result)
