"""The paper's contribution: XPath-to-SQL translation over recursive DTDs.

Modules
-------
``tarjan``
    Algorithm **CycleE** (Fig. 6): Tarjan's path-expression dynamic program
    producing plain regular expressions — the exponential baseline "E".
``cycleex``
    Algorithm **CycleEX** (Fig. 7): the same dynamic program over extended
    XPath *variables*, producing ``rec(A, B)`` equation systems of
    polynomial size — the paper's contribution for the descendant axis.
``xpath_to_expath``
    Algorithm **XPathToEXp** (Fig. 8) with qualifier rewriting **RewQual**
    (Fig. 9): XPath over a (recursive) DTD to extended XPath.
``expath_to_sql``
    Algorithm **EXpToSQL** (Fig. 10): extended XPath to a sequence of
    relational-algebra/SQL queries with the simple LFP operator.
``sqlgen_r``
    The **SQLGen-R** baseline (Krishnamurthy et al., Sect. 3.1): descendant
    axes handled with the SQL'99 multi-relation recursive union.
``optimize``
    Sect. 5.2 optimisations: pushing selections into the LFP operator and
    seeding ``(E)*`` with small relations instead of ``R_id``.
``pipeline``
    The end-to-end translator of Fig. 5 plus convenience query answering.
"""

from repro.core.tarjan import CycleE, cycle_expression
from repro.core.cycleex import CycleEXIndex, rec_query
from repro.core.xpath_to_expath import DescendantStrategy, XPathToExtended, xpath_to_extended
from repro.core.expath_to_sql import ExtendedToSQL, TranslationOptions, extended_to_sql
from repro.core.sqlgen_r import SQLGenR
from repro.core.pipeline import TranslationResult, XPathToSQLTranslator, answer_xpath

__all__ = [
    "CycleE",
    "cycle_expression",
    "CycleEXIndex",
    "rec_query",
    "XPathToExtended",
    "xpath_to_extended",
    "DescendantStrategy",
    "ExtendedToSQL",
    "TranslationOptions",
    "extended_to_sql",
    "SQLGenR",
    "XPathToSQLTranslator",
    "TranslationResult",
    "answer_xpath",
]
