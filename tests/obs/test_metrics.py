"""The metrics registry: instruments, thread-safety, disable, snapshots."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestInstrumentCreation:
    def test_created_on_first_use_and_then_shared(self, registry):
        counter = registry.counter("hits")
        assert counter is registry.counter("hits")
        assert registry.names() == ["hits"]

    def test_name_is_bound_to_its_first_kind(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError, match="Counter"):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")


class TestCounter:
    def test_inc_accumulates(self, registry):
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_concurrent_increments_are_not_lost(self, registry):
        counter = registry.counter("c")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10.0)
        gauge.add(-3.0)
        assert gauge.value == 7.0


class TestHistogram:
    def test_exact_count_sum_min_max(self, registry):
        histogram = registry.histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        snap = histogram._snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert snap["mean"] == 2.5

    def test_percentiles_over_the_window(self, registry):
        histogram = registry.histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(0.50) == pytest.approx(50.0, abs=1.0)
        assert histogram.percentile(0.95) == pytest.approx(95.0, abs=1.0)
        assert histogram.percentile(0.99) == pytest.approx(99.0, abs=1.0)

    def test_reservoir_is_a_sliding_window_but_totals_stay_exact(self, registry):
        histogram = registry.histogram("h", reservoir_size=4)
        for value in range(10):
            histogram.observe(float(value))
        assert histogram.count == 10  # exact, beyond the window
        assert histogram.sum == sum(range(10))
        # Only recent samples remain: the window p50 sits in the upper range.
        assert histogram.percentile(0.50) >= 5.0

    def test_empty_histogram_percentile_is_none(self, registry):
        assert registry.histogram("h").percentile(0.5) is None

    def test_rejects_nonpositive_reservoir(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h", reservoir_size=0)


class TestDisable:
    def test_disabled_registry_records_nothing(self, registry):
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h")
        registry.disable()
        counter.inc()
        gauge.set(5.0)
        histogram.observe(1.0)
        assert counter.value == 0
        assert gauge.value == 0.0
        assert histogram.count == 0
        registry.enable()
        counter.inc()
        assert counter.value == 1


class TestSnapshotAndReset:
    def test_snapshot_is_json_safe_and_typed(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["c"] == {"type": "counter", "value": 2}
        assert snapshot["g"] == {"type": "gauge", "value": 1.5}
        assert snapshot["h"]["type"] == "histogram"
        assert snapshot["h"]["count"] == 1
        assert snapshot["h"]["p50"] == 0.25

    def test_reset_zeroes_but_keeps_instruments(self, registry):
        counter = registry.counter("c")
        counter.inc(7)
        registry.reset()
        assert registry.names() == ["c"]
        assert counter.value == 0


class TestProcessWideRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        replacement = MetricsRegistry()
        previous = obs.set_registry(replacement)
        try:
            assert obs.registry() is replacement
        finally:
            obs.set_registry(previous)
        assert obs.registry() is previous

    def test_facade_reexports_instrument_types(self):
        assert obs.Counter is Counter
        assert obs.Gauge is Gauge
        assert obs.Histogram is Histogram
