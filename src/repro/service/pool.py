"""The multiprocess serving tier: N worker processes behind one facade.

BENCH_3 showed the thread-pool batch path is a dead end for this workload:
translation and the in-memory executor are pure-Python CPU work, so under
the GIL four threads deliver *less* than one (memory-backend "speedup"
<1x).  :class:`ProcessQueryService` breaks that wall the only way CPython
allows — separate processes:

* each worker process is initialized **once** with the DTD text and a
  JSON-safe :class:`~repro.api.EngineConfig` dict, builds its own
  :class:`~repro.service.QueryService` (own warmed
  :class:`~repro.core.plancache.PlanCache`, own prepared document stores,
  own process-local metrics registry), and then answers requests from a
  ``multiprocessing`` queue;
* documents are *sharded*: every document id hashes (together with the DTD
  fingerprint) onto ``replicas`` owning workers, and requests route to an
  owner — stores are rebuilt inside each owner rather than shipped,
  because backends may be process-affine
  (:attr:`~repro.backends.base.Backend.process_affine`);
* worker crashes are detected (per-worker receiver threads notice the
  process dying), the worker is respawned, its documents re-registered
  from the recipes the parent retains — with every retained mutation
  script replayed on top, so live documents recover their updated state —
  and the in-flight request retried once;
* workers ship their metrics ``snapshot(include_reservoirs=True)`` home on
  demand and at shutdown, and :meth:`ProcessQueryService.stats` merges
  them with :func:`repro.obs.merge_snapshots`, so counters and latency
  percentiles stay truthful across the fleet.

Only *recipes* ever cross the process boundary: DTD text, config dicts,
query strings, picklable XML trees or :class:`~repro.fuzz.cases.DocumentSpec`
generator knobs, and plain-data :class:`PoolAnswer` results.  Backends,
connections and caches never do.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import errors as _errors
from repro import obs
from repro.api.config import EngineConfig
from repro.core.plancache import dtd_fingerprint
from repro.dtd.model import DTD
from repro.errors import (
    ConfigError,
    DuplicateDocumentError,
    MutationError,
    ReproError,
    SessionClosedError,
    UnknownDocumentError,
    WorkerCrashError,
    WorkerError,
)
from repro.fuzz.cases import DocumentSpec
from repro.live.mutations import mutation_to_dict
from repro.xmltree.tree import XMLTree

__all__ = ["PoolAnswer", "ProcessQueryService", "default_start_method"]


def default_start_method() -> str:
    """``fork`` where the platform offers it (fast startup), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class PoolAnswer:
    """One answered query, reduced to plain picklable data.

    ``node_ids`` are the matched nodes in document order — the field
    equivalence checks compare.  ``labels``/``values`` carry the rendered
    nodes when the request asked for them (``include_nodes=True``) and are
    ``None`` otherwise, keeping high-volume benchmark traffic lean.
    """

    document_id: str
    query: str
    node_ids: Tuple[int, ...]
    labels: Optional[Tuple[str, ...]]
    values: Optional[Tuple[Optional[str], ...]]
    elapsed_seconds: float
    worker: int

    @property
    def count(self) -> int:
        """Number of matched nodes."""
        return len(self.node_ids)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (the HTTP front end's response body)."""
        payload: Dict[str, Any] = {
            "document": self.document_id,
            "query": self.query,
            "count": self.count,
            "node_ids": list(self.node_ids),
            "elapsed_seconds": self.elapsed_seconds,
            "worker": self.worker,
        }
        if self.labels is not None:
            payload["labels"] = list(self.labels)
        if self.values is not None:
            payload["values"] = list(self.values)
        return payload


# ---------------------------------------------------------------------------
# Worker process side
# ---------------------------------------------------------------------------


def _answer_one(service, worker_index, document_id, query, include_nodes):
    start = time.perf_counter()
    nodes = service.answer(query, document_id)
    elapsed = time.perf_counter() - start
    obs.registry().histogram("worker.answer_seconds").observe(elapsed)
    return PoolAnswer(
        document_id=document_id,
        query=str(query),
        node_ids=tuple(node.node_id for node in nodes),
        labels=tuple(node.label for node in nodes) if include_nodes else None,
        values=tuple(node.value for node in nodes) if include_nodes else None,
        elapsed_seconds=elapsed,
        worker=worker_index,
    )


def _worker_main(
    worker_index: int,
    dtd_text: str,
    dtd_name: str,
    config_dict: Dict[str, Any],
    warmup: Tuple[str, ...],
    request_queue,
    response_queue,
) -> None:
    """The worker loop: one process-local engine, requests in, answers out.

    Must stay a module-level function — ``spawn`` pickles the target by
    qualified name and re-imports this module in the child.
    """
    from repro.dtd.parser import parse_dtd
    from repro.service.service import QueryService

    # A fresh process-local registry: under fork the child would otherwise
    # inherit (and double-count) every metric the parent recorded.
    obs.set_registry(obs.MetricsRegistry())
    registry = obs.registry()
    registry.counter("worker.starts").inc()
    registry.gauge("worker.pid").set(os.getpid())
    dtd = parse_dtd(dtd_text, name=dtd_name)
    service = QueryService(dtd, config=EngineConfig.from_dict(config_dict))
    for query in warmup:
        try:
            service.plan(query)
        except ReproError:
            pass  # warmup is best-effort; real requests report real errors
    while True:
        message = request_queue.get()
        kind, request_id = message[0], message[1]
        if kind == "shutdown":
            response_queue.put(
                (request_id, "ok", registry.snapshot(include_reservoirs=True))
            )
            break
        try:
            if kind == "register_tree":
                document_id, tree = message[2], message[3]
                service.register_document(document_id, tree)
                registry.gauge("worker.documents").add(1)
                payload: Any = document_id
            elif kind == "register_spec":
                document_id, spec = message[2], message[3]
                service.register_document(document_id, spec.generate(dtd))
                registry.gauge("worker.documents").add(1)
                payload = document_id
            elif kind == "answer":
                document_id, query, include_nodes = message[2:5]
                payload = _answer_one(
                    service, worker_index, document_id, query, include_nodes
                )
            elif kind == "batch":
                document_id, queries, include_nodes = message[2:5]
                payload = [
                    _answer_one(
                        service, worker_index, document_id, query, include_nodes
                    )
                    for query in queries
                ]
            elif kind == "update":
                document_id, script = message[2], message[3]
                payload = service.update_document(script, document_id)
            elif kind == "snapshot":
                payload = registry.snapshot(include_reservoirs=True)
            else:
                raise ValueError(f"unknown pool message kind {kind!r}")
        except BaseException as exc:  # ship *every* failure home
            response_queue.put((request_id, "error", type(exc).__name__, str(exc)))
        else:
            response_queue.put((request_id, "ok", payload))
    service.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _Pending:
    """One awaited response slot."""

    __slots__ = ("event", "outcome")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.outcome: Optional[Tuple[str, ...]] = None


class _Worker:
    """Parent-side handle: process + queues + receiver thread + pending map."""

    __slots__ = (
        "index",
        "process",
        "request_queue",
        "response_queue",
        "pending",
        "lock",
        "failed",
        "stopped",
        "final_snapshot",
        "receiver",
    )

    def __init__(self, index: int, context, target_args) -> None:
        self.index = index
        self.request_queue = context.Queue()
        self.response_queue = context.Queue()
        self.pending: Dict[int, _Pending] = {}
        self.lock = threading.Lock()
        self.failed = False
        self.stopped = False
        self.final_snapshot: Optional[Dict[str, Any]] = None
        self.process = context.Process(
            target=_worker_main,
            args=(index, *target_args, self.request_queue, self.response_queue),
            daemon=True,
            name=f"repro-pool-worker-{index}",
        )
        self.process.start()
        self.receiver = threading.Thread(
            target=self._receive_loop, daemon=True, name=f"repro-pool-recv-{index}"
        )
        self.receiver.start()

    def _receive_loop(self) -> None:
        while True:
            try:
                message = self.response_queue.get(timeout=0.05)
            except queue.Empty:
                if self.stopped and not self.pending:
                    return
                if not self.process.is_alive():
                    self._fail_all()
                    return
                continue
            request_id, status = message[0], message[1]
            with self.lock:
                pending = self.pending.pop(request_id, None)
            if pending is not None:
                pending.outcome = message[1:]
                pending.event.set()

    def _fail_all(self) -> None:
        with self.lock:
            self.failed = True
            pending, self.pending = dict(self.pending), {}
        for slot in pending.values():
            slot.outcome = (
                "error",
                "WorkerCrashError",
                f"pool worker {self.index} (pid {self.process.pid}) died "
                f"with exit code {self.process.exitcode}",
            )
            slot.event.set()

    def submit(self, request_id: int, message: Tuple[Any, ...]) -> _Pending:
        pending = _Pending()
        with self.lock:
            if self.failed or self.stopped:
                raise WorkerCrashError(
                    f"pool worker {self.index} is not running"
                )
            self.pending[request_id] = pending
        self.request_queue.put(message)
        return pending


class ProcessQueryService:
    """Answer XPath queries from a pool of worker processes.

    Parameters
    ----------
    dtd:
        The DTD every worker is initialized with (shipped as text).
    config:
        The :class:`~repro.api.EngineConfig` each worker builds its
        :class:`~repro.service.QueryService` from (shipped as its JSON
        dict).  Defaults to ``EngineConfig()``.
    workers:
        Pool size; defaults to the machine's CPU count (capped at 4 so the
        zero-config default stays polite on large hosts).
    replicas:
        How many workers own (and can answer for) each document, clamped
        to ``workers``.  ``1`` shards documents disjointly — maximum
        capacity; ``replicas == workers`` puts every document everywhere —
        maximum parallelism for single-document traffic (what the serving
        benchmark measures).
    start_method:
        ``fork``/``spawn``/``forkserver``; default
        :func:`default_start_method`.
    warmup:
        Queries each worker translates at initialization (and again after
        a respawn), so first requests hit a warm plan cache.
    """

    def __init__(
        self,
        dtd: DTD,
        config: Optional[EngineConfig] = None,
        workers: Optional[int] = None,
        replicas: int = 1,
        start_method: Optional[str] = None,
        warmup: Sequence[str] = (),
    ) -> None:
        if workers is None:
            workers = max(1, min(4, os.cpu_count() or 1))
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        self._dtd = dtd
        self._config = config or EngineConfig()
        self._replicas = min(replicas, workers)
        self._start_method = start_method or default_start_method()
        self._context = multiprocessing.get_context(self._start_method)
        self._warmup = tuple(str(query) for query in warmup)
        self._fingerprint = dtd_fingerprint(dtd)
        self._target_args = (
            dtd.to_text(),
            dtd.name,
            self._config.to_dict(),
            self._warmup,
        )
        # document id -> (payload kind, payload, owner worker indices)
        self._documents: "OrderedDict[str, Tuple[str, Any, Tuple[int, ...]]]"
        self._documents = OrderedDict()
        # document id -> applied mutation scripts (JSON-safe dicts), in
        # order.  Retained for the document's lifetime: a respawned worker
        # replays registration first, then these scripts, so its rebuilt
        # store converges on the same live state as the surviving replicas.
        self._mutation_log: Dict[str, List[List[Dict[str, Any]]]] = {}
        self._request_ids = itertools.count(1)
        self._lock = threading.Lock()  # guards workers list + registry + close
        self._closed = False
        self._final_snapshots: List[Dict[str, Any]] = []
        self._metrics = obs.MetricsRegistry()  # parent-side, pool-local
        self._workers: List[_Worker] = [
            _Worker(index, self._context, self._target_args)
            for index in range(workers)
        ]

    # -- introspection -----------------------------------------------------------

    @property
    def dtd(self) -> DTD:
        """The DTD the pool answers queries over."""
        return self._dtd

    @property
    def config(self) -> EngineConfig:
        """The configuration every worker engine runs under."""
        return self._config

    @property
    def workers(self) -> int:
        """Number of worker processes."""
        return len(self._workers)

    @property
    def start_method(self) -> str:
        """The multiprocessing start method workers launch with."""
        return self._start_method

    def document_ids(self) -> List[str]:
        """Ids of all registered documents, in registration order."""
        with self._lock:
            return list(self._documents)

    def owners(self, document_id: str) -> Tuple[int, ...]:
        """The worker indices holding ``document_id``'s store."""
        with self._lock:
            try:
                return self._documents[document_id][2]
            except KeyError:
                raise UnknownDocumentError(
                    f"unknown document {document_id!r}"
                ) from None

    # -- registration ------------------------------------------------------------

    def _owner_indices(self, document_id: str) -> Tuple[int, ...]:
        digest = hashlib.sha256(
            f"{self._fingerprint}:{document_id}".encode("utf-8")
        ).hexdigest()
        base = int(digest, 16) % len(self._workers)
        return tuple(
            (base + offset) % len(self._workers) for offset in range(self._replicas)
        )

    def _register(self, document_id: str, kind: str, payload: Any) -> Tuple[int, ...]:
        self._check_open()
        with self._lock:
            if document_id in self._documents:
                raise DuplicateDocumentError(
                    f"document {document_id!r} is already registered"
                )
        owner_indices = self._owner_indices(document_id)
        for index in owner_indices:
            self._call(index, kind, document_id, payload)
        with self._lock:
            self._documents[document_id] = (kind, payload, owner_indices)
        self._metrics.gauge("pool.documents").add(1)
        return owner_indices

    def register_document(self, document_id: str, tree: XMLTree) -> Tuple[int, ...]:
        """Ship ``tree`` to its owning workers; returns the owner indices."""
        return self._register(document_id, "register_tree", tree)

    def register_generated(
        self, document_id: str, spec: Optional[DocumentSpec] = None
    ) -> Tuple[int, ...]:
        """Register a document by *recipe*: owners regenerate it locally.

        Cheaper than shipping a tree (five ints cross the queue) and the
        form crash-recovery re-registration always uses for spec documents.
        """
        return self._register(document_id, "register_spec", spec or DocumentSpec())

    # -- live updates ------------------------------------------------------------

    def update_document(
        self,
        mutations: Sequence[Any],
        document_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Apply a mutation script to *every* replica owning the document.

        Mutations may be :mod:`repro.live.mutations` records or their JSON
        object forms; the script crosses the queue as plain dicts.  Replica
        consistency holds because workers are deterministic: every owner
        starts from the same registered document and applies the same
        scripts in the same order (updates on one pool serialize through
        this method), so even a script that fails validation mid-way fails
        identically everywhere, leaving every replica with the same applied
        prefix.  The script is appended to the retained mutation log either
        way — a respawned owner replays registration plus the log and
        converges on the same state.

        Returns the last owner's summary dict plus the owner indices.
        """
        self._check_open()
        document_id = self._resolve_document(document_id)
        script: List[Dict[str, Any]] = [
            mutation if isinstance(mutation, dict) else mutation_to_dict(mutation)
            for mutation in mutations
        ]
        owner_indices = self.owners(document_id)
        start = time.perf_counter()
        summary: Dict[str, Any] = {}
        failure: Optional[MutationError] = None
        for index in owner_indices:
            try:
                summary = self._call(index, "update", document_id, script)
            except MutationError as exc:
                failure = exc
        with self._lock:
            self._mutation_log.setdefault(document_id, []).append(script)
        self._metrics.counter("pool.updates").inc()
        self._metrics.histogram("pool.update_seconds").observe(
            time.perf_counter() - start
        )
        if failure is not None:
            raise failure
        summary = dict(summary)
        summary["workers"] = list(owner_indices)
        return summary

    # -- request plumbing --------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("process query service is closed")

    def _raise_remote(self, outcome: Tuple[str, ...]) -> None:
        _, name, message = outcome
        if name == "WorkerCrashError":
            raise WorkerCrashError(message)
        exc_class = getattr(_errors, name, None)
        if isinstance(exc_class, type) and issubclass(exc_class, ReproError):
            raise exc_class(message)
        raise WorkerError(f"{name} in pool worker: {message}")

    def _request(self, worker: _Worker, kind: str, *rest: Any) -> Any:
        request_id = next(self._request_ids)
        pending = worker.submit(request_id, (kind, request_id, *rest))
        self._metrics.counter("pool.requests").inc()
        pending.event.wait()
        outcome = pending.outcome
        assert outcome is not None
        if outcome[0] == "ok":
            return outcome[1]
        self._raise_remote(outcome)

    def _call(self, worker_index: int, kind: str, *rest: Any) -> Any:
        """Send one request, respawning the worker and retrying once on a crash."""
        for attempt in (0, 1):
            worker = self._workers[worker_index]
            try:
                return self._request(worker, kind, *rest)
            except WorkerCrashError:
                self._metrics.counter("pool.crashes").inc()
                if attempt or self._closed:
                    raise
                self._respawn(worker_index)

    def _respawn(self, worker_index: int) -> None:
        """Replace a dead worker and rebuild its document stores."""
        with self._lock:
            worker = self._workers[worker_index]
            if not worker.failed and worker.process.is_alive():
                return  # another thread already respawned it
            replacement = _Worker(worker_index, self._context, self._target_args)
            self._workers[worker_index] = replacement
            to_restore = [
                (document_id, kind, payload)
                for document_id, (kind, payload, owner_indices) in self._documents.items()
                if worker_index in owner_indices
            ]
            replay_logs = {
                document_id: list(self._mutation_log.get(document_id, ()))
                for document_id, _, _ in to_restore
            }
        self._metrics.counter("pool.respawns").inc()
        for document_id, kind, payload in to_restore:
            self._request(replacement, kind, document_id, payload)
            for script in replay_logs.get(document_id, ()):
                try:
                    self._request(replacement, "update", document_id, script)
                except MutationError:
                    # A script that failed validation originally fails the
                    # same (deterministic) way on replay; its applied prefix
                    # is what keeps the replica consistent.
                    pass

    def _resolve_document(self, document_id: Optional[str]) -> str:
        with self._lock:
            if document_id is None:
                if len(self._documents) == 1:
                    return next(iter(self._documents))
                raise UnknownDocumentError(
                    f"document_id is required: "
                    f"{len(self._documents)} document(s) registered"
                )
            if document_id not in self._documents:
                known = ", ".join(sorted(self._documents)) or "<none>"
                raise UnknownDocumentError(
                    f"unknown document {document_id!r} (registered: {known})"
                )
            return document_id

    # -- answering ---------------------------------------------------------------

    def answer(
        self,
        query: str,
        document_id: Optional[str] = None,
        include_nodes: bool = True,
    ) -> PoolAnswer:
        """Answer one query on a replica of the owning worker set.

        Among replicas the query text picks the worker, so repeated
        identical queries land on the same (result-cache-warm) engine.
        """
        self._check_open()
        document_id = self._resolve_document(document_id)
        owner_indices = self.owners(document_id)
        chosen = owner_indices[
            int(hashlib.sha256(str(query).encode("utf-8")).hexdigest(), 16)
            % len(owner_indices)
        ]
        start = time.perf_counter()
        answer = self._call(chosen, "answer", document_id, str(query), include_nodes)
        self._metrics.histogram("pool.answer_seconds").observe(
            time.perf_counter() - start
        )
        return answer

    def answer_batch(
        self,
        queries: Sequence[str],
        document_id: Optional[str] = None,
        include_nodes: bool = True,
    ) -> List[PoolAnswer]:
        """Answer many queries, fanned out across the document's replicas.

        Queries are chunked round-robin over the owning workers and
        dispatched concurrently; results come back in input order.  One
        queue round-trip per worker (not per query) keeps IPC overhead
        amortized for large batches.
        """
        self._check_open()
        document_id = self._resolve_document(document_id)
        texts = [str(query) for query in queries]
        if not texts:
            return []
        owner_indices = self.owners(document_id)
        chunks: Dict[int, List[Tuple[int, str]]] = {}
        for position, text in enumerate(texts):
            owner = owner_indices[position % len(owner_indices)]
            chunks.setdefault(owner, []).append((position, text))
        results: List[Optional[PoolAnswer]] = [None] * len(texts)

        def run_chunk(owner: int, chunk: List[Tuple[int, str]]) -> None:
            answers = self._call(
                owner, "batch", document_id, [text for _, text in chunk],
                include_nodes,
            )
            for (position, _), answer in zip(chunk, answers):
                results[position] = answer

        start = time.perf_counter()
        if len(chunks) == 1:
            owner, chunk = next(iter(chunks.items()))
            run_chunk(owner, chunk)
        else:
            with ThreadPoolExecutor(max_workers=len(chunks)) as executor:
                futures = [
                    executor.submit(run_chunk, owner, chunk)
                    for owner, chunk in chunks.items()
                ]
                for future in futures:
                    future.result()
        self._metrics.histogram("pool.batch_seconds").observe(
            time.perf_counter() - start
        )
        return results  # type: ignore[return-value]

    # -- observability -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Pool-wide statistics with *merged* worker metrics.

        Live pools broadcast a snapshot request to every worker; closed
        pools merge the final snapshots collected at shutdown.  Either
        way counters sum and histogram percentiles are recomputed over the
        concatenated reservoirs (:func:`repro.obs.merge_snapshots`).
        """
        if self._closed:
            worker_snapshots = list(self._final_snapshots)
        else:
            worker_snapshots = [
                self._call(index, "snapshot") for index in range(len(self._workers))
            ]
        merged = obs.merge_snapshots(
            worker_snapshots + [self._metrics.snapshot(include_reservoirs=True)]
        )
        with self._lock:
            documents = {
                document_id: list(owner_indices)
                for document_id, (_, _, owner_indices) in self._documents.items()
            }
        return {
            "workers": len(self._workers),
            "replicas": self._replicas,
            "start_method": self._start_method,
            "closed": self._closed,
            "documents": documents,
            "metrics": merged,
        }

    # -- lifecycle ---------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Drain and stop every worker, keeping their final metric snapshots."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        for worker in workers:
            try:
                snapshot = self._request(worker, "shutdown")
                self._final_snapshots.append(snapshot)
            except (WorkerCrashError, WorkerError):
                pass  # already dead: nothing to collect
            with worker.lock:
                worker.stopped = True
        for worker in workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=timeout)

    def _kill_worker(self, worker_index: int) -> None:
        """Test hook: kill a worker abruptly (simulates a crash)."""
        self._workers[worker_index].process.kill()
        self._workers[worker_index].process.join(timeout=10)

    def __enter__(self) -> "ProcessQueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ProcessQueryService(dtd={self._dtd.name!r}, "
            f"workers={len(self._workers)}, replicas={self._replicas}, "
            f"start_method={self._start_method!r}, "
            f"documents={self.document_ids()})"
        )
