"""Schema derivation for DTD-based shredding.

``SimpleMapping`` implements the storage layout the paper's translation
algorithms assume (Sect. 2.3): every element type ``A`` maps to a relation
``R_A(F, T, V)`` where each tuple ``(f, t, v)`` is an edge from node ``f``
to an ``A``-node ``t`` with text value ``v`` (``'_'`` when absent, and
``f = '_'`` exactly when ``t`` is the document root).

``shared_inlining`` implements the shared-inlining partitioning of
Shanmugasundaram et al.: the DTD graph is split into subgraphs such that no
subgraph contains a ``*``-labelled edge and every element type belongs to
exactly one subgraph; each subgraph becomes one relation with ``ID``,
``parentId`` (and ``parentCode`` when the subgraph has several possible
parents) plus one value column per inlined text type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.dtd.model import DTD
from repro.dtd.graph import DTDGraph
from repro.errors import ShreddingError
from repro.relational.schema import (
    DOC_ORDER,
    DatabaseSchema,
    NODE_COLUMNS,
    ORDER_COLUMNS,
    RelationSchema,
)

__all__ = [
    "ROOT_PARENT",
    "MISSING_VALUE",
    "SimpleMapping",
    "InlinedRelation",
    "InliningPartition",
    "shared_inlining",
]

# Sentinels used in stored tuples, following the paper's convention.
ROOT_PARENT = "_"
MISSING_VALUE = "_"


class SimpleMapping:
    """The simplified per-element-type mapping ``tau: A -> R_A(F, T, V)``.

    Parameters
    ----------
    dtd:
        The DTD being mapped.
    prefix:
        Prefix of generated relation names (default ``"R_"``), so element
        type ``course`` maps to relation ``R_course``.
    """

    def __init__(self, dtd: DTD, prefix: str = "R_") -> None:
        self._dtd = dtd
        self._prefix = prefix
        self._relations: Dict[str, str] = {
            element_type: f"{prefix}{element_type}" for element_type in dtd.element_types
        }

    @property
    def dtd(self) -> DTD:
        """The mapped DTD."""
        return self._dtd

    def relation_for(self, element_type: str) -> str:
        """Relation name storing nodes of ``element_type``."""
        try:
            return self._relations[element_type]
        except KeyError:
            raise ShreddingError(f"unknown element type {element_type!r}") from None

    def element_for(self, relation: str) -> str:
        """Inverse lookup: the element type stored in ``relation``."""
        for element_type, name in self._relations.items():
            if name == relation:
                return element_type
        raise ShreddingError(f"unknown relation {relation!r}")

    def relation_names(self) -> List[str]:
        """All generated relation names (root's relation first)."""
        return [self._relations[t] for t in self._dtd.element_types]

    def database_schema(self) -> DatabaseSchema:
        """Build the :class:`DatabaseSchema` for this mapping.

        Besides one ``R_A(F, T, V)`` relation per element type, the schema
        carries the ``DOC_ORDER(T, PRE, POST, SIZE)`` side relation holding
        the interval (pre/post) node numbering; it is deliberately not a
        node relation, so ``R_id`` and the ``ALL_NODES`` view are unchanged.
        """
        schemas = [
            RelationSchema(self._relations[t], NODE_COLUMNS) for t in self._dtd.element_types
        ]
        node_names = [s.name for s in schemas]
        schemas.append(RelationSchema(DOC_ORDER, ORDER_COLUMNS))
        return DatabaseSchema(
            schemas,
            node_relations=node_names,
            element_relations=dict(self._relations),
        )

    def __repr__(self) -> str:
        return f"SimpleMapping(dtd={self._dtd.name!r}, relations={len(self._relations)})"


@dataclass
class InlinedRelation:
    """One relation of a shared-inlining schema.

    Attributes
    ----------
    name:
        Relation name.
    head:
        The element type heading the subgraph (owns the ``ID`` column).
    members:
        All element types stored in this relation (head included); each
        member's node is represented by the head row it is inlined into.
    value_columns:
        Mapping from member text types to their value column name.
    has_parent_code:
        True when several element types can be the parent of the head, in
        which case a ``parentCode`` column disambiguates.
    """

    name: str
    head: str
    members: List[str]
    value_columns: Dict[str, str]
    has_parent_code: bool

    def columns(self) -> Tuple[str, ...]:
        cols = ["ID", "parentId"]
        if self.has_parent_code:
            cols.append("parentCode")
        cols.extend(self.value_columns[m] for m in self.members if m in self.value_columns)
        return tuple(cols)

    def schema(self) -> RelationSchema:
        """The :class:`RelationSchema` of this relation."""
        return RelationSchema(self.name, self.columns())


@dataclass
class InliningPartition:
    """The result of shared inlining: relations plus the member assignment."""

    dtd: DTD
    relations: List[InlinedRelation]
    relation_of: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.relation_of:
            for relation in self.relations:
                for member in relation.members:
                    self.relation_of[member] = relation.name

    def relation_for(self, element_type: str) -> InlinedRelation:
        """Return the relation holding ``element_type``."""
        name = self.relation_of.get(element_type)
        if name is None:
            raise ShreddingError(f"element type {element_type!r} is not mapped")
        for relation in self.relations:
            if relation.name == name:
                return relation
        raise ShreddingError(f"relation {name!r} missing from partition")

    def database_schema(self) -> DatabaseSchema:
        """Build a :class:`DatabaseSchema` for the inlined layout."""
        return DatabaseSchema(
            [relation.schema() for relation in self.relations],
            node_relations=[],
            element_relations={
                element_type: name for element_type, name in self.relation_of.items()
            },
        )


def _subgraph_heads(dtd: DTD) -> Set[str]:
    """Element types that head their own relation under shared inlining."""
    graph = DTDGraph(dtd)
    heads: Set[str] = {dtd.root}
    for spec in dtd.edges():
        if spec.starred:
            heads.add(spec.child)
    for element_type in dtd.element_types:
        if len(dtd.parents(element_type)) > 1:
            heads.add(element_type)
    # Any type on a cycle must head a relation, otherwise inlining would not
    # terminate (recursive DTDs are exactly why the paper needs the LFP).
    heads |= dtd.recursive_types()
    return heads


def shared_inlining(dtd: DTD, prefix: str = "R") -> InliningPartition:
    """Partition the DTD into inlining subgraphs and derive their relations.

    Mirrors the description in Sect. 2.3: no ``*``-edge appears inside a
    subgraph, every element type belongs to exactly one subgraph, subgraph
    heads carry ``ID``/``parentId`` keys, and heads reachable from more than
    one other subgraph get a ``parentCode`` column.
    """
    heads = _subgraph_heads(dtd)
    members: Dict[str, List[str]] = {head: [head] for head in heads}

    def owner_of(element_type: str) -> str:
        # Walk up through non-head parents; the simple mapping guarantees a
        # unique non-starred parent chain for non-head types.
        current = element_type
        seen: Set[str] = set()
        while current not in heads:
            parents = dtd.parents(current)
            if not parents:
                raise ShreddingError(
                    f"element type {current!r} has no parent and is not a subgraph head"
                )
            if current in seen:
                raise ShreddingError(f"cycle through non-head type {current!r}")
            seen.add(current)
            current = parents[0]
        return current

    for element_type in dtd.element_types:
        if element_type in heads:
            continue
        members[owner_of(element_type)].append(element_type)

    relations: List[InlinedRelation] = []
    for head in sorted(members, key=lambda h: (h != dtd.root, h)):
        member_list = members[head]
        value_columns = {
            member: (member if member != "ID" else f"{member}_val")
            for member in member_list
            if member in dtd.text_types
        }
        has_parent_code = len(dtd.parents(head)) > 1
        relations.append(
            InlinedRelation(
                name=f"{prefix}_{head}",
                head=head,
                members=member_list,
                value_columns=value_columns,
                has_parent_code=has_parent_code,
            )
        )
    return InliningPartition(dtd=dtd, relations=relations)
