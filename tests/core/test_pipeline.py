"""Unit/integration tests for the end-to-end translation pipeline."""

import pytest

from repro.core.optimize import push_selection_options, standard_options
from repro.core.pipeline import XPathToSQLTranslator, answer_xpath
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd import samples
from repro.relational.sqlgen import SQLDialect
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath


class TestTranslationResult:
    def test_artifacts_present(self, dept_dtd):
        translator = XPathToSQLTranslator(dept_dtd)
        result = translator.translate("dept//project")
        assert result.xpath == parse_xpath("dept//project")
        assert len(result.program) > 0
        assert result.translation_seconds >= 0
        assert result.operator_profile().lfps >= 1
        assert result.extended_operator_counts().total > 0

    def test_sql_rendering_in_all_dialects(self, dept_dtd):
        translator = XPathToSQLTranslator(dept_dtd)
        result = translator.translate("dept//project")
        for dialect in SQLDialect:
            sql = result.sql(dialect)
            assert "R_project" in sql

    def test_string_and_ast_inputs_agree(self, dept_dtd):
        translator = XPathToSQLTranslator(dept_dtd)
        via_string = translator.translate("dept//project")
        via_ast = translator.translate(parse_xpath("dept//project"))
        assert str(via_string.program) == str(via_ast.program)

    def test_to_extended_exposes_step_one(self, dept_dtd):
        translator = XPathToSQLTranslator(dept_dtd)
        extended = translator.to_extended("dept//project")
        assert "project" in str(extended)

    def test_lower_extended_exposes_step_two(self, dept_dtd):
        translator = XPathToSQLTranslator(dept_dtd)
        program = translator.lower_extended(translator.to_extended("dept//project"))
        assert len(program) > 0


class TestQueryAnswering:
    QUERIES = [
        "dept//project",
        "dept/course[not //project]",
        "dept//student/qualified//course/cno",
        'dept//course[cno = "cno-2"]',
    ]

    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("strategy", list(DescendantStrategy))
    def test_invariant_q_of_t_equals_qprime_of_taud_t(
        self, query, strategy, dept_dtd, dept_tree, dept_shredded
    ):
        """The central invariant: Q(T) = Q'(tau_d(T))."""
        translator = XPathToSQLTranslator(dept_dtd, strategy=strategy)
        via_sql = {n.node_id for n in translator.answer(query, dept_shredded)}
        via_oracle = {n.node_id for n in evaluate_xpath(dept_tree, parse_xpath(query))}
        assert via_sql == via_oracle

    def test_answer_xpath_one_shot_helper(self, dept_dtd, dept_tree):
        nodes = answer_xpath("dept//project", dept_tree, dept_dtd)
        expected = evaluate_xpath(dept_tree, parse_xpath("dept//project"))
        assert [n.node_id for n in nodes] == [n.node_id for n in expected]

    def test_lazy_and_eager_execution_agree(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        lazy = {n.node_id for n in translator.answer("dept//project", dept_shredded, lazy=True)}
        eager = {n.node_id for n in translator.answer("dept//project", dept_shredded, lazy=False)}
        assert lazy == eager

    def test_execute_returns_stats(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        relation, stats = translator.execute("dept//project", dept_shredded)
        assert stats.elapsed_seconds >= 0
        assert relation.columns == ("F", "T", "V")

    def test_options_do_not_change_answers(self, dept_dtd, dept_tree, dept_shredded):
        expected = {
            n.node_id for n in evaluate_xpath(dept_tree, parse_xpath("dept//project"))
        }
        for options in (standard_options(), push_selection_options()):
            translator = XPathToSQLTranslator(dept_dtd, options=options)
            got = {n.node_id for n in translator.answer("dept//project", dept_shredded)}
            assert got == expected

    def test_cross_dtd_queries(self, cross_dtd, cross_tree, cross_shredded):
        for query in ("a/b//c/d", "a[not //c or (b and //d)]", "a//d"):
            translator = XPathToSQLTranslator(cross_dtd)
            via_sql = {n.node_id for n in translator.answer(query, cross_shredded)}
            via_oracle = {
                n.node_id for n in evaluate_xpath(cross_tree, parse_xpath(query))
            }
            assert via_sql == via_oracle, query
