"""The live-update benchmark: incremental deltas vs full re-registration.

One harness feeds both ``repro bench-updates`` and
``benchmarks/test_bench_updates.py`` (which writes the repo's baseline
``BENCH_8.json``), so the CLI smoke run in CI and the asserted benchmark
measure the same scenario.

For every paper workload (dept, cross, gedml) and backend, two services
answer the same warm query set and absorb the same mutation scripts:

* the **incremental** service routes each script through
  :meth:`~repro.service.QueryService.update_document` — DTD validation,
  a merged :class:`~repro.live.delta.ShredDelta`, ``Backend.apply_delta``
  and result-cache invalidation — then re-answers every query;
* the **full** service pays the pre-live path for the same change: apply
  the script to the tree, drop the store (``unregister_document``) and
  re-register, re-shredding the whole document and rebuilding the backend,
  then re-answer every query.

Both arms must return identical node ids every round, and the final
incremental tree must answer exactly like the XPath evaluator
(``results_match``) — an update path that got faster by diverging must
fail loudly.
"""

from __future__ import annotations

import gc
import itertools
import json
import random
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.live.fuzzer import MutationGenConfig, RandomMutationGenerator
from repro.live.mutations import DocumentMutator
from repro.service.bench import ServiceBenchConfig, _workloads
from repro.service.service import QueryService
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath

__all__ = [
    "UpdateBenchConfig",
    "run_update_benchmark",
    "write_report",
    "describe_report",
]

BENCH_NAME = "live-updates"
BENCH_ISSUE = 10


@dataclass(frozen=True)
class UpdateBenchConfig:
    """Knobs of one benchmark run (the defaults are the committed baseline)."""

    elements: int = 2000
    rounds: int = 5
    mutations_per_round: int = 8
    # Queries re-answered inside each round's timed section (round-robin
    # over the workload set) — the working set a serving tier re-answers
    # right after an update.  Correctness is still checked over the full
    # query set every round, outside the timers.
    queries_per_round: int = 2
    seed: int = 11
    backends: Tuple[str, ...] = ("memory", "sqlite")

    @classmethod
    def quick(cls) -> "UpdateBenchConfig":
        """A tiny-budget configuration for CI smoke runs."""
        return cls(elements=300, rounds=2, mutations_per_round=4, queries_per_round=2)


def _node_ids(nodes) -> Tuple[int, ...]:
    return tuple(node.node_id for node in nodes)


def _bench_workload(
    config: UpdateBenchConfig, label: str, dtd, queries: Dict[str, str], tree, backend: str
) -> Dict[str, object]:
    """One (workload, backend) cell: timed rounds of update + warm re-query."""
    rng = random.Random(config.seed)
    generator = RandomMutationGenerator(
        dtd, rng, MutationGenConfig(mutations=config.mutations_per_round)
    )
    # ``shadow`` is the state both arms must track; scripts are generated
    # against it, and it doubles as the full arm's re-registered tree.
    shadow = tree.copy()
    query_list = list(queries.values())

    with QueryService(dtd, backend=backend) as incremental, QueryService(
        dtd, backend=backend
    ) as full:
        incremental.register_document(label, tree.copy())
        full.register_document(label, shadow)
        for query in query_list:  # warm plans, prepared programs, result LRUs
            incremental.answer(query, document_id=label)
            full.answer(query, document_id=label)

        incremental_update_seconds = 0.0
        incremental_requery_seconds = 0.0
        full_update_seconds = 0.0
        full_requery_seconds = 0.0
        mutations_applied = 0
        rounds_match = True
        requery = itertools.cycle(query_list)
        for round_index in range(config.rounds):
            script = generator.script(shadow)
            if not script:
                continue
            mutations_applied += len(script)
            round_queries = [next(requery) for _ in range(config.queries_per_round)]

            def run_incremental() -> None:
                nonlocal incremental_update_seconds, incremental_requery_seconds
                # Collect first so allocator debt from the previous phase is
                # not billed to whichever arm happens to run next.
                gc.collect()
                start = time.perf_counter()
                incremental.update_document(script, label)
                mid = time.perf_counter()
                for query in round_queries:
                    incremental.answer(query, document_id=label)
                incremental_update_seconds += mid - start
                incremental_requery_seconds += time.perf_counter() - mid

            def run_full() -> None:
                # The full arm pays the pre-live path for the same change:
                # tree edit, then re-shred everything by dropping and
                # re-registering.
                nonlocal full_update_seconds, full_requery_seconds
                gc.collect()
                start = time.perf_counter()
                DocumentMutator(shadow, dtd).apply_script(script)
                full.unregister_document(label)
                full.register_document(label, shadow)
                mid = time.perf_counter()
                for query in round_queries:
                    full.answer(query, document_id=label)
                full_update_seconds += mid - start
                full_requery_seconds += time.perf_counter() - mid

            # Alternate which arm goes first: the round's first cold run pays
            # a measurable warm-up penalty, and pinning it to one arm skews
            # the comparison.
            if round_index % 2 == 0:
                run_incremental()
                run_full()
            else:
                run_full()
                run_incremental()

            incremental_answers = [
                _node_ids(incremental.answer(query, document_id=label))
                for query in query_list
            ]
            full_answers = [
                _node_ids(full.answer(query, document_id=label))
                for query in query_list
            ]
            rounds_match = rounds_match and incremental_answers == full_answers

        # Final ground-truth check: the incrementally-maintained store must
        # answer exactly like the evaluator on the mutated tree.
        final_tree = incremental.store(label).shredded.tree
        evaluator_match = all(
            _node_ids(incremental.answer(query, document_id=label))
            == _node_ids(
                sorted(
                    evaluate_xpath(final_tree, parse_xpath(query)),
                    key=lambda node: node.node_id,
                )
            )
            for query in query_list
        )

    incremental_seconds = incremental_update_seconds + incremental_requery_seconds
    full_seconds = full_update_seconds + full_requery_seconds
    return {
        "workload": label,
        "backend": backend,
        "document_elements": tree.size(),
        "queries": len(query_list),
        "rounds": config.rounds,
        "mutations_applied": mutations_applied,
        "incremental_seconds": incremental_seconds,
        "incremental_update_seconds": incremental_update_seconds,
        "incremental_requery_seconds": incremental_requery_seconds,
        "full_seconds": full_seconds,
        "full_update_seconds": full_update_seconds,
        "full_requery_seconds": full_requery_seconds,
        "speedup": full_seconds / incremental_seconds
        if incremental_seconds
        else float("inf"),
        # The update operation in isolation: ShredDelta + apply_delta vs
        # tree edit + full re-shred + backend rebuild.  This is the number
        # the incremental path exists to improve; ``speedup`` also includes
        # the warm re-query time both arms share.
        "update_speedup": full_update_seconds / incremental_update_seconds
        if incremental_update_seconds
        else float("inf"),
        "results_match": rounds_match and evaluator_match,
    }


def run_update_benchmark(config: Optional[UpdateBenchConfig] = None) -> Dict[str, object]:
    """Run every (workload, backend) cell and return the report."""
    config = config or UpdateBenchConfig()
    service_config = ServiceBenchConfig(elements=config.elements, seed=config.seed)
    cells: List[Dict[str, object]] = []
    for label, dtd, queries, tree in _workloads(service_config):
        for backend in config.backends:
            cells.append(
                _bench_workload(config, label, dtd, queries, tree, backend)
            )
    report: Dict[str, object] = {
        "bench": BENCH_NAME,
        "issue": BENCH_ISSUE,
        "created_unix": int(time.time()),
        "config": asdict(config),
        "scenarios": {"update_vs_reregister": cells},
        "ok": all(cell["results_match"] for cell in cells),
    }
    return report


def write_report(report: Dict[str, object], path: str) -> None:
    """Write a report as pretty-printed JSON (the ``BENCH_8.json`` format)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def describe_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a report (the CLI output)."""
    lines = [
        f"live-update benchmark ({report['bench']}, "
        f"{report['config']['elements']} elements, "
        f"{report['config']['rounds']} round(s) of "
        f"{report['config']['mutations_per_round']} mutation(s))"
    ]
    for cell in report["scenarios"]["update_vs_reregister"]:
        lines.append(
            f"  {cell['workload']}/{cell['backend']}: "
            f"incremental {cell['incremental_seconds']:.3f}s "
            f"vs full re-register {cell['full_seconds']:.3f}s "
            f"({cell['speedup']:.1f}x overall, "
            f"{cell['update_speedup']:.1f}x on the update itself, "
            f"{cell['mutations_applied']} mutations)"
        )
    lines.append(f"  results match: {report['ok']}")
    return "\n".join(lines)
