"""The in-memory backend: an adapter over the relational executors."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro import obs
from repro.backends.base import Backend, BackendResult, normalize_rows
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids a cycle)
    from repro.live.delta import ShredDelta
from repro.relational.algebra import Program
from repro.relational.columnar import (
    COLUMNAR_MIN_ROWS,
    DEFAULT_EXECUTOR,
    EXECUTOR_NAMES,
    ColumnarExecutor,
    columnar_store,
)
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.sqlgen import SQLDialect

__all__ = ["MemoryBackend"]


class MemoryBackend(Backend):
    """Execute programs on the pure-Python engines of ``repro.relational``.

    Two executors are available, selected by the ``executor`` option (the
    :attr:`~repro.api.EngineConfig.executor` knob):

    * ``columnar`` (default) — the batched operator-at-a-time engine of
      :mod:`repro.relational.columnar`.  The backend resolves the shared
      dictionary-encoded store up front, so the per-call path only pays for
      operator evaluation.  Databases smaller than
      :data:`~repro.relational.columnar.COLUMNAR_MIN_ROWS` rows are routed
      to the tuple engine instead: dictionary-encoding a handful of rows
      costs more than the batched operators save, which showed up as a
      ~0.9x cold-start regression on tiny fuzz documents (BENCH_6);
    * ``tuple`` — the original row-at-a-time hash-join/LFP engine, kept as
      the differential oracle's baseline arm.

    Every :meth:`execute` call builds a fresh executor over the database,
    so concurrent calls from many threads are lock-free reads — there is no
    shared mutable state outside the append-only columnar store.  The
    database is immutable outside :meth:`apply_delta`, which is the one
    sanctioned mutation route; a database mutated behind the backend's back
    trips the registration-version guard and queries raise
    :class:`~repro.errors.ExecutionError` instead of silently re-encoding.

    Parameters
    ----------
    database:
        The shredded database to execute over.
    lazy:
        Evaluation strategy: lazy/top-down (default, the paper's strategy)
        or eager assignment-by-assignment.
    executor:
        ``"columnar"`` or ``"tuple"`` (see above).
    """

    name = "memory"
    dialect = SQLDialect.GENERIC
    config_options = ("executor",)

    def __init__(
        self, database: Database, lazy: bool = True, executor: str = DEFAULT_EXECUTOR
    ) -> None:
        super().__init__(database)
        self._lazy = lazy
        if executor not in EXECUTOR_NAMES:
            known = ", ".join(sorted(EXECUTOR_NAMES))
            raise ValueError(f"unknown executor {executor!r} (known: {known})")
        self._executor_name = executor
        if executor == "columnar" and database.total_rows() >= COLUMNAR_MIN_ROWS:
            # Encode the store eagerly so the (amortised) dictionary-encoding
            # cost is paid at registration time, not on the first query.
            columnar_store(database)
        # Snapshot of database.version: queries refuse to run against a
        # database mutated behind the backend's back (see apply_delta).
        self._registered_version = database.version

    @property
    def executor(self) -> str:
        """The configured executor name (``columnar`` or ``tuple``)."""
        return self._executor_name

    def _use_columnar(self) -> bool:
        # Cold-start guard: below the threshold the tuple engine wins, and
        # skipping dictionary encoding entirely keeps tiny documents cheap.
        return (
            self._executor_name == "columnar"
            and self._database.total_rows() >= COLUMNAR_MIN_ROWS
        )

    def apply_delta(self, delta: "ShredDelta") -> None:
        """Mutate the backing :class:`Database` in place from a delta.

        Each touched relation is replaced via ``set_relation``, which bumps
        the database version.  When the current columnar store still matches
        the pre-delta version it is patched in place — the shared value
        dictionary and every untouched relation's encoding (and memoized
        join structures) survive — instead of being thrown away and
        re-encoded from scratch on the next query.  The backend's own
        registration snapshot is resynced, so queries keep flowing — this is
        the one sanctioned way to mutate a registered document's database.
        """
        from repro.live.delta import apply_delta_to_database
        from repro.relational.columnar import ColumnarDatabase

        with obs.span(
            "apply_delta",
            backend=self.name,
            relations=len(delta.relations()),
            rows_deleted=delta.delete_count(),
            rows_inserted=delta.insert_count(),
        ):
            store = getattr(self._database, "_columnar_store", None)
            pre_version = self._database.version
            apply_delta_to_database(self._database, delta)
            if (
                isinstance(store, ColumnarDatabase)
                and store.database is self._database
                and store.version == pre_version
            ):
                store.apply_delta(delta, self._database.version)
            self._registered_version = self._database.version

    def _check_not_stale(self) -> None:
        if self._database.version != self._registered_version:
            raise ExecutionError(
                "database mutated since registration "
                f"(version {self._database.version} != registered "
                f"{self._registered_version}); route mutations through "
                "Backend.apply_delta so derived state stays consistent"
            )

    def execute(self, program: Program) -> BackendResult:
        with obs.span("execute", backend=self.name, executor=self._executor_name) as sp:
            self._check_not_stale()
            if self._use_columnar():
                executor = ColumnarExecutor(
                    columnar_store(self._database), lazy=self._lazy
                )
            else:
                executor = Executor(self._database, lazy=self._lazy)
            relation = executor.run(program)
            stats: Dict[str, float] = executor.stats.as_dict()
            stats["rows"] = len(relation)
            sp.set(rows=len(relation))
        return BackendResult(
            backend=self.name,
            columns=tuple(relation.columns),
            rows=normalize_rows(relation.rows),
            stats=stats,
        )
