"""Unit tests for XPath AST utilities."""

from repro.xpath.ast import (
    Descendant,
    Label,
    PathQual,
    Qualified,
    Slash,
    TextEquals,
    Union,
    iter_subpaths,
    path_size,
)
from repro.xpath.parser import parse_xpath


class TestIterSubpaths:
    def test_postorder_for_slash(self):
        query = parse_xpath("a/b")
        nodes = list(iter_subpaths(query))
        assert [str(n) for n in nodes] == ["a", "b", "a/b"]

    def test_includes_qualifier_paths(self):
        query = parse_xpath("a[b/c]")
        rendered = [str(n) for n in iter_subpaths(query)]
        assert "b/c" in rendered
        assert rendered[-1] == "a[b/c]"

    def test_subpaths_precede_parents(self):
        query = parse_xpath("a/b//c[d and not e]")
        nodes = list(iter_subpaths(query))
        positions = {id(node): index for index, node in enumerate(nodes)}
        # Every child sub-path must appear before the whole query.
        whole = positions[id(query)]
        assert whole == len(nodes) - 1

    def test_union_children_visited(self):
        query = parse_xpath("a | b")
        rendered = [str(n) for n in iter_subpaths(query)]
        assert rendered[:2] == ["a", "b"]

    def test_text_qualifier_contributes_no_paths(self):
        query = parse_xpath('a[text() = "x"]')
        rendered = [str(n) for n in iter_subpaths(query)]
        assert rendered == ["a", 'a[text() = "x"]']


class TestPathSize:
    def test_single_label(self):
        assert path_size(Label("a")) == 1

    def test_slash_counts_children(self):
        assert path_size(parse_xpath("a/b/c")) == 5

    def test_qualifier_counts(self):
        # a[b]: Qualified + Label(a) + PathQual + Label(b)
        assert path_size(parse_xpath("a[b]")) == 4
        # a[text()="x"]: Qualified + Label(a) + TextEquals
        assert path_size(parse_xpath('a[text() = "x"]')) == 3

    def test_larger_query(self):
        small = path_size(parse_xpath("a//b"))
        large = path_size(parse_xpath("a//b[c and not d/e]"))
        assert large > small


class TestStringForms:
    def test_slash_descendant_compact_form(self):
        assert str(parse_xpath("a//b")) == "a//b"

    def test_union_parenthesised(self):
        assert str(Union(Label("a"), Label("b"))) == "(a | b)"

    def test_qualified_with_text(self):
        rendered = str(Qualified(Label("a"), TextEquals("x")))
        assert rendered == 'a[text() = "x"]'

    def test_equality_is_structural(self):
        assert parse_xpath("a/b[c]") == parse_xpath("a/b[c]")
        assert parse_xpath("a/b[c]") != parse_xpath("a/b[d]")
