"""Tests for :mod:`repro.live.fuzzer` — script generation and the dual-arm oracle."""

import random

import pytest

from repro.dtd import samples
from repro.fuzz.cases import DocumentSpec, FuzzCase
from repro.live.fuzzer import (
    MutationFuzzConfig,
    MutationGenConfig,
    MutationOracle,
    RandomMutationGenerator,
    run_mutation_fuzz,
)
from repro.live.mutations import DocumentMutator
from repro.xmltree.generator import generate_document
from repro.xmltree.validator import conforms

ALL_SAMPLE_DTDS = sorted(samples.paper_dtds())


class TestRandomMutationGenerator:
    @pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
    def test_scripts_are_schema_valid_on_every_sample_dtd(self, dtd_name):
        dtd = samples.paper_dtds()[dtd_name]
        tree = generate_document(dtd, x_l=7, x_r=3, seed=23, max_elements=150)
        generator = RandomMutationGenerator(dtd, random.Random(5))
        for _ in range(3):
            script = generator.script(tree)
            # The script must apply cleanly (DocumentMutator re-validates
            # every step) and leave a conforming document behind.
            DocumentMutator(tree, dtd).apply_script(script)
            assert conforms(tree, dtd), dtd_name

    def test_scripts_are_deterministic_under_a_seed(self):
        dtd = samples.paper_dtds()["dept"]
        tree = generate_document(dtd, x_l=7, x_r=3, seed=23, max_elements=150)
        one = RandomMutationGenerator(dtd, random.Random(9)).script(tree)
        two = RandomMutationGenerator(dtd, random.Random(9)).script(tree)
        assert one == two

    def test_script_length_respects_config(self):
        dtd = samples.paper_dtds()["dept"]
        tree = generate_document(dtd, x_l=7, x_r=3, seed=23, max_elements=150)
        config = MutationGenConfig(mutations=2)
        script = RandomMutationGenerator(dtd, random.Random(1), config).script(tree)
        assert len(script) <= 2

    def test_generation_does_not_mutate_the_input_tree(self):
        dtd = samples.paper_dtds()["dept"]
        tree = generate_document(dtd, x_l=7, x_r=3, seed=23, max_elements=150)
        before = tree.size()
        RandomMutationGenerator(dtd, random.Random(2)).script(tree)
        assert tree.size() == before


class TestMutationOracle:
    def test_delta_and_scratch_arms_agree_on_a_paper_case(self):
        dtd = samples.paper_dtds()["dept"]
        case0 = FuzzCase(
            label="oracle-probe",
            dtd_text=dtd.to_text(),
            query="dept//project",
            document=DocumentSpec(max_elements=120, seed=3),
        )
        script = RandomMutationGenerator(dtd, random.Random(11)).script(case0.tree())
        assert script, "probe document too constrained to mutate"
        case = FuzzCase(
            label="oracle-probe",
            dtd_text=dtd.to_text(),
            query="dept//project",
            document=DocumentSpec(max_elements=120, seed=3),
            mutations=tuple(script),
        )
        oracle = MutationOracle()
        outcome = oracle.run(case)
        assert outcome.setup_error is None
        assert outcome.ok, [d.engine for d in outcome.disagreements]
        # Every engine answered twice: once per arm.
        assert any(name.endswith("@scratch") for name in outcome.engine_seconds)

    def test_mutation_script_changes_the_answer_set(self):
        """The oracle compares post-mutation answers, not the base document."""
        dtd = samples.paper_dtds()["dept"]
        case0 = FuzzCase(
            label="probe",
            dtd_text=dtd.to_text(),
            query="dept//project",
            document=DocumentSpec(max_elements=120, seed=3),
        )
        tree = case0.tree()
        mutated = case0.mutated_tree()
        assert tree.size() == mutated.size()  # no mutations: same document


class TestRunMutationFuzz:
    def test_fixed_seed_sweep_is_clean_and_reproducible(self):
        config = MutationFuzzConfig(seed=17, budget=4)
        report = run_mutation_fuzz(config)
        again = run_mutation_fuzz(config)
        assert report.cases_run == 4
        assert not report.failures
        assert again.cases_run == report.cases_run
        assert [f.case.label for f in again.failures] == [
            f.case.label for f in report.failures
        ]

    def test_failures_saved_to_corpus_dir(self, tmp_path):
        # A clean sweep writes nothing; the corpus dir stays empty.
        config = MutationFuzzConfig(seed=17, budget=2, corpus_dir=str(tmp_path))
        report = run_mutation_fuzz(config)
        assert not report.failures
        assert list(tmp_path.glob("*.json")) == []
