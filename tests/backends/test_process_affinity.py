"""Process-affinity regression tests for execution backends.

The multiprocess serving tier ships work, never stores: backends declare
whether instances survive a process boundary (``Backend.process_affine``)
and the affine SQLite backend must fail *loudly* — not silently serve an
empty database — when an instance leaks across ``fork``, and refuse
pickling (the ``spawn`` transport) with a clear error.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sys
from pathlib import Path

import pytest

# Spawn-based children import this module by name to unpickle their target
# function; make the repo root importable in the child (pytest's importlib
# mode does not put it on sys.path).
_REPO_ROOT = str(Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from repro.backends.base import Backend
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.dtd import samples
from repro.errors import ExecutionError
from repro.service import QueryService
from repro.xmltree.generator import generate_document


def _available_methods():
    return multiprocessing.get_all_start_methods()


def _make_service(backend: str = "sqlite") -> QueryService:
    dtd = samples.cross_dtd()
    service = QueryService(dtd, backend=backend)
    service.register_document("doc", generate_document(dtd, seed=3))
    return service


class TestAffinityDeclaration:
    def test_sqlite_is_process_affine(self):
        assert SqliteBackend.process_affine is True

    def test_memory_is_not_process_affine(self):
        assert MemoryBackend.process_affine is False

    def test_base_default_is_not_affine(self):
        assert Backend.process_affine is False


class TestPickleRefusal:
    def test_pickling_a_sqlite_backend_raises_clear_execution_error(self):
        service = _make_service("sqlite")
        backend = service.store("doc").backend
        with pytest.raises(ExecutionError, match="rebuild the backend"):
            pickle.dumps(backend)
        service.close()

    def test_memory_backend_still_pickles(self):
        service = _make_service("memory")
        backend = service.store("doc").backend
        clone = pickle.loads(pickle.dumps(backend))
        program = service.plan("a//d").program
        assert clone.execute(program).rows == backend.execute(program).rows
        service.close()


def _fork_child_probe(service, query, queue):
    """Runs in a forked child: the inherited sqlite store must refuse use."""
    try:
        service.answer(query, "doc")
        queue.put(("no-error", None))
    except ExecutionError as exc:
        queue.put(("execution-error", str(exc)))
    except Exception as exc:  # pragma: no cover - diagnostic
        queue.put((type(exc).__name__, str(exc)))


@pytest.mark.skipif("fork" not in _available_methods(), reason="fork unavailable")
class TestForkLeak:
    def test_forked_child_gets_clear_error_not_empty_results(self):
        ctx = multiprocessing.get_context("fork")
        service = _make_service("sqlite")
        assert service.answer("a//d", "doc")  # warm + sanity in the parent
        queue = ctx.Queue()
        # Probe with a query the parent has NOT answered: a warmed query
        # would be served from the (process-agnostic) result cache without
        # ever touching the inherited sqlite connection.
        child = ctx.Process(target=_fork_child_probe, args=(service, "a//c", queue))
        child.start()
        kind, message = queue.get(timeout=30)
        child.join(timeout=30)
        assert kind == "execution-error", (kind, message)
        assert "process-affine" in message
        # The parent's store is untouched by the child's failure.
        assert service.answer("a//d", "doc")
        service.close()


def _spawn_rebuild_worker(dtd_text, dtd_name, tree, query, queue):
    """Runs in a spawned child: rebuild the affine store from shipped inputs.

    This is the worker-initializer discipline the pool uses — ship the DTD
    text and the (picklable) document tree, rebuild the SQLite store
    process-locally, and answer from the rebuilt store.
    """
    from repro.dtd.parser import parse_dtd
    from repro.service import QueryService

    service = QueryService(parse_dtd(dtd_text, name=dtd_name), backend="sqlite")
    service.register_document("doc", tree)
    nodes = service.answer(query, "doc")
    queue.put(sorted(node.node_id for node in nodes))
    service.close()


@pytest.mark.skipif("spawn" not in _available_methods(), reason="spawn unavailable")
class TestSpawnRebuild:
    def test_store_rebuilt_in_spawned_worker_matches_parent(self):
        ctx = multiprocessing.get_context("spawn")
        dtd = samples.cross_dtd()
        tree = generate_document(dtd, seed=3)
        parent = QueryService(dtd, backend="sqlite")
        parent.register_document("doc", tree)
        expected = sorted(node.node_id for node in parent.answer("a//d", "doc"))

        queue = ctx.Queue()
        child = ctx.Process(
            target=_spawn_rebuild_worker,
            args=(dtd.to_text(), dtd.name, tree, "a//d", queue),
        )
        child.start()
        got = queue.get(timeout=60)
        child.join(timeout=60)
        assert got == expected and expected
        parent.close()
