"""Benchmark: incremental live updates vs full re-registration (Issue 10).

Runs the shared harness of :mod:`repro.live.bench` (the same scenario
``repro bench-updates`` measures) and writes ``BENCH_8.json`` at the repo
root, alongside the earlier baselines.

Asserted here (the Issue 10 acceptance bar):

* every round's answers are node-for-node identical between the
  incremental service and the re-registered one, and the final
  incremental store answers exactly like the XPath evaluator on the
  mutated tree (``results_match``) — an update path that got faster by
  diverging must fail loudly;
* the update operation itself (merged delta + ``apply_delta`` + cache
  invalidation vs tree edit + full reshred + backend rebuild) is faster
  on **every** (workload, backend) cell;
* update + warm re-query combined does not lose to full re-registration
  on any cell (with a small timer-noise allowance), and wins on average.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.live.bench import UpdateBenchConfig, run_update_benchmark, write_report

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_8.json"

BENCH_CONFIG = UpdateBenchConfig()

# CI timers are noisy and the combined number includes the re-query time
# both arms share, so the per-cell floor has an allowance; the update-path
# number is the one that must strictly win everywhere.
MIN_CELL_SPEEDUP = 0.85
MIN_UPDATE_SPEEDUP = 1.0


@pytest.fixture(scope="module")
def update_report():
    return run_update_benchmark(BENCH_CONFIG)


def _cells(report):
    return report["scenarios"]["update_vs_reregister"]


def test_writes_bench_8_json(update_report):
    write_report(update_report, str(REPORT_PATH))
    on_disk = json.loads(REPORT_PATH.read_text())
    assert on_disk["bench"] == "live-updates"
    assert on_disk["issue"] == 10
    assert set(on_disk["scenarios"]) == {"update_vs_reregister"}


def test_covers_every_workload_and_backend(update_report):
    cells = {(cell["workload"], cell["backend"]) for cell in _cells(update_report)}
    assert cells == {
        (workload, backend)
        for workload in ("dept", "cross", "gedml")
        for backend in ("memory", "sqlite")
    }


def test_every_cell_returns_identical_results(update_report):
    for cell in _cells(update_report):
        assert cell["results_match"] is True, (cell["workload"], cell["backend"])
    assert update_report["ok"] is True


def test_update_path_beats_full_reshred_on_every_cell(update_report):
    for cell in _cells(update_report):
        assert cell["update_speedup"] > MIN_UPDATE_SPEEDUP, (
            f"{cell['workload']}/{cell['backend']}: update path is only "
            f"{cell['update_speedup']:.2f}x "
            f"(incremental {cell['incremental_update_seconds']:.3f}s vs "
            f"full {cell['full_update_seconds']:.3f}s)"
        )


def test_combined_speedup_holds_on_every_cell_and_wins_on_average(update_report):
    cells = _cells(update_report)
    for cell in cells:
        assert cell["speedup"] > MIN_CELL_SPEEDUP, (
            f"{cell['workload']}/{cell['backend']}: {cell['speedup']:.2f}x"
        )
    mean = sum(cell["speedup"] for cell in cells) / len(cells)
    assert mean > 1.0, f"mean combined speedup {mean:.2f}x"
