"""Exp-5 (Table 5) and Example 4.2: operator counts of CycleE vs CycleEX.

Table 5 reports, for six DTDs (Cross, the four BIOML subgraphs and GedML),
the minimum / maximum / average number of LFP operators and of all
operators in the relational-algebra programs obtained from CycleE and from
CycleEX, taken over every ordered pair of element types ``(A, B)`` with a
path from ``A`` to ``B``.

Example 4.2 contrasts the growth of the number of '/'-operators produced by
CycleE (Theta(2^n)) and CycleEX (Theta(n^2)) on the complete-DAG DTD family
``D1(n)`` of Fig. 3(c); :func:`operator_growth` reproduces that comparison.

Run with ``python -m repro.experiments.exp5``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.cycleex import CycleEXIndex
from repro.core.expath_to_sql import ExtendedToSQL
from repro.core.optimize import standard_options
from repro.core.tarjan import CycleE
from repro.dtd.graph import DTDGraph
from repro.dtd.model import DTD
from repro.dtd import samples
from repro.expath.ast import Equation, ExtendedXPathQuery
from repro.expath.metrics import count_operators
from repro.expath.simplify import simplify_query
from repro.experiments.harness import format_table
from repro.shredding.inlining import SimpleMapping

__all__ = ["TableFiveRow", "run", "operator_growth", "main"]

# The DTDs of Table 5, in the paper's row order.
TABLE5_DTDS: Sequence[Tuple[str, Callable[[], DTD]]] = (
    ("Cross (Fig. 11a)", samples.cross_dtd),
    ("BIOMLa (Fig. 15a)", samples.bioml_subgraph_a),
    ("BIOMLb (Fig. 15b)", samples.bioml_subgraph_b),
    ("BIOMLc (Fig. 15c)", samples.bioml_subgraph_c),
    ("BIOMLd (Fig. 15d)", samples.bioml_subgraph_d),
    ("GedML (Fig. 11c)", samples.gedml_dtd),
)


@dataclass
class TableFiveRow:
    """One row of Table 5: operator statistics for one DTD."""

    dtd_name: str
    nodes: int
    edges: int
    cycles: int
    cyclee_lfp: Tuple[int, int, float]
    cyclee_all: Tuple[int, int, float]
    cycleex_lfp: Tuple[int, int, float]
    cycleex_all: Tuple[int, int, float]


def _min_max_avg(values: List[int]) -> Tuple[int, int, float]:
    if not values:
        return (0, 0, 0.0)
    return (min(values), max(values), sum(values) / len(values))


def _program_counts(dtd: DTD, query: ExtendedXPathQuery) -> Tuple[int, int]:
    """Lower a rec(A,B) query and count (LFP operators, all operators)."""
    program = ExtendedToSQL(SimpleMapping(dtd), standard_options()).translate(query)
    profile = program.operator_profile()
    return profile.lfps, profile.total


def run(dtds: Sequence[Tuple[str, Callable[[], DTD]]] = TABLE5_DTDS) -> List[TableFiveRow]:
    """Compute the Table 5 statistics for every listed DTD."""
    rows: List[TableFiveRow] = []
    for name, factory in dtds:
        dtd = factory()
        graph = DTDGraph(dtd)
        cyclee = CycleE(graph)
        cycleex = CycleEXIndex(graph)
        mapping = SimpleMapping(dtd)
        lowering = ExtendedToSQL(mapping, standard_options())

        e_lfp: List[int] = []
        e_all: List[int] = []
        x_lfp: List[int] = []
        x_all: List[int] = []
        for source in graph.nodes:
            for target in graph.nodes:
                if target not in graph.reachable(source):
                    continue
                # CycleE: a single (possibly huge) regular expression.
                e_query = ExtendedXPathQuery([], cyclee.rec(source, target))
                e_profile = lowering.translate(e_query).operator_profile()
                e_lfp.append(e_profile.lfps)
                e_all.append(e_profile.total)
                # CycleEX: the pruned equation system.
                x_query = cycleex.rec(source, target)
                x_profile = lowering.translate(x_query).operator_profile()
                x_lfp.append(x_profile.lfps)
                x_all.append(x_profile.total)

        rows.append(
            TableFiveRow(
                dtd_name=name,
                nodes=len(graph),
                edges=len(graph.edges),
                cycles=graph.cycle_count(),
                cyclee_lfp=_min_max_avg(e_lfp),
                cyclee_all=_min_max_avg(e_all),
                cycleex_lfp=_min_max_avg(x_lfp),
                cycleex_all=_min_max_avg(x_all),
            )
        )
    return rows


def operator_growth(max_n: int = 10) -> List[Tuple[int, int, int]]:
    """Example 4.2: '/'-operator counts of CycleE vs CycleEX on D1(n).

    Returns tuples ``(n, cyclee_slashes, cycleex_slashes)`` for the
    complete-DAG DTDs ``D1(2) .. D1(max_n)`` with the query ``A1//An``; the
    CycleE column grows exponentially, the CycleEX column quadratically.
    """
    rows: List[Tuple[int, int, int]] = []
    for n in range(2, max_n + 1):
        dtd = samples.complete_dag_dtd(n)
        graph = DTDGraph(dtd)
        source, target = f"A1", f"A{n}"
        cyclee_expr = CycleE(graph).rec(source, target)
        cycleex_query = CycleEXIndex(graph).rec(source, target)
        rows.append(
            (
                n,
                count_operators(cyclee_expr).slashes,
                count_operators(cycleex_query).slashes,
            )
        )
    return rows


def _fmt(stat: Tuple[int, int, float]) -> str:
    return f"{stat[0]}/{stat[1]}/{stat[2]:.0f}"


def summarize(rows: List[TableFiveRow]) -> str:
    """Format the Table 5 rows (min/max/average)."""
    return format_table(
        ["DTD", "n", "m", "c", "E LFP", "E ALL", "X LFP", "X ALL"],
        [
            (
                row.dtd_name,
                row.nodes,
                row.edges,
                row.cycles,
                _fmt(row.cyclee_lfp),
                _fmt(row.cyclee_all),
                _fmt(row.cycleex_lfp),
                _fmt(row.cycleex_all),
            )
            for row in rows
        ],
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: print Table 5 and the Example 4.2 growth table."""
    rows = run()
    print("Exp-5 (Table 5): number of operations (min/max/average)")
    print(summarize(rows))
    print()
    growth = operator_growth()
    print("Example 4.2: '/'-operators of rec(A1, An) on the complete-DAG DTD D1(n)")
    print(
        format_table(
            ["n", "CycleE slashes", "CycleEX slashes"],
            [(n, e, x) for n, e, x in growth],
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
