""":class:`Engine`/:class:`Session` facade behaviour.

Lifecycle (context managers, typed closed-errors), document registration
shapes, :class:`QueryResult` metadata and lazy node materialization, and
the deprecation shims (legacy kwarg constructors still agree with the
config-based facade).
"""

from __future__ import annotations

import pytest

from repro.api import (
    Engine,
    EngineConfig,
    QueryResult,
    Session,
    SessionClosedError,
)
from repro.core.pipeline import XPathToSQLTranslator
from repro.dtd.samples import dept_dtd
from repro.errors import ConfigError, DuplicateDocumentError, UnknownDocumentError
from repro.service import QueryService
from repro.xmltree.generator import generate_document

QUERY = "dept//project"


@pytest.fixture(scope="module")
def dtd():
    return dept_dtd()


@pytest.fixture(scope="module")
def document(dtd):
    return generate_document(dtd, x_l=7, x_r=3, seed=11, max_elements=600)


class TestEngineConstruction:
    def test_from_dtd_accepts_dtd_object(self, dtd):
        engine = Engine.from_dtd(dtd)
        assert engine.dtd is dtd
        assert engine.config == EngineConfig()

    def test_from_dtd_accepts_sample_name(self):
        engine = Engine.from_dtd("dept")
        assert engine.dtd.name == "dept"

    def test_from_dtd_accepts_grammar_text(self, dtd):
        engine = Engine.from_dtd(dtd.to_text())
        assert set(engine.dtd.element_types) == set(dtd.element_types)

    def test_from_dtd_knobs_apply_on_top_of_config(self, dtd):
        engine = Engine.from_dtd(dtd, EngineConfig(backend="sqlite"), optimize_level=0)
        assert engine.config.backend == "sqlite"
        assert engine.config.optimize_level == 0

    def test_from_dtd_rejects_other_types(self):
        with pytest.raises(ConfigError):
            Engine.from_dtd(42)  # type: ignore[arg-type]

    def test_from_dtd_names_unknown_sample(self):
        # A mistyped sample name gets a name error, not a grammar error.
        with pytest.raises(ConfigError, match="unknown sample DTD 'detp'"):
            Engine.from_dtd("detp")

    def test_translate_sql_explain(self, dtd):
        engine = Engine.from_dtd(dtd)
        result = engine.translate(QUERY)
        assert result.operator_profile().joins >= 1
        assert "SELECT" in engine.sql(QUERY)
        explanation = engine.explain(QUERY)
        assert "strategy:" in explanation and "profile:" in explanation


class TestSessions:
    def test_single_tree_gets_default_id(self, dtd, document):
        with Engine.from_dtd(dtd).open_session(document) as session:
            assert session.document_ids() == ["doc"]

    def test_mapping_of_documents(self, dtd, document):
        docs = {"a": document, "b": document}
        with Engine.from_dtd(dtd).open_session(docs) as session:
            assert session.document_ids() == ["a", "b"]
            assert len(session.answer(QUERY, "a")) == len(session.answer(QUERY, "b"))

    def test_sequence_of_documents(self, dtd, document):
        with Engine.from_dtd(dtd).open_session([document, document]) as session:
            assert session.document_ids() == ["doc0", "doc1"]

    def test_singleton_sequence_keeps_indexed_id(self, dtd, document):
        # Sequence ids never shift with length: [tree] is doc0, not doc.
        with Engine.from_dtd(dtd).open_session([document]) as session:
            assert session.document_ids() == ["doc0"]

    def test_mapping_values_are_validated(self, dtd):
        with pytest.raises(ConfigError, match="not an XMLTree"):
            Engine.from_dtd(dtd).open_session({"doc": "<xml/>"})  # type: ignore[dict-item]

    def test_add_document_and_unknown_id(self, dtd, document):
        with Engine.from_dtd(dtd).open_session(document) as session:
            session.add_document("second", document)
            assert session.document_ids() == ["doc", "second"]
            with pytest.raises(UnknownDocumentError):
                session.answer(QUERY, "third")
            with pytest.raises(DuplicateDocumentError):
                session.add_document("doc", document)

    def test_answer_batch_orders_and_threads(self, dtd, document):
        queries = [QUERY, "dept//cno", QUERY]
        with Engine.from_dtd(dtd).open_session(document) as session:
            serial = session.answer_batch(queries)
            threaded = session.answer_batch(queries, threads=4)
        assert [r.node_ids() for r in serial] == [r.node_ids() for r in threaded]
        with Engine.from_dtd(dtd).open_session(document) as session:
            with pytest.raises(ConfigError):
                session.answer_batch(queries, threads=0)

    def test_stream_yields_nodes_in_document_order(self, dtd, document):
        with Engine.from_dtd(dtd).open_session(document) as session:
            streamed = list(session.stream(QUERY))
            answered = session.answer(QUERY).nodes()
        assert [n.node_id for n in streamed] == [n.node_id for n in answered]

    def test_sessions_share_the_engine_plan_cache(self, dtd, document):
        engine = Engine.from_dtd(dtd)
        with engine.open_session(document) as first:
            first.answer(QUERY)
            misses_after_first = engine.plan_cache.cache_info().misses
            with engine.open_session(document) as second:
                second.answer(QUERY)
                # The second session answered from the shared cache.
                assert engine.plan_cache.cache_info().misses == misses_after_first
                assert engine.plan_cache.cache_info().hits > 0


class TestQueryResult:
    def test_metadata(self, dtd, document):
        config = EngineConfig(strategy="auto", backend="sqlite", optimize_level=2)
        with Engine.from_dtd(dtd, config).open_session(document) as session:
            result = session.answer(QUERY)
        assert isinstance(result, QueryResult)
        assert result.query == QUERY
        assert result.document_id == "doc"
        assert result.backend == "sqlite"
        assert result.plan.optimize_level == 2
        assert result.plan.strategy is not None
        assert "elapsed_seconds" in result.stats
        assert result.row_count == len(result.rows)

    def test_plan_is_lazy_and_cached(self, dtd, document):
        engine = Engine.from_dtd(dtd, EngineConfig(plan_cache_size=0, result_cache_size=0))
        with engine.open_session(document) as session:
            result = session.answer(QUERY)
            assert result._plan is None  # not derived until asked for
            assert result.plan is result.plan  # derived once, then cached

    def test_service_config_reflects_shared_plan_cache_capacity(self, dtd):
        from repro.core.plancache import PlanCache

        service = QueryService(dtd, plan_cache=PlanCache(8))
        assert service.config.plan_cache_size == 8
        assert service.config.result_cache_size == 8

    def test_lazy_node_materialization(self, dtd, document):
        with Engine.from_dtd(dtd).open_session(document) as session:
            result = session.answer(QUERY)
        assert result._nodes is None  # nothing materialized yet
        count = len(result)
        assert result._nodes is not None
        assert count == len(result.nodes())
        assert result.nodes() is result.nodes()  # materialized once
        assert {node.node_id for node in result} == {
            int(node_id) for node_id in result.node_ids()
        }

    def test_truthiness_without_materialization(self, dtd, document):
        with Engine.from_dtd(dtd).open_session(document) as session:
            hit = session.answer(QUERY)
            miss = session.answer("dept/project")  # project is never a direct child
            assert bool(hit) is True
            assert bool(miss) is False
            assert hit._nodes is None and miss._nodes is None


class TestLifecycle:
    def test_closing_engine_closes_sessions(self, dtd, document):
        engine = Engine.from_dtd(dtd)
        session = engine.open_session(document)
        engine.close()
        assert engine.closed and session.closed
        with pytest.raises(SessionClosedError):
            session.answer(QUERY)
        with pytest.raises(SessionClosedError):
            engine.open_session(document)

    def test_session_close_is_idempotent_and_independent(self, dtd, document):
        engine = Engine.from_dtd(dtd)
        first = engine.open_session(document)
        second = engine.open_session(document)
        first.close()
        first.close()
        assert not engine.closed
        assert len(second.answer(QUERY)) > 0
        engine.close()

    def test_context_managers(self, dtd, document):
        with Engine.from_dtd(dtd) as engine:
            with engine.open_session(document) as session:
                assert isinstance(session, Session)
            assert session.closed
        assert engine.closed


class TestDeprecationShims:
    """Old constructors still work — and agree with the facade."""

    def test_translator_legacy_kwargs_still_work(self, dtd, document):
        from repro.core.xpath_to_expath import DescendantStrategy

        legacy = XPathToSQLTranslator(
            dtd, strategy=DescendantStrategy.CYCLEE, optimize_level=1
        )
        config_based = XPathToSQLTranslator(
            dtd, config=EngineConfig(strategy="cyclee", optimize_level=1)
        )
        shredded = legacy.shred(document)
        assert {n.node_id for n in legacy.answer(QUERY, shredded)} == {
            n.node_id for n in config_based.answer(QUERY, shredded)
        }

    def test_service_legacy_kwargs_still_work(self, dtd, document):
        with QueryService(dtd, backend="sqlite", cache_capacity=16) as legacy, \
                QueryService(
                    dtd,
                    config=EngineConfig(
                        backend="sqlite", plan_cache_size=16, result_cache_size=16
                    ),
                ) as config_based:
            legacy.register_document("d", document)
            config_based.register_document("d", document)
            legacy_ids = {n.node_id for n in legacy.answer(QUERY)}
            config_ids = {n.node_id for n in config_based.answer(QUERY)}
        assert legacy_ids == config_ids

    def test_translator_rejects_config_plus_legacy(self, dtd):
        from repro.core.xpath_to_expath import DescendantStrategy

        with pytest.raises(ConfigError, match="not both"):
            XPathToSQLTranslator(
                dtd, strategy=DescendantStrategy.AUTO, config=EngineConfig()
            )

    def test_service_rejects_config_plus_legacy_cache_kwargs(self, dtd):
        with pytest.raises(ConfigError, match="not both"):
            QueryService(dtd, cache_capacity=4, config=EngineConfig())
