"""The pluggable execution-backend interface.

A :class:`Backend` executes translated relational
:class:`~repro.relational.algebra.Program` objects over one shredded
document database and returns a :class:`BackendResult`: the result rows in
a *normalized* form (every value rendered as a string, set semantics) plus
execution statistics.  Normalization is what makes results comparable
across engines with different type systems — the in-memory engine stores
Python ints for node ids while SQLite's TEXT affinity hands back strings.

Backends are the seam future engines (DuckDB, Postgres, sharded/batched
execution) plug into: implement :meth:`Backend.execute`, register the class
in :data:`repro.backends.BACKENDS` and every consumer — the CLI ``answer
--backend`` flag, the experiment harness backend axis and the differential
test suite — picks it up.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet, Iterable, Mapping, Sequence, Set, Tuple

from repro import obs
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids a cycle)
    from repro.live.delta import ShredDelta
from repro.relational.algebra import Program
from repro.relational.database import Database
from repro.relational.schema import T
from repro.relational.sqlgen import SQLDialect

__all__ = [
    "BackendResult",
    "Backend",
    "PreparedProgram",
    "normalize_rows",
    "NormalizedRow",
]

NormalizedRow = Tuple[str, ...]


def normalize_rows(rows: Iterable[Sequence[object]]) -> FrozenSet[NormalizedRow]:
    """Render every value as a string and collapse duplicates.

    This is the canonical form differential comparison uses: the in-memory
    engine produces ``(5, 7, '_')`` where SQLite produces ``('5', '7', '_')``;
    both normalize to ``('5', '7', '_')``.
    """
    return frozenset(tuple(str(value) for value in row) for row in rows)


@dataclass(frozen=True)
class BackendResult:
    """The outcome of executing one program on one backend.

    Attributes
    ----------
    backend:
        Name of the backend that produced the result.
    columns:
        Ordered column names of the result relation.
    rows:
        Normalized result rows (tuples of strings, set semantics).
    stats:
        Execution counters; every backend reports at least ``rows`` and
        ``elapsed_seconds`` (wall time), which is what the benchmark
        harness consumes.
    """

    backend: str
    columns: Tuple[str, ...]
    rows: FrozenSet[NormalizedRow]
    stats: Mapping[str, float] = field(default_factory=dict)

    @property
    def row_count(self) -> int:
        """Number of distinct result rows."""
        return len(self.rows)

    def column_values(self, column: str) -> Set[str]:
        """The set of (normalized) values in ``column``."""
        index = self.columns.index(column)
        return {row[index] for row in self.rows}

    def node_ids(self) -> Set[str]:
        """The answer set: values of the ``T`` column (the matched node ids)."""
        return self.column_values(T)


@dataclass(frozen=True)
class PreparedProgram:
    """A program made ready for repeated execution on one backend.

    Preparation factors the per-plan work out of the per-call path: the
    program is pruned once, and backends attach whatever they can
    precompute in ``payload`` (the SQLite backend stores its rendered
    statement list so repeated calls skip SQL generation entirely).  A
    prepared program is immutable and carries no connection state, so one
    instance may be executed concurrently from many threads.
    """

    backend: str
    program: Program
    payload: object = None


class Backend(abc.ABC):
    """Executes translated programs over one database.

    Subclasses set :attr:`name` (the identifier used by ``--backend`` flags
    and the registry), :attr:`dialect` (the SQL dialect the backend's plans
    are rendered and cache-keyed in — what
    :meth:`repro.api.EngineConfig.resolved_dialect` derives from) and
    implement :meth:`execute`.  Backends that hold external resources
    (connections, files) override :meth:`close`; all backends support use
    as context managers.

    :attr:`process_affine` declares whether instances are bound to the
    process that created them.  Affine backends (SQLite: shared-cache
    in-memory URIs embed the pid, and connections cannot cross ``fork`` or
    ``spawn``) must be *rebuilt* inside each worker process rather than
    shipped; the multiprocess serving tier keys its worker initializers off
    this flag, and affine backends raise
    :class:`~repro.errors.ExecutionError` on any cross-process use.
    """

    name: str = "abstract"
    dialect: SQLDialect = SQLDialect.GENERIC
    #: True when instances must not cross a process boundary (see class doc).
    process_affine: bool = False
    #: Names of :class:`~repro.api.EngineConfig` fields this backend consumes
    #: as constructor keywords.  :func:`repro.backends.create_backend` copies
    #: them off the config when one is passed in place of a backend name —
    #: how per-backend knobs (the memory backend's ``executor``) reach the
    #: instance without every backend growing every knob.
    config_options: Tuple[str, ...] = ()

    def __init__(self, database: Database) -> None:
        self._database = database

    @property
    def database(self) -> Database:
        """The database this backend executes over."""
        return self._database

    @abc.abstractmethod
    def execute(self, program: Program) -> BackendResult:
        """Execute ``program`` and return the normalized result."""

    # -- prepared execution ------------------------------------------------------

    def prepare(self, program: Program) -> PreparedProgram:
        """Make ``program`` ready for repeated execution (prune once).

        The base implementation covers engines with nothing further to
        precompute; backends with a render or planning step override this.
        """
        with obs.span("prepare", backend=self.name):
            return PreparedProgram(backend=self.name, program=program.pruned())

    def execute_prepared(self, prepared: PreparedProgram) -> BackendResult:
        """Execute a prepared program (must be prepared for this backend)."""
        if prepared.backend != self.name:
            raise ValueError(
                f"program was prepared for backend {prepared.backend!r}, "
                f"cannot execute on {self.name!r}"
            )
        return self.execute(prepared.program)

    def answer_node_ids(self, program: Program) -> Set[str]:
        """Convenience: execute and return the matched node-id set."""
        return self.execute(program).node_ids()

    # -- live updates ------------------------------------------------------------

    def apply_delta(self, delta: "ShredDelta") -> None:
        """Apply a :class:`~repro.live.delta.ShredDelta` to the backing store.

        The sanctioned route for mutating a registered document: the delta
        (produced by :class:`~repro.live.mutations.DocumentMutator`) carries
        row-level inserts/deletes per base relation, and the backend updates
        whatever materialisation it owns so subsequent queries observe the
        post-mutation document.  Backends without incremental-update support
        keep the read-only default and raise.
        """
        raise ExecutionError(
            f"backend {self.name!r} does not support incremental deltas; "
            "re-register the document instead"
        )

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(database={self._database!r})"
