"""Unit tests for relational schemas and database instances."""

import pytest

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import NODE_COLUMNS, DatabaseSchema, RelationSchema


@pytest.fixture()
def schema():
    return DatabaseSchema(
        [
            RelationSchema("R_a", NODE_COLUMNS),
            RelationSchema("R_b", NODE_COLUMNS),
            RelationSchema("extra", ("ID", "parentId")),
        ],
        node_relations=["R_a", "R_b"],
        element_relations={"a": "R_a", "b": "R_b"},
    )


class TestRelationSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("bad", ("a", "a"))

    def test_has_column(self):
        schema = RelationSchema("R", NODE_COLUMNS)
        assert schema.has_column("F")
        assert not schema.has_column("missing")

    def test_ddl_contains_key(self):
        ddl = RelationSchema("R", NODE_COLUMNS).ddl()
        assert "CREATE TABLE R" in ddl
        assert "PRIMARY KEY (T)" in ddl

    def test_ddl_without_t_column(self):
        ddl = RelationSchema("R", ("ID", "parentId")).ddl()
        assert "PRIMARY KEY" not in ddl


class TestDatabaseSchema:
    def test_lookup(self, schema):
        assert schema.relation("R_a").columns == NODE_COLUMNS
        assert schema.has_relation("extra")
        assert not schema.has_relation("nope")
        assert len(schema) == 3

    def test_unknown_relation_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.relation("nope")

    def test_element_mapping(self, schema):
        assert schema.relation_for_element("a") == "R_a"
        with pytest.raises(SchemaError):
            schema.relation_for_element("zzz")
        assert set(schema.element_types()) == {"a", "b"}

    def test_duplicate_relation_names_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("R", NODE_COLUMNS), RelationSchema("R", NODE_COLUMNS)])

    def test_undeclared_node_relation_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("R", NODE_COLUMNS)], node_relations=["missing"])

    def test_undeclared_element_relation_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("R", NODE_COLUMNS)], element_relations={"a": "missing"})

    def test_ddl_covers_all_relations(self, schema):
        ddl = schema.ddl()
        assert ddl.count("CREATE TABLE") == 3


class TestDatabase:
    def test_relations_start_empty(self, schema):
        database = Database(schema)
        assert len(database.relation("R_a")) == 0
        assert database.total_rows() == 0

    def test_set_relation_checks_columns(self, schema):
        database = Database(schema)
        database.set_relation("R_a", Relation(NODE_COLUMNS, {("_", 0, "x")}))
        assert database.total_rows() == 1
        with pytest.raises(SchemaError):
            database.set_relation("R_a", Relation(("X",), {(1,)}))

    def test_unknown_relation(self, schema):
        database = Database(schema)
        with pytest.raises(SchemaError):
            database.relation("nope")
        assert "R_a" in database
        assert "nope" not in database

    def test_identity_relation_built_from_node_relations(self, schema):
        database = Database(schema)
        database.set_relation("R_a", Relation(NODE_COLUMNS, {("_", 0, "_"), (0, 1, "v")}))
        database.set_relation("R_b", Relation(NODE_COLUMNS, {(1, 2, "w")}))
        identity = database.identity_relation()
        assert identity.rows == {(0, 0, "_"), (1, 1, "v"), (2, 2, "w")}

    def test_identity_ignores_non_node_relations(self, schema):
        database = Database(schema)
        database.set_relation("extra", Relation(("ID", "parentId"), {(9, 0)}))
        assert database.identity_relation().rows == set()
