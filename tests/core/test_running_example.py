"""Tests reproducing the paper's running example (Sect. 2-3, Tables 1-3)."""

import pytest

from repro.core.pipeline import XPathToSQLTranslator
from repro.core.sqlgen_r import SQLGenR
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd import samples
from repro.relational.executor import execute_program
from repro.relational.schema import T as T_COLUMN
from repro.shredding.shredder import shred_document
from repro.workloads.datasets import dept_sample_tree
from repro.workloads.queries import DEPT_QUERIES
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath


@pytest.fixture(scope="module")
def table1():
    """The Table 1 database: the sample document shredded over Fig. 1(b)."""
    dtd = samples.simplified_dept_dtd()
    tree = dept_sample_tree()
    return dtd, tree, shred_document(tree, dtd)


class TestTable1Database:
    def test_relation_sizes_match_table1(self, table1):
        _, _, shredded = table1
        db = shredded.database
        assert len(db.relation("R_dept")) == 1
        assert len(db.relation("R_course")) == 5
        assert len(db.relation("R_student")) == 2
        assert len(db.relation("R_project")) == 2

    def test_sample_paths_exist(self, table1):
        # Table 1 supports paths like d1.c1.c2.c3 and d1.c1.c2.p1.c4.p2.
        _, tree, _ = table1
        deepest_project = max(tree.nodes_with_label("project"), key=lambda n: n.depth())
        assert [label for label in deepest_project.path_from_root()] == [
            "dept",
            "course",
            "course",
            "project",
            "course",
            "project",
        ]


class TestQ1DeptProject:
    def test_q1_answer_is_both_projects(self, table1):
        """Q1 = dept//project returns p1 and p2 (Sect. 3.1 / Table 3)."""
        dtd, tree, shredded = table1
        expected = {n.node_id for n in tree.nodes_with_label("project")}
        for strategy in DescendantStrategy:
            translator = XPathToSQLTranslator(dtd, strategy=strategy)
            got = {n.node_id for n in translator.answer("dept//project", shredded)}
            assert got == expected, strategy

    def test_sqlgen_r_iterations_match_table2_depth(self, table1):
        """Table 2 shows the recursion converging after ~5 iterations."""
        dtd, _, shredded = table1
        program = SQLGenR(dtd).translate("dept//project")
        _, stats = execute_program(shredded.database, program)
        assert 4 <= stats.recursive_union_iterations <= 7

    def test_cycleex_program_shape_matches_example_3_5(self, table1):
        """The CycleEX program uses the simple LFP operator, not SQL'99 recursion.

        Example 3.5 shows one hand-collapsed LFP; node elimination produces
        one closure per eliminated cycle node (at most 3 on Fig. 1(b)), all
        of them simple single-relation LFPs.
        """
        dtd, _, _ = table1
        translator = XPathToSQLTranslator(dtd)
        result = translator.translate("dept//project")
        profile = result.operator_profile()
        assert 1 <= profile.lfps <= 3
        assert profile.recursive_unions == 0

    def test_sqlgen_r_program_has_no_lfp(self, table1):
        dtd, _, _ = table1
        profile = SQLGenR(dtd).translate("dept//project").operator_profile()
        assert profile.lfps == 0
        assert profile.recursive_unions >= 1


class TestQ2OverFullDeptDTD:
    def test_q2_translates_and_matches_oracle(self):
        """Q2 (Example 2.2) — beyond SQLGen-R's original fragment — works here."""
        from repro.xmltree.generator import generate_document

        dtd = samples.dept_dtd()
        tree = generate_document(dtd, x_l=7, x_r=3, seed=51, max_elements=900)
        shredded = shred_document(tree, dtd)
        # Use a constant that actually occurs in the generated data.
        cno_value = tree.nodes_with_label("cno")[1].value
        query = DEPT_QUERIES["Q2"].replace("cs66", cno_value)
        expected = {n.node_id for n in evaluate_xpath(tree, parse_xpath(query))}
        translator = XPathToSQLTranslator(dtd)
        got = {n.node_id for n in translator.answer(query, shredded)}
        assert got == expected

    def test_example_4_3_rec_pairs_appear_in_translation(self):
        """EQ2 references rec(course, course), rec(course, project), rec(qualified, course)."""
        dtd = samples.dept_dtd()
        translator = XPathToSQLTranslator(dtd)
        extended = translator.to_extended(DEPT_QUERIES["Q2"])
        rendered = str(extended)
        assert "course" in rendered and "project" in rendered
        # The equation system must be non-trivial (uses variables for the recs).
        assert len(extended.equations) >= 3
