"""In-memory relational engine with a simple least-fixpoint (LFP) operator.

The paper pushes translated XPath queries into an RDBMS (IBM DB2 in the
experiments).  No RDBMS is available offline, so this package provides the
substrate the translation targets:

* named relations with set semantics (:mod:`repro.relational.relation`),
* a database of base and temporary relations (:mod:`repro.relational.database`),
* a relational-algebra AST covering selection, projection, composition
  joins, semi/anti joins, union, difference, the paper's **simple LFP**
  operator ``Phi(R)`` (single input relation, with optional anchors so
  selections can be pushed inside) and the **SQL'99 multi-relation
  recursive union** used by the SQLGen-R baseline
  (:mod:`repro.relational.algebra`),
* an executor with lazy (top-down) and eager evaluation strategies
  (:mod:`repro.relational.executor`), plus a columnar operator-at-a-time
  executor over dictionary-encoded column arrays
  (:mod:`repro.relational.columnar`), and
* a SQL text emitter so every translated program can be inspected as real
  SQL in generic, Oracle CONNECT BY or DB2 recursive-CTE dialects
  (:mod:`repro.relational.sqlgen`).
"""

from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.database import Database
from repro.relational.algebra import (
    AntiJoin,
    Assignment,
    Compose,
    Condition,
    Difference,
    EdgeStep,
    EquiJoin,
    Fixpoint,
    IdentityRelation,
    Intersect,
    Program,
    Project,
    RAExpr,
    RecursiveUnion,
    Scan,
    Select,
    SemiJoin,
    Union,
)
from repro.relational.executor import ExecutionStats, Executor, execute_program
from repro.relational.columnar import (
    DEFAULT_EXECUTOR,
    EXECUTOR_NAMES,
    ColumnarDatabase,
    ColumnarExecutor,
    ColumnarRelation,
    ValueDictionary,
    columnar_store,
)
from repro.relational.sqlgen import SQLDialect, program_to_sql

__all__ = [
    "Relation",
    "RelationSchema",
    "DatabaseSchema",
    "Database",
    "RAExpr",
    "Scan",
    "Select",
    "Project",
    "Compose",
    "EquiJoin",
    "SemiJoin",
    "AntiJoin",
    "Union",
    "Difference",
    "Intersect",
    "Fixpoint",
    "RecursiveUnion",
    "EdgeStep",
    "IdentityRelation",
    "Condition",
    "Assignment",
    "Program",
    "Executor",
    "ExecutionStats",
    "execute_program",
    "ColumnarRelation",
    "ColumnarDatabase",
    "ColumnarExecutor",
    "ValueDictionary",
    "columnar_store",
    "EXECUTOR_NAMES",
    "DEFAULT_EXECUTOR",
    "SQLDialect",
    "program_to_sql",
]
