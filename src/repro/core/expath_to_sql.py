"""Algorithm EXpToSQL: extended XPath to relational algebra / SQL with LFP.

The translation (Fig. 10) produces a :class:`~repro.relational.algebra.Program`
— an ordered list of temporary-table assignments plus a result expression —
from an :class:`~repro.expath.ast.ExtendedXPathQuery` and a storage mapping.

Every translated (sub-)relation follows the invariant of Sect. 5.1: it holds
tuples ``(f, t, v)`` such that ``t`` is reachable from ``f`` via the
sub-expression and ``v`` is ``t``'s text value.  The cases are:

* label ``A``            -> scan of ``R_A``;
* variable ``X``         -> scan of the temporary table assigned to ``X``;
* ``E1/E2``              -> composition join on ``T = F``;
* ``E1 UNION E2``        -> union;
* ``(E)*``               -> the simple LFP operator ``Phi(R)`` union an
  identity relation (``R_id`` or, with the Sect. 5.2 optimisation, the much
  smaller identity over the preceding step's targets);
* ``E[q]``               -> semi-joins / anti-joins / selections depending on
  the qualifier structure;
* ``DESC(A, B)`` markers -> the SQL'99 multi-relation recursive union used
  by the SQLGen-R baseline;
* ``INTERVAL(A, B)`` markers -> a non-recursive range join against the
  ``DOC_ORDER`` pre/post numbering (the interval descendant strategy).

The final result is wrapped in ``sigma_{F = '_'}`` so only tuples rooted at
the document root remain, as in Fig. 10 line 26.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dtd.graph import DTDGraph
from repro.errors import XPathTranslationError
from repro.expath.ast import (
    EAnd,
    EDescendants,
    EIntervals,
    EEmpty,
    EEmptySet,
    ELabel,
    ENot,
    EOr,
    EPathQual,
    EQualified,
    EQualifier,
    ESlash,
    EStar,
    ETextEquals,
    EUnion,
    EVar,
    Expr,
    ExtendedXPathQuery,
)
from repro.relational.algebra import (
    AntiJoin,
    Assignment,
    Compose,
    Condition,
    Difference,
    EdgeStep,
    Fixpoint,
    IdentityRelation,
    IntervalJoin,
    Program,
    Project,
    RAExpr,
    RecursiveUnion,
    Scan,
    Select,
    SemiJoin,
    TagProject,
    Union,
)
from repro.relational.schema import DOC_ORDER, F, T, V
from repro.shredding.inlining import ROOT_PARENT, SimpleMapping

__all__ = ["IMPOSSIBLE_F", "TranslationOptions", "ExtendedToSQL", "extended_to_sql"]

# F-column sentinel that matches no node id and no root parent: selecting
# it from R_id is the lowering's encoding of the constant-empty relation.
# The optimizer's reachability analysis recognises it by this exact value.
IMPOSSIBLE_F = "__none__"


@dataclass(frozen=True)
class TranslationOptions:
    """Knobs controlling how extended XPath is lowered to relational algebra.

    Attributes
    ----------
    use_small_seed:
        Translate ``(E)*`` (and ``eps``) using the identity over the targets
        of the preceding step instead of the full ``R_id`` relation — the
        "Handling (E)*" optimisation of Sect. 5.2.  Requires threading the
        preceding step through variable definitions, which creates anchored
        variants of temporaries.
    push_selections:
        Additionally anchor the LFP operator itself on the preceding step's
        targets (``C = R.F IN pi_T(R1) AND ...``), i.e. "pushing selections
        into the LFP" of Sect. 5.2.
    select_root:
        Apply the final ``sigma_{F = '_'}`` root filter (line 26 of Fig. 10).
    """

    use_small_seed: bool = True
    push_selections: bool = False
    select_root: bool = True


class ExtendedToSQL:
    """Translate extended XPath queries into relational programs."""

    def __init__(
        self,
        mapping: SimpleMapping,
        options: Optional[TranslationOptions] = None,
    ) -> None:
        self._mapping = mapping
        self._options = options or TranslationOptions()
        self._dtd = mapping.dtd
        self._graph = DTDGraph(self._dtd)

    # -- public API -------------------------------------------------------------

    def translate(self, query: ExtendedXPathQuery) -> Program:
        """Translate a full extended XPath query into a relational program."""
        return _Lowering(self, query).run()

    # -- helpers used by the lowering ---------------------------------------------

    @property
    def options(self) -> TranslationOptions:
        """The active translation options."""
        return self._options

    @property
    def mapping(self) -> SimpleMapping:
        """The storage mapping in use."""
        return self._mapping

    def relation_scan(self, element_type: str) -> RAExpr:
        """Scan of the base relation storing ``element_type`` nodes."""
        return Scan(self._mapping.relation_for(element_type))

    def descendant_types(self, source: str, target: str) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        """Node and edge sets of the DTD subgraph on paths from source to target.

        Used to build the SQL'99 recursive union of the SQLGen-R baseline:
        only element types that lie on some path from ``source`` to
        ``target`` (the "query graph" of Sect. 3.1) take part in the
        recursion.
        """
        reach_from_source = {source} | self._graph.reachable(source)
        reaches_target = {
            node
            for node in self._graph.nodes
            if node == target or target in self._graph.reachable(node)
        }
        nodes = reach_from_source & reaches_target
        edges = {
            (parent, child)
            for parent in nodes
            for child in self._graph.successors(parent)
            if child in nodes
        }
        return nodes, edges


class _Lowering:
    """One translation run: holds the assignment list being built."""

    def __init__(self, translator: ExtendedToSQL, query: ExtendedXPathQuery) -> None:
        self._t = translator
        self._query = query
        self._assignments: List[Assignment] = []
        self._temp_counter = 0
        # Cache of translated equation variables: (variable, anchor temp name
        # or None) -> temp name holding the translation.
        self._variable_temps: Dict[Tuple[str, Optional[str]], str] = {}

    # -- temp management ----------------------------------------------------------

    def _fresh(self, hint: str) -> str:
        self._temp_counter += 1
        safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in hint)
        return f"T{self._temp_counter}_{safe}"

    def _materialize(self, expression: RAExpr, hint: str) -> Scan:
        """Assign ``expression`` to a fresh temporary and return its scan."""
        if isinstance(expression, Scan):
            return expression
        name = self._fresh(hint)
        self._assignments.append(Assignment(name, expression))
        return Scan(name)

    # -- driver -------------------------------------------------------------------

    def run(self) -> Program:
        result = self._translate(self._query.result, left=None)
        if self._t.options.select_root:
            result = Select(result, (Condition(F, "=", ROOT_PARENT),))
        program = Program(self._assignments, result)
        return program.pruned()

    # -- variable handling ----------------------------------------------------------

    def _variable_scan(self, name: str, left: Optional[Scan]) -> RAExpr:
        """Scan of the temporary holding variable ``name``.

        Without selection pushing the anchor is ignored and every use shares
        one temporary.  With ``push_selections`` a separate anchored variant
        is created per distinct anchoring relation, so closures and identity
        seeds deep inside the equation system are restricted to the nodes
        that can actually join with the preceding step (the Sect. 5.2
        rewrite applied across equation boundaries).
        """
        thread_anchor = self._t.options.push_selections
        anchor_key = left.name if (thread_anchor and left is not None) else None
        key = (name, anchor_key)
        if key in self._variable_temps:
            return Scan(self._variable_temps[key])
        definition = self._query.definition(name)
        translated = self._translate(definition, left if thread_anchor else None)
        temp = self._materialize(translated, name if anchor_key is None else f"{name}_anch")
        self._variable_temps[key] = temp.name
        return temp

    # -- expression translation -------------------------------------------------------

    def _identity_for(self, left: Optional[Scan]) -> RAExpr:
        """Identity relation: small (targets of ``left``) when allowed, else R_id."""
        if left is not None and self._t.options.use_small_seed:
            return Project(left, (T, T, V), (F, T, V))
        return IdentityRelation()

    def _translate(self, expr: Expr, left: Optional[Scan]) -> RAExpr:
        if isinstance(expr, EEmptySet):
            # An empty relation: selecting an impossible F value from R_id.
            return Select(IdentityRelation(), (Condition(F, "=", IMPOSSIBLE_F),))
        if isinstance(expr, EEmpty):
            return self._identity_for(left)
        if isinstance(expr, ELabel):
            scan = self._t.relation_scan(expr.name)
            if left is not None and self._t.options.push_selections:
                # Push the preceding step into the scan (Sect. 5.2: compute
                # the prefix joins first and restrict what feeds the LFP).
                return SemiJoin(scan, left, left_column=F, right_column=T)
            return scan
        if isinstance(expr, EVar):
            return self._variable_scan(expr.name, left)
        if isinstance(expr, ESlash):
            left_translated = self._translate(expr.left, left)
            left_ref = self._materialize(left_translated, "step")
            right_translated = self._translate(expr.right, left_ref)
            return Compose(left_ref, right_translated)
        if isinstance(expr, EUnion):
            return Union(
                (self._translate(expr.left, left), self._translate(expr.right, left))
            )
        if isinstance(expr, EStar):
            return self._translate_star(expr, left)
        if isinstance(expr, EDescendants):
            return self._translate_descendants(expr, left)
        if isinstance(expr, EIntervals):
            return self._translate_intervals(expr, left)
        if isinstance(expr, EQualified):
            base = self._translate(expr.expr, left)
            base_ref = self._materialize(base, "qual_base")
            return self._apply_qualifier(base_ref, expr.qualifier)
        raise XPathTranslationError(f"cannot translate expression {expr!r}")

    def _translate_star(self, expr: EStar, left: Optional[Scan]) -> RAExpr:
        inner = self._translate(expr.inner, None)
        base_ref = self._materialize(inner, "lfp_base")
        anchor = left if (left is not None and self._t.options.push_selections) else None
        fixpoint = Fixpoint(base_ref, source_anchor=anchor)
        identity = self._identity_for(left)
        return Union((fixpoint, identity))

    def _translate_descendants(self, expr: EDescendants, left: Optional[Scan]) -> RAExpr:
        """SQL'99 recursive union for the SQLGen-R baseline (Sect. 3.1).

        The working relation carries ``(F, T, V, TAG)`` where ``F`` is the
        *origin* node (a ``source``-typed node), so the result composes with
        the rest of the program as an ordinary binary relation; each
        iteration still evaluates one join and one union per DTD edge of the
        query graph, which is the cost profile the paper attributes to the
        ``with ... recursive`` black box.
        """
        from repro.core.xpath_to_expath import VIRTUAL_ROOT

        source = expr.source
        if source == VIRTUAL_ROOT:
            source = self._t.mapping.dtd.root
        nodes, edges = self._t.descendant_types(source, expr.target)
        if not nodes:
            return Select(IdentityRelation(), (Condition(F, "=", IMPOSSIBLE_F),))

        # Initialization: edges leaving a source-typed node, restricted (via
        # a semi-join) to actual source nodes — or to the preceding step's
        # targets when a left context is available.
        init_parts: List[RAExpr] = []
        restrict: RAExpr = left if left is not None else self._t.relation_scan(source)
        for child in sorted(self._t.mapping.dtd.children(source)):
            if child not in nodes:
                continue
            child_scan = self._t.relation_scan(child)
            restricted = SemiJoin(child_scan, restrict, left_column=F, right_column=T)
            init_parts.append(TagProject(restricted, child))
        if not init_parts:
            return Select(IdentityRelation(), (Condition(F, "=", IMPOSSIBLE_F),))

        init_union: RAExpr = init_parts[0] if len(init_parts) == 1 else Union(tuple(init_parts))
        steps = tuple(
            EdgeStep(relation=self._t.relation_scan(child), parent_tag=parent, child_tag=child)
            for parent, child in sorted(edges)
        )
        recursive = RecursiveUnion(init_union, steps)
        recursive_ref = self._materialize(recursive, f"desc_{source}_{expr.target}")
        selected = Select(recursive_ref, (Condition("TAG", "=", expr.target),))
        return Project(selected, (F, T, V), (F, T, V))

    def _translate_intervals(self, expr: EIntervals, left: Optional[Scan]) -> RAExpr:
        """Range join over the pre/post numbering (the interval strategy).

        The ancestor candidates are the targets of the preceding step when
        one is available, otherwise all ``source``-typed nodes; the
        descendants are the ``target``-typed nodes whose ``PRE`` falls
        strictly inside the ancestor's interval.  No recursion is emitted —
        the whole descendant axis is two joins against ``DOC_ORDER``.
        """
        from repro.core.xpath_to_expath import VIRTUAL_ROOT

        source = expr.source
        if source == VIRTUAL_ROOT:
            source = self._t.mapping.dtd.root
        nodes, _ = self._t.descendant_types(source, expr.target)
        if not nodes:
            return Select(IdentityRelation(), (Condition(F, "=", IMPOSSIBLE_F),))
        restrict: RAExpr = left if left is not None else self._t.relation_scan(source)
        return IntervalJoin(
            left=restrict,
            right=self._t.relation_scan(expr.target),
            order=Scan(DOC_ORDER),
        )

    # -- qualifiers ---------------------------------------------------------------

    def _apply_qualifier(self, base: RAExpr, qualifier: EQualifier) -> RAExpr:
        if isinstance(qualifier, EPathQual):
            probe = self._qualifier_probe(base, qualifier.expr)
            return SemiJoin(base, probe, left_column=T, right_column=F)
        if isinstance(qualifier, ETextEquals):
            return Select(base, (Condition(V, "=", qualifier.value),))
        if isinstance(qualifier, ENot):
            positive = self._apply_qualifier(base, qualifier.inner)
            positive_ref = self._materialize(positive, "neg_inner")
            return Difference(base, positive_ref)
        if isinstance(qualifier, EAnd):
            first = self._apply_qualifier(base, qualifier.left)
            first_ref = self._materialize(first, "and_left")
            return self._apply_qualifier(first_ref, qualifier.right)
        if isinstance(qualifier, EOr):
            return Union(
                (
                    self._apply_qualifier(base, qualifier.left),
                    self._apply_qualifier(base, qualifier.right),
                )
            )
        raise XPathTranslationError(f"cannot translate qualifier {qualifier!r}")

    def _qualifier_probe(self, base: RAExpr, expr: Expr) -> RAExpr:
        """Translate a qualifier path, anchored on the candidate nodes when allowed."""
        anchor: Optional[Scan] = None
        if self._t.options.push_selections:
            base_ref = base if isinstance(base, Scan) else self._materialize(base, "qual_anchor")
            # Identity over the candidate nodes: their T values become the F
            # values the qualifier path must start from.
            identity = Project(base_ref, (T, T, V), (F, T, V))
            anchor = self._materialize(identity, "qual_ids")
        return self._translate(expr, anchor)


def extended_to_sql(
    query: ExtendedXPathQuery,
    mapping: SimpleMapping,
    options: Optional[TranslationOptions] = None,
) -> Program:
    """Translate an extended XPath query over ``mapping`` into a relational program."""
    return ExtendedToSQL(mapping, options).translate(query)
