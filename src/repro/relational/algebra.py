"""Relational-algebra AST for translated programs.

A translated query is a :class:`Program`: an ordered list of assignments
``temp <- expr`` plus a result expression, mirroring the paper's output
``R_e <- e2s(e)`` lists (Sect. 5.1).  Expressions cover:

* ``Scan`` — a base or temporary relation;
* ``Select`` / ``Project`` — selection and projection (with rename);
* ``Compose`` — the composition join ``pi_{L.F, R.T, R.V}(L |><| L.T=R.F R)``
  which is the only join shape the translation emits for path steps;
* ``EquiJoin`` — a general equi-join (used by the SQLGen-R baseline and the
  shared-inlining examples);
* ``SemiJoin`` / ``AntiJoin`` — qualifier and negated-qualifier filtering;
* ``Union`` / ``Difference`` / ``Intersect``;
* ``IdentityRelation`` — the ``R_id`` relation of Sect. 5.1;
* ``Fixpoint`` — the paper's simple LFP operator ``Phi(R)`` with optional
  anchors implementing "pushing selections into the LFP" (Sect. 5.2);
* ``RecursiveUnion`` — the SQL'99 multi-relation fixpoint
  ``phi(R, R1..Rk)`` used by the SQLGen-R baseline (Sect. 3.1).

Programs know how to count their operators (joins / unions / LFPs), which is
what Table 5 and Exp-5 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "RAExpr",
    "Scan",
    "Condition",
    "Select",
    "Project",
    "Compose",
    "EquiJoin",
    "SemiJoin",
    "AntiJoin",
    "Union",
    "Difference",
    "Intersect",
    "IdentityRelation",
    "EmptyRelation",
    "TagProject",
    "IntervalJoin",
    "Fixpoint",
    "EdgeStep",
    "RecursiveUnion",
    "Assignment",
    "Program",
    "OperatorProfile",
]


class RAExpr:
    """Base class of relational-algebra expressions."""

    def children(self) -> Tuple["RAExpr", ...]:
        """Immediate sub-expressions."""
        return ()

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class Scan(RAExpr):
    """Reference to a base or temporary relation by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Condition:
    """An atomic selection condition ``column op value``.

    ``op`` is one of ``'='`` and ``'!='``; values are compared for equality
    against stored values (which are strings or ``None``).
    """

    column: str
    op: str
    value: object

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Select(RAExpr):
    """Selection: keep rows satisfying every condition."""

    input: RAExpr
    conditions: Tuple[Condition, ...]

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.input,)

    def __str__(self) -> str:
        conds = " AND ".join(str(c) for c in self.conditions)
        return f"SELECT[{conds}]({self.input})"


@dataclass(frozen=True)
class Project(RAExpr):
    """Projection onto ``columns``, optionally renamed to ``aliases``."""

    input: RAExpr
    columns: Tuple[str, ...]
    aliases: Optional[Tuple[str, ...]] = None

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.input,)

    def __str__(self) -> str:
        cols = ", ".join(self.columns)
        return f"PROJECT[{cols}]({self.input})"


@dataclass(frozen=True)
class Compose(RAExpr):
    """Composition join: ``pi_{L.F, R.T, R.V}(L |><|_{L.T = R.F} R)``.

    Both inputs must have the node columns ``(F, T, V)``; the output relates
    the origin of the left input to the target of the right input, which is
    exactly how the translation chains path steps (case 4 of EXpToSQL).
    """

    left: RAExpr
    right: RAExpr

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} . {self.right})"


@dataclass(frozen=True)
class EquiJoin(RAExpr):
    """General equi-join with explicit output columns.

    ``output`` lists ``(side, column, alias)`` triples where ``side`` is
    ``'L'`` or ``'R'``.
    """

    left: RAExpr
    right: RAExpr
    left_column: str
    right_column: str
    output: Tuple[Tuple[str, str, str], ...]

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return (
            f"({self.left} JOIN {self.right} ON L.{self.left_column} = "
            f"R.{self.right_column})"
        )


@dataclass(frozen=True)
class SemiJoin(RAExpr):
    """Keep left rows with at least one matching right row (qualifier check)."""

    left: RAExpr
    right: RAExpr
    left_column: str = "T"
    right_column: str = "F"

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} SEMIJOIN {self.right})"


@dataclass(frozen=True)
class AntiJoin(RAExpr):
    """Keep left rows with no matching right row (negated qualifier)."""

    left: RAExpr
    right: RAExpr
    left_column: str = "T"
    right_column: str = "F"

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ANTIJOIN {self.right})"


@dataclass(frozen=True)
class Union(RAExpr):
    """Set union of any number of inputs (all with identical columns)."""

    inputs: Tuple[RAExpr, ...]

    def children(self) -> Tuple[RAExpr, ...]:
        return self.inputs

    def __str__(self) -> str:
        return "(" + " UNION ".join(str(i) for i in self.inputs) + ")"


@dataclass(frozen=True)
class Difference(RAExpr):
    """Set difference ``left \\ right``."""

    left: RAExpr
    right: RAExpr

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} EXCEPT {self.right})"


@dataclass(frozen=True)
class Intersect(RAExpr):
    """Set intersection."""

    left: RAExpr
    right: RAExpr

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} INTERSECT {self.right})"


@dataclass(frozen=True)
class IdentityRelation(RAExpr):
    """The identity relation ``R_id``: one ``(v, v, v.val)`` tuple per node."""

    def __str__(self) -> str:
        return "R_id"


@dataclass(frozen=True)
class EmptyRelation(RAExpr):
    """The constant-empty ``(F, T, V)`` relation.

    Produced by the optimizer's reachability pruning (Sect. 5.2 spirit):
    a sub-program the DTD graph proves can match nothing collapses to this
    node, which costs nothing to evaluate — unlike the lowering's
    ``sigma_{F = '__none__'}(R_id)`` encoding, which still scans the whole
    identity relation.
    """

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class TagProject(RAExpr):
    """Project ``(F, T, V)`` from the input and append a constant ``TAG`` column.

    Used to build the tagged working relation of the SQL'99 recursive union
    (the ``Rid`` column of Fig. 2).
    """

    input: RAExpr
    tag: str

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.input,)

    def __str__(self) -> str:
        return f"TAG[{self.tag}]({self.input})"


@dataclass(frozen=True)
class IntervalJoin(RAExpr):
    """Descendant step as a range join over the interval numbering.

    ``left`` and ``right`` are ``(F, T, V)`` relations and ``order`` is the
    document-order relation ``DOC_ORDER(T, PRE, POST, SIZE)``.  The output
    has columns ``(F, T, V)``: one row per pair ``(a, d)`` where ``a`` is a
    ``T`` of ``left``, ``d`` a ``T`` of ``right`` and ``d``'s ``PRE`` lies
    in the half-open window ``(pre_a, pre_a + size_a]`` — i.e. ``d`` is a *proper*
    descendant of ``a``; ``V`` is ``d``'s value.  This is the interval
    (XPath-accelerator) alternative to unfolding ``//`` into a fixpoint.
    """

    left: RAExpr
    right: RAExpr
    order: RAExpr

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.left, self.right, self.order)

    def __str__(self) -> str:
        return f"({self.left} IVJOIN {self.right})"


@dataclass(frozen=True)
class Fixpoint(RAExpr):
    """The simple LFP operator ``Phi(R)`` of Sect. 3.3 (with push-in anchors).

    Semantics (forward mode)::

        R0 <- base            (restricted to F in pi_T(source_anchor) if given)
        Ri <- Ri-1 UNION  pi_{Ri-1.F, base.T, base.V}(Ri-1 |><|_{Ri-1.T = base.F} base)

    until no new tuples appear; the result is the 1-or-more-step closure.
    When ``target_anchor`` is given (and ``source_anchor`` is not) the
    closure is computed backwards from tuples whose ``T`` appears in
    ``pi_F(target_anchor)`` — the second push-selection case of Sect. 5.2.
    """

    base: RAExpr
    source_anchor: Optional[RAExpr] = None
    target_anchor: Optional[RAExpr] = None

    def children(self) -> Tuple[RAExpr, ...]:
        out: List[RAExpr] = [self.base]
        if self.source_anchor is not None:
            out.append(self.source_anchor)
        if self.target_anchor is not None:
            out.append(self.target_anchor)
        return tuple(out)

    def __str__(self) -> str:
        anchors = []
        if self.source_anchor is not None:
            anchors.append(f"source={self.source_anchor}")
        if self.target_anchor is not None:
            anchors.append(f"target={self.target_anchor}")
        suffix = (", " + ", ".join(anchors)) if anchors else ""
        return f"LFP({self.base}{suffix})"


@dataclass(frozen=True)
class EdgeStep:
    """One recursive branch of a SQL'99 recursive union.

    ``relation`` holds the edge tuples; a working tuple with tag
    ``parent_tag`` whose ``T`` matches the edge's ``F`` is extended with the
    edge, producing a tuple ``(origin F, edge T, edge V, child_tag)`` — this
    is the per-edge SELECT of Fig. 2, except that the origin node is kept in
    ``F`` so the recursion yields ancestor/descendant pairs directly.
    """

    relation: RAExpr
    parent_tag: str
    child_tag: str


@dataclass(frozen=True)
class RecursiveUnion(RAExpr):
    """The SQL'99 ``WITH ... RECURSIVE`` fixpoint ``phi(R, R1..Rk)`` (Sect. 3.1).

    The working relation has columns ``(F, T, V, TAG)``.  ``init`` seeds it;
    each iteration evaluates every :class:`EdgeStep` against the *entire*
    accumulated relation (the "star join" the paper criticises) and unions
    the results, until the relation stops growing.
    """

    init: RAExpr
    steps: Tuple[EdgeStep, ...]

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.init,) + tuple(step.relation for step in self.steps)

    def __str__(self) -> str:
        steps = ", ".join(
            f"{step.parent_tag}->{step.child_tag}:{step.relation}" for step in self.steps
        )
        return f"WITH_RECURSIVE(init={self.init}, steps=[{steps}])"


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assignment:
    """One program step ``target <- expression``."""

    target: str
    expression: RAExpr

    def __str__(self) -> str:
        return f"{self.target} <- {self.expression}"


@dataclass
class OperatorProfile:
    """Operator totals of a program (the quantities reported in Table 5)."""

    joins: int = 0
    unions: int = 0
    lfps: int = 0
    recursive_unions: int = 0
    selections: int = 0
    projections: int = 0
    differences: int = 0

    @property
    def total(self) -> int:
        """Total operators ('ALL' in Table 5): joins + unions + LFPs + recursions."""
        return self.joins + self.unions + self.lfps + self.recursive_unions

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (handy for reports)."""
        return {
            "joins": self.joins,
            "unions": self.unions,
            "lfps": self.lfps,
            "recursive_unions": self.recursive_unions,
            "selections": self.selections,
            "projections": self.projections,
            "differences": self.differences,
            "total": self.total,
        }


class Program:
    """An ordered list of assignments plus a result expression.

    Assignments are in dependency order: an assignment may only reference
    temporaries defined by earlier assignments (or base relations).  The
    executor may evaluate them eagerly in order, or lazily on demand from
    the result expression (the paper's top-down strategy).
    """

    def __init__(self, assignments: Sequence[Assignment], result: RAExpr) -> None:
        self._assignments = list(assignments)
        self._result = result

    @property
    def assignments(self) -> List[Assignment]:
        """The assignments in dependency order."""
        return list(self._assignments)

    @property
    def result(self) -> RAExpr:
        """The result expression."""
        return self._result

    def temporaries(self) -> List[str]:
        """Names of all temporaries defined by the program."""
        return [a.target for a in self._assignments]

    def expression_for(self, target: str) -> RAExpr:
        """Return the expression assigned to ``target``."""
        for assignment in self._assignments:
            if assignment.target == target:
                return assignment.expression
        raise KeyError(target)

    def __len__(self) -> int:
        return len(self._assignments)

    def __str__(self) -> str:
        lines = [str(a) for a in self._assignments]
        lines.append(f"RESULT <- {self._result}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Program(assignments={len(self._assignments)})"

    # -- analysis ----------------------------------------------------------------

    def iter_expressions(self) -> Iterator[RAExpr]:
        """Yield every expression node in the program (all assignments + result)."""

        def walk(expr: RAExpr) -> Iterator[RAExpr]:
            yield expr
            for child in expr.children():
                yield from walk(child)

        for assignment in self._assignments:
            yield from walk(assignment.expression)
        yield from walk(self._result)

    def operator_profile(self) -> OperatorProfile:
        """Count joins, unions, LFPs etc. across the whole program."""
        profile = OperatorProfile()
        for expr in self.iter_expressions():
            if isinstance(expr, (Compose, EquiJoin, SemiJoin, AntiJoin, IntervalJoin)):
                profile.joins += 1
            elif isinstance(expr, Union):
                profile.unions += max(0, len(expr.inputs) - 1)
            elif isinstance(expr, Fixpoint):
                profile.lfps += 1
            elif isinstance(expr, RecursiveUnion):
                profile.recursive_unions += 1
                # Each edge step contributes one join and one union per
                # iteration; statically we count them once.
                profile.joins += len(expr.steps)
                profile.unions += len(expr.steps)
            elif isinstance(expr, Select):
                profile.selections += 1
            elif isinstance(expr, (Project, TagProject)):
                profile.projections += 1
            elif isinstance(expr, (Difference, Intersect)):
                profile.differences += 1
        return profile

    def pruned(self) -> "Program":
        """Drop assignments whose temporaries the result never (transitively) uses."""
        needed = {name for name in _scan_names(self._result)}
        keep: List[Assignment] = []
        for assignment in reversed(self._assignments):
            if assignment.target in needed:
                keep.append(assignment)
                needed |= set(_scan_names(assignment.expression))
        keep.reverse()
        return Program(keep, self._result)


def _scan_names(expr: RAExpr) -> Iterator[str]:
    if isinstance(expr, Scan):
        yield expr.name
    for child in expr.children():
        yield from _scan_names(child)
