"""Unit tests for the data mapping tau_d (document shredding)."""

import pytest

from repro.dtd import samples
from repro.dtd.model import DTD, empty, star
from repro.errors import ShreddingError
from repro.shredding.inlining import MISSING_VALUE, ROOT_PARENT, shared_inlining
from repro.shredding.shredder import shred_document, shred_inlined
from repro.workloads.datasets import dept_sample_tree
from repro.xmltree.tree import build_tree


class TestSimpleShredding:
    def test_every_node_becomes_one_tuple(self, dept_tree, dept_dtd, dept_shredded):
        # One R_* edge tuple per node, plus one DOC_ORDER pre/post/size
        # tuple per node (the interval encoding rides along at shred time).
        database = dept_shredded.database
        node_rows = sum(
            len(database.relation(name))
            for name in database.schema.node_relations
        )
        assert node_rows == dept_tree.size()
        assert len(database.relation("DOC_ORDER")) == dept_tree.size()
        assert database.total_rows() == 2 * dept_tree.size()

    def test_root_tuple_uses_sentinel_parent(self, dept_shredded, dept_dtd):
        root_relation = dept_shredded.database.relation("R_dept")
        assert len(root_relation) == 1
        row = next(iter(root_relation))
        assert row[0] == ROOT_PARENT
        assert row[1] == dept_shredded.tree.root.node_id

    def test_edges_preserved(self, dept_tree, dept_shredded):
        course_relation = dept_shredded.database.relation("R_course")
        expected = {
            (node.parent.node_id, node.node_id)
            for node in dept_tree.nodes_with_label("course")
        }
        assert {(row[0], row[1]) for row in course_relation.rows} == expected

    def test_text_values_stored(self, dept_tree, dept_shredded):
        cno_relation = dept_shredded.database.relation("R_cno")
        values = {row[2] for row in cno_relation.rows}
        assert values == {node.value for node in dept_tree.nodes_with_label("cno")}

    def test_missing_values_use_sentinel(self, dept_shredded):
        dept_relation = dept_shredded.database.relation("R_dept")
        assert next(iter(dept_relation))[2] == MISSING_VALUE

    def test_node_resolution_round_trip(self, dept_tree, dept_shredded):
        some = dept_tree.nodes_with_label("project")
        resolved = dept_shredded.nodes_for_ids([node.node_id for node in some])
        assert resolved == sorted(some, key=lambda n: n.node_id)

    def test_undeclared_label_rejected(self):
        dtd = DTD("r", {"r": star("a"), "a": empty()})
        tree = build_tree(("r", [("weird", [])]))
        with pytest.raises(ShreddingError):
            shred_document(tree, dtd)

    def test_table1_sample_database_shape(self):
        # The Table 1 database: 1 dept, 5 courses, 2 students, 2 projects.
        dtd = samples.simplified_dept_dtd()
        tree = dept_sample_tree()
        shredded = shred_document(tree, dtd)
        assert len(shredded.database.relation("R_dept")) == 1
        assert len(shredded.database.relation("R_course")) == 5
        assert len(shredded.database.relation("R_student")) == 2
        assert len(shredded.database.relation("R_project")) == 2


class TestInlinedShredding:
    def test_head_nodes_become_rows(self, dept_tree, dept_dtd):
        partition = shared_inlining(dept_dtd)
        database = shred_inlined(dept_tree, dept_dtd, partition)
        heads = {relation.head for relation in partition.relations}
        expected_rows = sum(
            1 for node in dept_tree.nodes() if node.label in heads
        )
        assert database.total_rows() == expected_rows

    def test_inlined_values_attached_to_head_row(self, dept_tree, dept_dtd):
        partition = shared_inlining(dept_dtd)
        database = shred_inlined(dept_tree, dept_dtd, partition)
        course_relation = partition.relation_for("course")
        stored = database.relation(course_relation.name)
        columns = course_relation.columns()
        cno_index = columns.index("cno")
        courses = dept_tree.nodes_with_label("course")
        expected_values = set()
        for course in courses:
            for child in course.children:
                if child.label == "cno":
                    expected_values.add(child.value)
        assert {row[cno_index] for row in stored.rows} == expected_values

    def test_parent_id_points_to_nearest_head(self, dept_tree, dept_dtd):
        partition = shared_inlining(dept_dtd)
        database = shred_inlined(dept_tree, dept_dtd, partition)
        course_relation = partition.relation_for("course")
        stored = database.relation(course_relation.name)
        head_labels = {relation.head for relation in partition.relations}
        by_id = {node.node_id: node for node in dept_tree.nodes()}
        for row in stored.rows:
            parent_id = row[1]
            if parent_id == ROOT_PARENT:
                continue
            assert by_id[parent_id].label in head_labels

    def test_default_partition_used_when_missing(self, dept_tree, dept_dtd):
        database = shred_inlined(dept_tree, dept_dtd)
        assert database.total_rows() > 0
