"""Unit tests for DTD graph analysis (reachability, SCCs, simple cycles)."""

import pytest

from repro.dtd.graph import DTDGraph
from repro.dtd.model import DTD, empty, ref, seq, star
from repro.dtd import samples


@pytest.fixture()
def dept_graph():
    return DTDGraph(samples.dept_dtd())


@pytest.fixture()
def cross_graph():
    return DTDGraph(samples.cross_dtd())


class TestBasics:
    def test_node_numbering_starts_at_one(self, cross_graph):
        assert cross_graph.number_of("a") == 1
        assert cross_graph.node_at(1) == "a"
        assert len(cross_graph) == 4

    def test_explicit_order_must_cover_types(self):
        dtd = samples.cross_dtd()
        with pytest.raises(ValueError):
            DTDGraph(dtd, order=["a", "b"])

    def test_successors_and_predecessors(self, cross_graph):
        assert set(cross_graph.successors("c")) == {"b", "d"}
        assert set(cross_graph.predecessors("c")) == {"b", "d"}

    def test_has_edge_and_starred(self, dept_graph):
        assert dept_graph.has_edge("dept", "course")
        assert dept_graph.is_starred("dept", "course")
        assert dept_graph.has_edge("course", "cno")
        assert not dept_graph.is_starred("course", "cno")
        assert not dept_graph.has_edge("cno", "dept")

    def test_edges_count_matches_samples(self, cross_graph):
        assert len(cross_graph.edges) == 5


class TestReachability:
    def test_reachable_from_root(self, cross_graph):
        assert cross_graph.reachable("a") == {"b", "c", "d"}

    def test_reachable_excludes_unreachable(self, cross_graph):
        # 'd' reaches c and b (via c) but not a.
        assert cross_graph.reachable("d") == {"b", "c", "d"}
        assert not cross_graph.reaches("d", "a")

    def test_reaches_self_requires_cycle(self, cross_graph):
        assert cross_graph.reaches("b", "b")
        assert not cross_graph.reaches("a", "a")

    def test_shortest_path(self, cross_graph):
        assert cross_graph.shortest_path("a", "d") == ["a", "b", "c", "d"]
        assert cross_graph.shortest_path("d", "a") is None

    def test_shortest_path_cycle(self, cross_graph):
        assert cross_graph.shortest_path("b", "b") == ["b", "c", "b"]


class TestComponentsAndCycles:
    def test_scc_partition(self, cross_graph):
        components = cross_graph.strongly_connected_components()
        as_sets = [frozenset(c) for c in components]
        assert frozenset({"b", "c", "d"}) in as_sets
        assert frozenset({"a"}) in as_sets

    def test_topological_components_root_first(self, cross_graph):
        components = cross_graph.topological_components()
        assert components[0] == ["a"]

    def test_simple_cycle_counts_match_paper(self):
        expected = {
            "cross": 2,
            "bioml-a": 2,
            "bioml-b": 3,
            "bioml-c": 3,
            "bioml-d": 4,
            "gedml": 9,
            "dept": 3,
        }
        for name, count in expected.items():
            dtd = samples.paper_dtds()[name]
            assert DTDGraph(dtd).cycle_count() == count, name

    def test_acyclic_graph_has_no_cycles(self):
        dtd = samples.complete_dag_dtd(5)
        graph = DTDGraph(dtd)
        assert not graph.is_cyclic()
        assert graph.cycle_count() == 0

    def test_is_cyclic_on_recursive_dtd(self, dept_graph):
        assert dept_graph.is_cyclic()

    def test_self_loop_is_a_simple_cycle(self):
        dtd = DTD("r", {"r": star("r")})
        graph = DTDGraph(dtd)
        assert graph.cycle_count() == 1
        assert graph.simple_cycles() == [["r"]]


class TestContainment:
    def test_subgraph_relation(self):
        small = DTDGraph(samples.bioml_subgraph_a())
        big = DTDGraph(samples.bioml_subgraph_d())
        assert small.is_subgraph_of(big)
        assert not big.is_subgraph_of(small)

    def test_edge_counts_match_table5(self):
        expected_edges = {
            "cross": 5,
            "bioml-a": 5,
            "bioml-b": 6,
            "bioml-c": 6,
            "bioml-d": 7,
            "gedml": 11,
        }
        for name, count in expected_edges.items():
            graph = DTDGraph(samples.paper_dtds()[name])
            assert len(graph.edges) == count, name
