"""Unit tests for the DTD conformance validator."""

import pytest

from repro.dtd.model import DTD, choice, empty, opt, plus, ref, seq, star
from repro.dtd import samples
from repro.xmltree.tree import build_tree
from repro.xmltree.validator import conforms, matches_model, validate


class TestContentModelMatching:
    def test_empty_model_matches_no_children(self):
        assert matches_model(empty(), [])
        assert not matches_model(empty(), ["a"])

    def test_single_ref(self):
        assert matches_model(ref("a"), ["a"])
        assert not matches_model(ref("a"), [])
        assert not matches_model(ref("a"), ["b"])
        assert not matches_model(ref("a"), ["a", "a"])

    def test_sequence(self):
        model = seq("a", "b", "c")
        assert matches_model(model, ["a", "b", "c"])
        assert not matches_model(model, ["a", "c", "b"])
        assert not matches_model(model, ["a", "b"])

    def test_choice(self):
        model = choice("a", "b")
        assert matches_model(model, ["a"])
        assert matches_model(model, ["b"])
        assert not matches_model(model, ["a", "b"])

    def test_star(self):
        model = star("a")
        assert matches_model(model, [])
        assert matches_model(model, ["a"] * 5)
        assert not matches_model(model, ["a", "b"])

    def test_plus(self):
        model = plus("a")
        assert not matches_model(model, [])
        assert matches_model(model, ["a", "a"])

    def test_optional(self):
        model = seq(opt("a"), "b")
        assert matches_model(model, ["b"])
        assert matches_model(model, ["a", "b"])
        assert not matches_model(model, ["a", "a", "b"])

    def test_star_of_sequence(self):
        model = star(seq("a", "b"))
        assert matches_model(model, [])
        assert matches_model(model, ["a", "b", "a", "b"])
        assert not matches_model(model, ["a", "b", "a"])

    def test_nested_choice_star(self):
        model = star(choice("a", seq("b", "c")))
        assert matches_model(model, ["a", "b", "c", "a"])
        assert not matches_model(model, ["b"])

    def test_course_production_from_dept(self):
        dtd = samples.dept_dtd()
        model = dtd.production("course")
        assert matches_model(model, ["cno", "title", "prereq", "takenBy"])
        assert matches_model(model, ["cno", "title", "prereq", "takenBy", "project", "project"])
        assert not matches_model(model, ["cno", "title", "takenBy", "prereq"])


class TestTreeValidation:
    def _dtd(self):
        return DTD(
            "r",
            {"r": star("a"), "a": seq("b", opt("c")), "b": empty(), "c": empty()},
            text_types=["b"],
        )

    def test_conforming_tree(self):
        tree = build_tree(("r", [("a", [("b", "x")]), ("a", [("b", "y"), "c"])]))
        assert conforms(tree, self._dtd())
        assert validate(tree, self._dtd()) == []

    def test_wrong_root_reported(self):
        tree = build_tree(("a", [("b", "x")]))
        problems = validate(tree, self._dtd())
        assert any("root label" in p for p in problems)

    def test_undeclared_type_reported(self):
        tree = build_tree(("r", [("weird", [])]))
        problems = validate(tree, self._dtd())
        assert any("undeclared" in p for p in problems)

    def test_content_model_violation_reported(self):
        tree = build_tree(("r", [("a", ["c"])]))  # missing required b
        problems = validate(tree, self._dtd())
        assert any("content model" in p for p in problems)

    def test_text_on_non_text_type_reported(self):
        tree = build_tree(("r", [("a", "oops", [("b", "x")])]))
        problems = validate(tree, self._dtd())
        assert any("text value" in p for p in problems)

    def test_generated_dept_document_valid(self, dept_tree, dept_dtd):
        assert conforms(dept_tree, dept_dtd)
