"""Exp-1 (Fig. 12): selective queries over the cross-cycle DTD.

Reproduces the eight sub-figures of Fig. 12: the four queries Qa–Qd of
Sect. 6.1 evaluated with the three approaches (R = SQLGen-R, E = CycleE,
X = CycleEX) over documents of a fixed element budget whose *shape* varies:

* sub-figures (a)(c)(e)(g): X_L in {8, 12, 16, 20} with X_R = 4;
* sub-figures (b)(d)(f)(h): X_R in {4, 6, 8, 10} with X_L = 12.

The paper fixes the document at 120,000 elements on DB2; the default here
is that size divided by ``DEFAULT_SCALE`` (see EXPERIMENTS.md).  Run with
``python -m repro.experiments.exp1 [--quick]``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.backends import create_backend
from repro.dtd.samples import cross_dtd
from repro.experiments.harness import (
    Approach,
    MeasuredQuery,
    default_approaches,
    format_table,
    measure_query,
    parse_backend_arg,
    parse_int_arg,
)
from repro.shredding.shredder import shred_document
from repro.workloads.datasets import DatasetSpec, scaled_elements
from repro.workloads.queries import CROSS_QUERIES

__all__ = ["run", "main", "PAPER_ELEMENTS", "XL_VALUES", "XR_VALUES"]

PAPER_ELEMENTS = 120_000
XL_VALUES = (8, 12, 16, 20)
XR_VALUES = (4, 6, 8, 10)
FIXED_XR = 4
FIXED_XL = 12


def _measure_for_spec(
    spec: DatasetSpec,
    queries: Dict[str, str],
    approaches: Sequence[Approach],
    dataset_label: str,
    backend: str = "memory",
) -> List[MeasuredQuery]:
    tree = spec.generate()
    shredded = shred_document(tree, spec.dtd)
    translators = {a.name: a.translator(spec.dtd) for a in approaches}
    rows: List[MeasuredQuery] = []
    engine = create_backend(backend, shredded.database)
    try:
        for query_name, query in queries.items():
            for approach in approaches:
                measured = measure_query(
                    approach,
                    spec.dtd,
                    shredded,
                    query,
                    dataset_label=dataset_label,
                    translator=translators[approach.name],
                    engine=engine,
                )
                measured.query = query_name
                rows.append(measured)
    finally:
        engine.close()
    return rows


def run(
    max_elements: Optional[int] = None,
    xl_values: Sequence[int] = XL_VALUES,
    xr_values: Sequence[int] = XR_VALUES,
    queries: Optional[Dict[str, str]] = None,
    approaches: Optional[Sequence[Approach]] = None,
    seed: int = 11,
    backend: str = "memory",
) -> List[MeasuredQuery]:
    """Run the Fig. 12 sweep and return one measurement per (query, approach, dataset)."""
    max_elements = max_elements or scaled_elements(PAPER_ELEMENTS)
    queries = queries or dict(CROSS_QUERIES)
    approaches = list(approaches or default_approaches())
    dtd = cross_dtd()
    rows: List[MeasuredQuery] = []
    for x_l in xl_values:
        spec = DatasetSpec(dtd, x_l=x_l, x_r=FIXED_XR, max_elements=max_elements, seed=seed)
        rows.extend(
            _measure_for_spec(spec, queries, approaches, f"XL={x_l},XR={FIXED_XR}", backend)
        )
    for x_r in xr_values:
        spec = DatasetSpec(dtd, x_l=FIXED_XL, x_r=x_r, max_elements=max_elements, seed=seed)
        rows.extend(
            _measure_for_spec(spec, queries, approaches, f"XL={FIXED_XL},XR={x_r}", backend)
        )
    return rows


def summarize(rows: List[MeasuredQuery]) -> str:
    """Format the measurements as the per-sub-figure series of Fig. 12."""
    table_rows = [
        (
            row.query,
            row.dataset,
            row.approach,
            f"{row.execution_seconds:.3f}",
            f"{row.translation_seconds:.3f}",
            row.result_rows,
            row.document_elements,
        )
        for row in rows
    ]
    return format_table(
        ["query", "dataset", "approach", "exec_s", "translate_s", "rows", "elements"],
        table_rows,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: print the Fig. 12 series."""
    argv = list(sys.argv[1:] if argv is None else argv)
    backend = parse_backend_arg(argv)
    seed = parse_int_arg(argv, "--seed", 11)
    elements = parse_int_arg(argv, "--elements")
    optimize_level = parse_int_arg(argv, "--optimize-level")
    approaches = (
        default_approaches(optimize_level=optimize_level)
        if optimize_level is not None
        else None
    )
    quick = "--quick" in argv
    if quick:
        rows = run(
            max_elements=elements or 1500,
            xl_values=(8, 12),
            xr_values=(4, 8),
            seed=seed,
            backend=backend,
            approaches=approaches,
        )
    else:
        rows = run(max_elements=elements, seed=seed, backend=backend, approaches=approaches)
    print("Exp-1 (Fig. 12): Qa-Qd over the cross-cycle DTD")
    print(summarize(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
