"""Experiment harness reproducing the paper's evaluation (Sect. 6).

Each ``expN`` module regenerates one table or figure:

* ``exp1`` — Fig. 12: Qa–Qd over the cross-cycle DTD, varying X_L and X_R;
* ``exp2`` — Fig. 13: pushing selections into the LFP operator;
* ``exp3`` — Fig. 14: scalability with the dataset size;
* ``exp4`` — Fig. 16/Table 4 (BIOML) and Fig. 17 (GedML);
* ``exp5`` — Table 5: operator counts of CycleE vs CycleEX, plus the
  Example 4.2 operator-growth comparison.

Every module exposes ``run(...)`` returning structured rows and a
``main()`` that prints the same series the paper plots; ``python -m
repro.experiments.expN`` regenerates the artifact from the command line.
Dataset sizes are scaled down from the paper's 120,000-element DB2
documents by ``repro.workloads.datasets.DEFAULT_SCALE`` because the
relational engine is pure Python; pass ``scale=1`` to run paper-sized
inputs if you have the patience.
"""

from repro.experiments.harness import (
    Approach,
    MeasuredQuery,
    default_approaches,
    format_table,
    measure_query,
)

__all__ = [
    "Approach",
    "MeasuredQuery",
    "default_approaches",
    "measure_query",
    "format_table",
]
