"""Exp-2 (Fig. 13): pushing selections into the LFP operator.

The paper evaluates two selective queries over the cross-cycle DTD::

    Qe = a[id = Ai]/b//c/d          (selection on the start of the path)
    Qf = a/b//c/d[id = Di]          (selection on the end of the path)

and, for each, two SQL programs — one with the selection pushed into the
LFP operator (Sect. 5.2) and one without — while varying the number of
elements selected by the qualifier from 100 to 50,000.

Identifiers are modelled with text values: the generator assigns each
``b``/``d`` element a value ``label-k`` with ``k < distinct_values``, so a
``text() = "b-0"`` qualifier selects roughly ``count(b) / distinct_values``
elements; the sweep varies ``distinct_values`` to hit the requested
selected-set sizes.  Run with ``python -m repro.experiments.exp2``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends import create_backend
from repro.core.optimize import push_selection_options, standard_options
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd.samples import cross_dtd
from repro.experiments.harness import (
    Approach,
    MeasuredQuery,
    format_table,
    measure_query,
    parse_backend_arg,
    parse_int_arg,
)
from repro.shredding.shredder import shred_document
from repro.workloads.datasets import DatasetSpec, scaled_elements

__all__ = ["run", "main", "PAPER_SELECTED_SIZES"]

PAPER_ELEMENTS = 120_000
PAPER_SELECTED_SIZES = (100, 1_000, 10_000, 50_000)
FIXED_XL = 12
FIXED_XR = 8

# Exp-2 queries: the qualifier value selects a subset of b (Qe) or d (Qf).
QUERY_TEMPLATES: Dict[str, Tuple[str, str]] = {
    "Qe": ('a/b[text() = "{value}"]//c/d', "b"),
    "Qf": ('a/b//c/d[text() = "{value}"]', "d"),
}


@dataclass
class PushMeasurement:
    """One point of Fig. 13: a query at a selected-set size, push vs no push."""

    query: str
    selected_target: int
    selected_actual: int
    push_seconds: float
    nopush_seconds: float
    document_elements: int


def _dataset_for_selectivity(
    max_elements: int, selected: int, label: str, seed: int
) -> Tuple[DatasetSpec, int]:
    """Build a dataset whose ``label`` values select roughly ``selected`` elements."""
    dtd = cross_dtd()
    probe = DatasetSpec(dtd, x_l=FIXED_XL, x_r=FIXED_XR, max_elements=max_elements, seed=seed)
    tree = probe.generate()
    label_count = tree.labels().get(label, 0)
    distinct = max(1, round(label_count / max(1, selected)))
    spec = DatasetSpec(
        dtd,
        x_l=FIXED_XL,
        x_r=FIXED_XR,
        max_elements=max_elements,
        seed=seed,
        distinct_values=distinct,
    )
    return spec, label_count


def run(
    max_elements: Optional[int] = None,
    selected_sizes: Sequence[int] = PAPER_SELECTED_SIZES,
    scale: int = 16,
    seed: int = 23,
    backend: str = "memory",
    optimize_level: Optional[int] = None,
) -> List[PushMeasurement]:
    """Run the Fig. 13 sweep; selected-set sizes are scaled like the dataset."""
    max_elements = max_elements or scaled_elements(PAPER_ELEMENTS)
    dtd = cross_dtd()
    push = Approach(
        "push", DescendantStrategy.CYCLEEX, push_selection_options(), optimize_level
    )
    nopush = Approach(
        "no-push", DescendantStrategy.CYCLEEX, standard_options(), optimize_level
    )
    results: List[PushMeasurement] = []
    for query_name, (template, label) in QUERY_TEMPLATES.items():
        for paper_selected in selected_sizes:
            selected = max(1, paper_selected // scale)
            spec, label_count = _dataset_for_selectivity(max_elements, selected, label, seed)
            tree = spec.generate()
            shredded = shred_document(tree, dtd)
            query = template.format(value=f"{label}-0")
            actual = sum(
                1 for node in tree.nodes_with_label(label) if node.value == f"{label}-0"
            )
            engine = create_backend(backend, shredded.database)
            try:
                push_row = measure_query(
                    push, dtd, shredded, query, dataset_label=query_name, engine=engine
                )
                nopush_row = measure_query(
                    nopush, dtd, shredded, query, dataset_label=query_name, engine=engine
                )
            finally:
                engine.close()
            results.append(
                PushMeasurement(
                    query=query_name,
                    selected_target=selected,
                    selected_actual=actual,
                    push_seconds=push_row.execution_seconds,
                    nopush_seconds=nopush_row.execution_seconds,
                    document_elements=tree.size(),
                )
            )
    return results


def summarize(rows: List[PushMeasurement]) -> str:
    """Format the Fig. 13 series (push vs no push per selected-set size)."""
    return format_table(
        ["query", "selected", "push_s", "no_push_s", "speedup", "elements"],
        [
            (
                row.query,
                row.selected_actual,
                f"{row.push_seconds:.3f}",
                f"{row.nopush_seconds:.3f}",
                f"{row.nopush_seconds / row.push_seconds:.2f}x"
                if row.push_seconds > 0
                else "-",
                row.document_elements,
            )
            for row in rows
        ],
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: print the Fig. 13 series."""
    argv = list(sys.argv[1:] if argv is None else argv)
    backend = parse_backend_arg(argv)
    seed = parse_int_arg(argv, "--seed", 23)
    elements = parse_int_arg(argv, "--elements")
    optimize_level = parse_int_arg(argv, "--optimize-level")
    quick = "--quick" in argv
    if quick:
        rows = run(
            max_elements=elements or 1500,
            selected_sizes=(100, 1000),
            seed=seed,
            backend=backend,
            optimize_level=optimize_level,
        )
    else:
        rows = run(
            max_elements=elements, seed=seed, backend=backend, optimize_level=optimize_level
        )
    print("Exp-2 (Fig. 13): pushing selections into the LFP operator")
    print(summarize(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
