"""The SQLGen-R baseline: descendant axes via SQL'99 multi-relation recursion.

SQLGen-R (Krishnamurthy et al., ICDE 2004; reviewed in Sect. 3.1 of the
paper) derives a query graph from the DTD, decomposes it into strongly
connected components, and emits one SQL'99 ``WITH ... RECURSIVE`` query per
cyclic component — a fixpoint ``phi(R, R1..Rk)`` over one relation per DTD
edge, with every join and union trapped inside the recursive black box.

As in the paper's experiments (Sect. 6, "We tested SQLGen-R by generating a
with...recursive query for each rec(A, B) in our translation framework"),
the baseline here reuses the XPathToEXp framework but expands every
descendant step into an opaque :class:`~repro.expath.ast.EDescendants`
marker, which EXpToSQL lowers to a
:class:`~repro.relational.algebra.RecursiveUnion` over the edges of the
query graph between the two types.  The resulting programs therefore have
the characteristic SQLGen-R cost profile: ``k`` joins and ``k`` unions per
fixpoint iteration, no selection pushing, no reuse of closure results.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.expath_to_sql import ExtendedToSQL, TranslationOptions
from repro.core.xpath_to_expath import DescendantStrategy, XPathToExtended
from repro.dtd.graph import DTDGraph
from repro.dtd.model import DTD
from repro.expath.ast import ExtendedXPathQuery
from repro.relational.algebra import Program
from repro.shredding.inlining import SimpleMapping
from repro.xpath.ast import Path
from repro.xpath.parser import parse_xpath

__all__ = ["SQLGenR"]


class SQLGenR:
    """Translate XPath queries to SQL using the SQL'99 recursion baseline.

    Parameters
    ----------
    dtd:
        The DTD the queries range over.
    mapping:
        Storage mapping; defaults to the simplified per-element-type mapping.
    """

    def __init__(self, dtd: DTD, mapping: Optional[SimpleMapping] = None) -> None:
        self._dtd = dtd
        self._mapping = mapping or SimpleMapping(dtd)
        self._front_end = XPathToExtended(dtd, strategy=DescendantStrategy.RECURSIVE_UNION)
        # SQLGen-R has no small-seed/push optimisations; the recursion is a
        # black box, so the lowering runs with the unoptimised options.
        self._back_end = ExtendedToSQL(
            self._mapping,
            TranslationOptions(use_small_seed=False, push_selections=False),
        )

    @property
    def dtd(self) -> DTD:
        """The DTD being translated over."""
        return self._dtd

    @property
    def mapping(self) -> SimpleMapping:
        """The storage mapping."""
        return self._mapping

    def query_graph_components(self) -> List[List[str]]:
        """Strongly connected components of the DTD graph, topologically ordered.

        This is the component decomposition SQLGen-R performs before
        emitting one recursive query per cyclic component; it is exposed for
        inspection and testing.
        """
        return DTDGraph(self._dtd).topological_components()

    def to_extended(self, query) -> ExtendedXPathQuery:
        """Rewrite an XPath query (string or AST) with EDescendants markers."""
        path = parse_xpath(query) if isinstance(query, str) else query
        return self._front_end.translate(path)

    def translate(self, query) -> Program:
        """Translate an XPath query (string or AST) to a relational program."""
        return self._back_end.translate(self.to_extended(query))
