"""Replay the checked-in regression corpus.

Every case under ``tests/fuzz/corpus/`` is a frozen (DTD, document spec,
query) triple; each must round-trip through serialization and agree across
the full engine grid.  When the fuzzer finds a real bug, the shrunk repro
gets checked in here so the regression stays covered forever.
"""

from pathlib import Path

import pytest

from repro.fuzz.cases import FuzzCase
from repro.fuzz.harness import replay_corpus
from repro.fuzz.oracle import DifferentialOracle

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS_FILES, f"no corpus cases under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "corpus_file", CORPUS_FILES, ids=[path.stem for path in CORPUS_FILES]
)
def test_corpus_case_agrees_on_every_engine(corpus_file):
    case = FuzzCase.load(corpus_file)
    assert FuzzCase.from_json(case.to_json()) == case  # serialization round trip
    outcome = DifferentialOracle().run(case)
    assert outcome.ok, outcome.describe()


def test_replay_corpus_directory():
    outcomes = replay_corpus(CORPUS_DIR)
    assert len(outcomes) == len(CORPUS_FILES)
    assert all(outcome.ok for outcome in outcomes)
