"""Shared infrastructure for the experiment modules.

An :class:`Approach` names one translator configuration (the paper's "R",
"E" and "X" curves); :func:`measure_query` runs one query under one
approach over a shredded document and records translation time, execution
time and result size.  Measurements carry a *backend* axis: the same
translated program can be executed on any registered execution backend
(``memory`` — the in-memory engine — or ``sqlite``), so exp1–exp5 can
compare engines as well as translation strategies.  The experiment modules
assemble these measurements into the rows/series of the paper's figures;
:func:`format_table` renders them as plain-text tables for the console and
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro import obs
from repro.api.config import EngineConfig, resolve_engine_config
from repro.backends import Backend, backend_names, create_backend
from repro.core.expath_to_sql import TranslationOptions
from repro.core.optimize import push_selection_options, standard_options
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd.model import DTD
from repro.shredding.shredder import ShreddedDocument

__all__ = [
    "Approach",
    "MeasuredQuery",
    "default_approaches",
    "measure_query",
    "format_table",
    "parse_backend_arg",
    "parse_int_arg",
]


@dataclass(frozen=True)
class Approach:
    """One translator configuration measured by the experiments.

    The paper's three curves are:

    * ``R`` — SQLGen-R: descendants via the SQL'99 multi-relation recursive
      union (black-box evaluation, no selection pushing);
    * ``E`` — the translation framework with CycleE (Tarjan's regular
      expressions) expanding the descendant axis;
    * ``X`` — the framework with CycleEX, i.e. the paper's approach.

    ``E`` and ``X`` both use the optimised lowering of Sect. 5.2 (prefix
    joins and selections pushed into the LFP operator); they differ only in
    how ``//`` is expanded, which is exactly the comparison the paper makes.

    The knobs resolve through :class:`~repro.api.EngineConfig`
    (:meth:`engine_config`), so an approach is just a *named* engine
    configuration; :meth:`from_config` builds one straight from a config.
    """

    name: str
    strategy: DescendantStrategy
    options: TranslationOptions
    optimize_level: Optional[int] = None

    @classmethod
    def from_config(cls, name: str, config: EngineConfig) -> "Approach":
        """Name an engine configuration as an experiment approach."""
        return cls(
            name,
            config.strategy,
            config.translation_options(),
            config.optimize_level,
        )

    def engine_config(self) -> EngineConfig:
        """This approach's knobs as one :class:`EngineConfig`."""
        return resolve_engine_config(
            None,
            strategy=self.strategy,
            options=self.options,
            optimize_level=self.optimize_level,
        )

    def translator(self, dtd: DTD) -> XPathToSQLTranslator:
        """Build a translator for this approach over ``dtd``."""
        return XPathToSQLTranslator(dtd, config=self.engine_config())


def default_approaches(
    include_cyclee: bool = True, optimize_level: Optional[int] = None
) -> List[Approach]:
    """The approaches compared in Exp-1/3/4: R, E and X (in that order).

    ``optimize_level`` pins the program-optimizer level of every approach
    (``None`` = the pipeline default), giving the experiments an optimizer
    axis alongside backends.
    """
    approaches = [
        Approach(
            "R", DescendantStrategy.RECURSIVE_UNION, standard_options(), optimize_level
        ),
    ]
    if include_cyclee:
        approaches.append(
            Approach("E", DescendantStrategy.CYCLEE, push_selection_options(), optimize_level)
        )
    approaches.append(
        Approach("X", DescendantStrategy.CYCLEEX, push_selection_options(), optimize_level)
    )
    return approaches


@dataclass
class MeasuredQuery:
    """One (approach, query, dataset, backend) measurement."""

    approach: str
    query: str
    dataset: str
    translation_seconds: float
    execution_seconds: float
    result_rows: int
    document_elements: int
    backend: str = "memory"

    @property
    def total_seconds(self) -> float:
        """Translation plus execution time."""
        return self.translation_seconds + self.execution_seconds


def measure_query(
    approach: Approach,
    dtd: DTD,
    shredded: ShreddedDocument,
    query: str,
    dataset_label: str = "",
    translator: Optional[XPathToSQLTranslator] = None,
    backend: str = "memory",
    engine: Optional[Backend] = None,
) -> MeasuredQuery:
    """Translate and execute ``query`` under ``approach``; return the measurement.

    A pre-built translator may be passed so repeated measurements over the
    same DTD do not pay the CycleEX/CycleE table construction each time
    (the paper likewise reports query evaluation time, not translation-table
    setup).  ``backend`` picks the execution engine; for the same reason a
    pre-built ``engine`` over ``shredded.database`` may be passed so a
    sqlite backend loads the document once per dataset, not once per
    measurement (the caller keeps ownership and closes it).  The reported
    execution time covers query execution only, never the document load
    (mirroring how the paper reports warm-database query times).
    """
    translator = translator or approach.translator(dtd)
    with obs.Timer() as translation_timer:
        result = translator.translate(query)
    translation_seconds = translation_timer.seconds

    owned = engine is None
    if engine is None:
        engine = create_backend(backend, shredded.database)
    else:
        backend = engine.name
    try:
        executed = engine.execute(result.program)
        # Use the backend's own timing: it covers exactly the query work,
        # excluding backend bookkeeping (e.g. the sqlite backend's row-count
        # instrumentation and temp-table teardown) and result normalization.
        execution_seconds = executed.stats["elapsed_seconds"]
    finally:
        if owned:
            engine.close()

    return MeasuredQuery(
        approach=approach.name,
        query=query,
        dataset=dataset_label,
        translation_seconds=translation_seconds,
        execution_seconds=execution_seconds,
        result_rows=executed.row_count,
        document_elements=shredded.tree.size(),
        backend=backend,
    )


def parse_backend_arg(argv: List[str], default: str = "memory") -> str:
    """Extract ``--backend NAME`` / ``--backend=NAME`` from an argv list.

    The experiment ``main``s parse flags by hand (they predate argparse
    use); this helper gives them a uniform backend axis.  The recognised
    tokens are *removed* from ``argv`` in place.
    """
    backend = default
    remaining: List[str] = []
    index = 0
    while index < len(argv):
        token = argv[index]
        if token == "--backend":
            if index + 1 >= len(argv):
                raise SystemExit("--backend requires a value")
            backend = argv[index + 1]
            index += 2
            continue
        if token.startswith("--backend="):
            backend = token.split("=", 1)[1]
            index += 1
            continue
        remaining.append(token)
        index += 1
    argv[:] = remaining
    if backend not in backend_names():
        known = ", ".join(backend_names())
        raise SystemExit(f"unknown backend {backend!r} (known: {known})")
    return backend


def parse_int_arg(argv: List[str], flag: str, default: Optional[int] = None) -> Optional[int]:
    """Extract ``<flag> N`` / ``<flag>=N`` from an argv list (like the backend axis).

    Used for the reproducibility knobs (``--seed``, ``--elements``) the CLI
    forwards to the experiment mains.  Recognised tokens are removed from
    ``argv`` in place; an absent flag yields ``default``.
    """
    value = default
    remaining: List[str] = []
    index = 0
    while index < len(argv):
        token = argv[index]
        raw: Optional[str] = None
        if token == flag:
            if index + 1 >= len(argv):
                raise SystemExit(f"{flag} requires a value")
            raw = argv[index + 1]
            index += 2
        elif token.startswith(flag + "="):
            raw = token.split("=", 1)[1]
            index += 1
        else:
            remaining.append(token)
            index += 1
            continue
        try:
            value = int(raw)
        except ValueError:
            raise SystemExit(f"{flag} expects an integer, got {raw!r}") from None
    argv[:] = remaining
    return value


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width plain-text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
