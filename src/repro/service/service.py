""":class:`QueryService` — answer XPath queries over long-lived documents.

One service owns one DTD (plus strategy/options/mapping) and any number of
registered documents.  Against the stateless one-shot path
(:func:`repro.core.pipeline.answer_xpath`) it changes three things:

* **plans are cached** — an LRU :class:`~repro.core.plancache.PlanCache`
  sits behind the translator (the :class:`~repro.core.pipeline.XPathToSQLTranslator`
  ``plan_cache`` hook), keyed by DTD fingerprint × canonical query ×
  (resolved) strategy × options × dialect × optimizer level, so a repeated
  query skips both translation steps and the optimizer passes;
* **documents are stores, not arguments** — :meth:`register_document`
  shreds a document once and keeps its execution backend loaded (the
  in-memory relations stay resident; the SQLite store keeps a persistent
  connection with DDL applied and rows bulk-loaded exactly once), and every
  store memoizes the *prepared* form of each plan it has executed;
* **results are cached too** — a registered document only changes through
  :meth:`QueryService.update_document`, so each store keeps a bounded LRU
  of (plan key -> backend result): answering a repeated query over the
  same document is a lookup, not an execution.  An update drops the
  store's result LRU (version-aware invalidation) but keeps plans and
  prepared programs, which depend only on the DTD.  This is the layer that
  makes warm serving fast; disable it with ``result_cache=False`` to
  measure the plan cache alone;
* **answering is thread-safe** — the plan cache and store registry take
  locks only around dictionary operations, the memory engine's reads are
  lock-free, and the SQLite backend hands each thread its own connection,
  so :meth:`answer_batch` can fan a workload out over a thread pool.

The cache is semantically invisible: for any query, document and
configuration, :meth:`answer` returns node-for-node what a fresh
translator-plus-shred would (the property suite pins this).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Union

from repro import obs
from repro.api.config import EngineConfig, resolve_engine_config
from repro.backends import create_backend
from repro.backends.base import Backend, BackendResult, PreparedProgram
from repro.core.expath_to_sql import TranslationOptions
from repro.core.pipeline import QueryLike, TranslationResult, XPathToSQLTranslator
from repro.core.plancache import CacheInfo, PlanCache, PlanKey
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd.model import DTD
from repro.errors import (
    ConfigError,
    DuplicateDocumentError,
    MutationError,
    SessionClosedError,
    UnknownDocumentError,
)
from repro.live.delta import ShredDelta, merge_deltas
from repro.live.mutations import DocumentMutator, Mutation, mutation_from_dict
from repro.shredding.inlining import SimpleMapping
from repro.shredding.shredder import ShreddedDocument
from repro.xmltree.tree import XMLNode, XMLTree
from repro.xpath.parser import parse_xpath

__all__ = ["DocumentStore", "QueryService"]


class DocumentStore:
    """One registered document: shredded once, backend kept loaded.

    The store also memoizes prepared programs and — because the document
    only changes through the service's ``update_document``, which clears
    them — finished backend results.  Both are
    :class:`PlanCache` instances (one LRU implementation repo-wide) sized
    by the service's plan-cache capacity.  Results are immutable
    (:class:`~repro.backends.base.BackendResult` is frozen), so cache hits
    are safe to hand to many threads at once.
    """

    def __init__(
        self,
        document_id: str,
        shredded: ShreddedDocument,
        backend: Backend,
        prepared_capacity: int,
        result_capacity: int,
    ) -> None:
        self.document_id = document_id
        self.shredded = shredded
        self.backend = backend
        self._prepared = PlanCache(prepared_capacity, name="prepared")
        self._results = PlanCache(result_capacity, name="result")
        # Live-update state: the mutator is created on the first update (it
        # snapshots the interval numbering), and updates serialize on the
        # lock so two concurrent mutation scripts cannot interleave.
        self._mutator: Optional[DocumentMutator] = None
        self._update_lock = threading.Lock()

    def mutator(self, dtd: DTD) -> DocumentMutator:
        """This store's document mutator (created on first use)."""
        if self._mutator is None:
            self._mutator = DocumentMutator(
                self.shredded.tree, dtd, mapping=self.shredded.mapping
            )
        return self._mutator

    def invalidate_results(self) -> None:
        """Drop every memoized result (the document just changed).

        Prepared programs survive: preparation is pruning plus statement
        rendering, both functions of the plan alone — a mutation changes
        the data the statements run over, not the statements.
        """
        self._results.clear()

    @property
    def tree(self) -> XMLTree:
        """The source document."""
        return self.shredded.tree

    def prepared_program(
        self, key: Optional[PlanKey], result: TranslationResult
    ) -> PreparedProgram:
        """The prepared form of ``result``'s program on this store's backend."""
        if key is None:
            return self.backend.prepare(result.program)
        return self._prepared.get_or_create(
            key, lambda: self.backend.prepare(result.program)
        )

    def cached_result(self, key: Optional[PlanKey]) -> Optional[BackendResult]:
        """The memoized result for ``key``, or ``None`` (counts hit/miss)."""
        if key is None:
            return None
        return self._results.get(key)

    def store_result(self, key: Optional[PlanKey], result: BackendResult) -> None:
        """Memoize ``result`` under ``key``."""
        if key is not None:
            self._results.put(key, result)

    def result_cache_info(self) -> CacheInfo:
        """Counters of this store's result cache."""
        return self._results.cache_info()

    def close(self) -> None:
        """Release the store's backend resources."""
        self.backend.close()

    def __repr__(self) -> str:
        return (
            f"DocumentStore(id={self.document_id!r}, "
            f"backend={self.backend.name!r}, "
            f"elements={self.tree.size()})"
        )


class QueryService:
    """Answer XPath queries over one DTD with cached plans and warm stores.

    Parameters
    ----------
    dtd:
        The DTD all queries and documents range over.
    config:
        The preferred way to configure the service: one
        :class:`~repro.api.EngineConfig` supplying strategy, lowering
        options, backend, optimizer level and cache sizing
        (``plan_cache_size`` sizes plans and prepared programs,
        ``result_cache_size`` the per-store result LRU; ``0`` disables a
        layer).  Mutually exclusive with the legacy per-knob arguments.
    strategy / options:
        *(legacy shims; prefer ``config``.)*  Forwarded to the underlying
        translator (same defaults).
    mapping:
        Storage mapping forwarded to the translator (an object, so
        orthogonal to ``config``).
    backend:
        *(legacy shim; prefer ``config``.)*  Execution backend name for
        document stores (``memory`` default).
    cache_capacity:
        *(legacy shim; prefer ``config``.)*  Sizes every cache layer
        (plans, prepared programs, results); ``0`` disables all of them —
        every call translates, prepares and executes afresh, the fully
        stateless baseline for benchmarks.
    plan_cache:
        Pass an existing :class:`PlanCache` to share one cache across
        services (e.g. several services over the same DTD, or all sessions
        of one :class:`~repro.api.Engine`); overrides the configured
        plan-cache sizing.
    result_cache:
        *(legacy shim; prefer ``config``.)*  Memoize finished backend
        results per store (default on; registered documents are immutable,
        so this is semantically invisible).  Off means every answer
        executes on the backend — the mode that isolates plan-cache gains
        in benchmarks.
    optimize_level:
        *(legacy shim; prefer ``config``.)*  Program-optimizer level
        (0/1/2) forwarded to the translator; part of every plan-cache key,
        so services at different levels never alias plans.

    Example
    -------
    >>> from repro.dtd.samples import dept_dtd
    >>> from repro.xmltree.generator import generate_document
    >>> dtd = dept_dtd()
    >>> service = QueryService(dtd)
    >>> store = service.register_document("d1", generate_document(dtd, seed=1))
    >>> nodes = service.answer("dept//project")
    >>> service.cache_info().misses
    1
    >>> nodes == service.answer("dept//project")  # warm: a cache hit
    True
    """

    def __init__(
        self,
        dtd: DTD,
        strategy: Optional[DescendantStrategy] = None,
        options: Optional[TranslationOptions] = None,
        mapping: Optional[SimpleMapping] = None,
        backend: Optional[str] = None,
        cache_capacity: Optional[int] = None,
        plan_cache: Optional[PlanCache] = None,
        result_cache: Optional[bool] = None,
        optimize_level: Optional[int] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        if cache_capacity is not None and cache_capacity < 0:
            raise ConfigError(f"cache_capacity must be >= 0, got {cache_capacity}")
        legacy_mode = config is None
        if not legacy_mode and (cache_capacity is not None or result_cache is not None):
            raise ConfigError(
                "pass either config= or the legacy cache keyword(s), not both"
            )
        config = resolve_engine_config(
            config,
            strategy=strategy,
            options=options,
            backend=backend,
            optimize_level=optimize_level,
            # Legacy sizing: one capacity for every layer, result cache
            # on/off; the config captures the resolved numbers.
            plan_cache_size=cache_capacity,
            result_cache_size=(
                None
                if result_cache is None and cache_capacity is None
                else (0 if result_cache is False else (128 if cache_capacity is None else cache_capacity))
            ),
        )
        self._config = config
        self._dtd = dtd
        self._backend_name = config.backend
        if plan_cache is not None:
            self._plan_cache: Optional[PlanCache] = plan_cache
        elif config.plan_cache_size > 0:
            self._plan_cache = PlanCache(config.plan_cache_size)
        else:
            self._plan_cache = None
        self._translator = XPathToSQLTranslator(
            dtd,
            mapping=mapping,
            plan_cache=self._plan_cache,
            config=config,
        )
        self._prepared_capacity = (
            self._plan_cache.capacity if self._plan_cache is not None else 0
        )
        if legacy_mode:
            # Pre-config contract: results sized like the (possibly shared)
            # plan cache, switched off by result_cache=False.
            self._result_capacity = (
                0 if result_cache is False else self._prepared_capacity
            )
        else:
            self._result_capacity = config.result_cache_size
        # Re-anchor the config on the capacities actually in effect (a
        # shared plan_cache instance brings its own size), so that
        # rebuilding a service from self.config reproduces this one.
        self._config = config.with_(
            plan_cache_size=self._prepared_capacity,
            result_cache_size=self._result_capacity,
        )
        self._stores: "OrderedDict[str, DocumentStore]" = OrderedDict()
        self._lock = threading.Lock()
        self._closed = False

    # -- accessors ---------------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        """The (resolved) engine configuration this service runs under."""
        return self._config

    @property
    def dtd(self) -> DTD:
        """The DTD this service answers queries over."""
        return self._dtd

    @property
    def backend_name(self) -> str:
        """The execution backend document stores run on."""
        return self._backend_name

    @property
    def translator(self) -> XPathToSQLTranslator:
        """The (cache-backed) translator; exposed for inspection and tests."""
        return self._translator

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters (all zeros, capacity 0, when caching is off)."""
        if self._plan_cache is None:
            return CacheInfo(hits=0, misses=0, evictions=0, size=0, capacity=0)
        return self._plan_cache.cache_info()

    def result_cache_info(self) -> CacheInfo:
        """Result-cache counters aggregated across all registered stores."""
        hits = misses = evictions = size = 0
        with self._lock:
            stores = list(self._stores.values())
        for store in stores:
            info = store.result_cache_info()
            hits += info.hits
            misses += info.misses
            evictions += info.evictions
            size += info.size
        return CacheInfo(
            hits=hits,
            misses=misses,
            evictions=evictions,
            size=size,
            capacity=self._result_capacity,
        )

    def document_ids(self) -> List[str]:
        """Ids of all registered documents, in registration order."""
        with self._lock:
            return list(self._stores)

    # -- document registry -------------------------------------------------------

    def register_document(self, document_id: str, tree: XMLTree) -> DocumentStore:
        """Shred ``tree`` once and keep it loaded as a reusable store."""
        self._check_open()
        with self._lock:
            if document_id in self._stores:
                raise DuplicateDocumentError(
                    f"document {document_id!r} is already registered"
                )
        shredded = self._translator.shred(tree)
        store = DocumentStore(
            document_id=document_id,
            shredded=shredded,
            backend=create_backend(self._config, shredded.database),
            prepared_capacity=self._prepared_capacity,
            result_capacity=self._result_capacity,
        )
        with self._lock:
            if self._closed or document_id in self._stores:
                store.close()
                error = (
                    SessionClosedError if self._closed else DuplicateDocumentError
                )
                raise error(
                    f"cannot register {document_id!r}: "
                    + ("service is closed" if self._closed else "already registered")
                )
            self._stores[document_id] = store
        return store

    def unregister_document(self, document_id: str) -> None:
        """Drop a store and release its backend."""
        with self._lock:
            store = self._stores.pop(document_id, None)
        if store is None:
            raise UnknownDocumentError(f"unknown document {document_id!r}")
        store.close()

    def update_document(
        self,
        mutations: Sequence[Union[Mutation, Dict]],
        document_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Apply a mutation script to a registered document and invalidate.

        Each mutation (a :mod:`repro.live.mutations` record or its JSON
        object form) is DTD-validated and applied to the store's tree; the
        merged :class:`~repro.live.delta.ShredDelta` then reaches the
        backend through ``apply_delta`` in one shot, so the relational side
        tracks the tree without re-shredding.  Invalidation is
        version-aware: the store's result LRU is dropped (its entries were
        computed over the old rows), while the plan cache and the store's
        prepared programs survive — both are functions of the DTD and the
        query alone, never of the data.

        A mutation that fails validation raises :class:`MutationError`
        *after* the preceding mutations of the script were applied and
        flushed to the backend (the tree and the relational store never
        diverge); callers wanting all-or-nothing should validate scripts on
        a scratch copy first.  Updates on one store serialize on a lock;
        interleaving an update with in-flight queries on the *same* store
        from other threads is the caller's race to avoid (the process pool
        serializes per worker, so the serving tier is safe).

        Returns a summary dict: applied mutation count and delta row counts.
        """
        self._check_open()
        store = self.store(document_id)
        normalized = [
            mutation_from_dict(m) if isinstance(m, dict) else m for m in mutations
        ]
        with store._update_lock, obs.span(
            "update", document=store.document_id, mutations=len(normalized)
        ) as update_sp:
            mutator = store.mutator(self._dtd)
            delta = ShredDelta()
            error: Optional[MutationError] = None
            applied = 0
            # Defer DOC_ORDER diffing: one renumbering pass per script, not
            # one per mutation (the flush covers exactly the applied prefix).
            mutator.defer_order()
            try:
                for mutation in normalized:
                    try:
                        delta = merge_deltas(delta, mutator.apply(mutation))
                        applied += 1
                    except MutationError as exc:
                        error = exc
                        break
            finally:
                delta = merge_deltas(delta, mutator.flush_order())
            if not delta.is_empty():
                store.backend.apply_delta(delta)
            store.invalidate_results()
            obs.registry().counter("service.invalidations").inc()
            if update_sp:
                update_sp.set(
                    applied=applied,
                    rows_deleted=delta.delete_count(),
                    rows_inserted=delta.insert_count(),
                )
        if error is not None:
            raise error
        summary: Dict[str, object] = dict(delta.summary())
        summary["document"] = store.document_id
        summary["applied"] = applied
        return summary

    def store(self, document_id: Optional[str] = None) -> DocumentStore:
        """Resolve a document id (or the sole registered document)."""
        self._check_open()
        with self._lock:
            if document_id is None:
                if len(self._stores) == 1:
                    return next(iter(self._stores.values()))
                raise UnknownDocumentError(
                    f"document_id is required: {len(self._stores)} document(s) registered"
                )
            try:
                return self._stores[document_id]
            except KeyError:
                known = ", ".join(sorted(self._stores)) or "<none>"
                raise UnknownDocumentError(
                    f"unknown document {document_id!r} (registered: {known})"
                ) from None

    # -- answering ---------------------------------------------------------------

    def plan(self, query: QueryLike) -> TranslationResult:
        """Translate ``query`` (through the plan cache when enabled)."""
        self._check_open()
        return self._translator.translate(query)

    def execute(
        self, query: QueryLike, document_id: Optional[str] = None
    ) -> BackendResult:
        """Answer ``query`` on a store, returning the raw backend result."""
        return self._execute(self.store(document_id), query)

    def _execute(self, store: DocumentStore, query: QueryLike) -> BackendResult:
        """Answer ``query`` on an already-resolved store.

        The query is parsed exactly once; on the fully warm path the call
        is one key computation plus one result-cache lookup.
        """
        obs.registry().counter("service.queries").inc()
        with obs.span(
            "answer", document=store.document_id, backend=store.backend.name
        ) as answer_sp:
            parsed = parse_xpath(query) if isinstance(query, str) else query
            if answer_sp:
                answer_sp.set(query=str(parsed))
            key = (
                self._translator.plan_key(parsed)
                if self._plan_cache is not None
                else None
            )
            cached = store.cached_result(key)
            if cached is not None:
                answer_sp.set(result_cache_hit=True)
                return cached
            answer_sp.set(result_cache_hit=False)
            prepared = store.prepared_program(key, self.plan(parsed))
            result = store.backend.execute_prepared(prepared)
            store.store_result(key, result)
            return result

    def answer(
        self, query: QueryLike, document_id: Optional[str] = None
    ) -> List[XMLNode]:
        """Answer ``query``, returning matching XML nodes in document order."""
        store = self.store(document_id)
        executed = self._execute(store, query)
        return store.shredded.nodes_for_ids(executed.node_ids())

    def answer_batch(
        self,
        queries: Sequence[QueryLike],
        document_id: Optional[str] = None,
        threads: int = 1,
    ) -> List[List[XMLNode]]:
        """Answer many queries over one store; optionally across threads.

        Results come back in input order regardless of thread count.  With
        ``threads > 1`` queries run on a thread pool: safe because plans are
        immutable once cached, the memory engine's reads are lock-free, and
        the SQLite backend gives each pool thread its own connection.
        """
        if threads < 1:
            raise ConfigError(f"threads must be >= 1, got {threads}")
        store = self.store(document_id)

        def one(query: QueryLike) -> List[XMLNode]:
            executed = self._execute(store, query)
            return store.shredded.nodes_for_ids(executed.node_ids())

        if threads == 1 or len(queries) <= 1:
            return [one(query) for query in queries]
        with obs.span("batch", queries=len(queries), threads=threads):
            # Pool workers have no thread-local trace of their own; they
            # adopt the dispatching thread's batch span so their work lands
            # under its tree (child appends are GIL-atomic).
            parent = obs.current_span()

            def traced(query: QueryLike) -> List[XMLNode]:
                with obs.attach(parent):
                    return one(query)

            with ThreadPoolExecutor(max_workers=threads) as pool:
                return list(pool.map(traced, queries))

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close every store's backend; the service rejects further calls."""
        with self._lock:
            self._closed = True
            stores, self._stores = list(self._stores.values()), OrderedDict()
        for store in stores:
            store.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("query service is closed")

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryService(dtd={self._dtd.name!r}, backend={self._backend_name!r}, "
            f"documents={self.document_ids()}, cache={self.cache_info()})"
        )
