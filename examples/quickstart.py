#!/usr/bin/env python3
"""Quickstart: the public ``Engine``/``Session`` API on the paper's running example.

The script walks through the whole pipeline on the dept DTD of Fig. 1(a),
driving everything through :mod:`repro.api` — the supported entry point:

1. inspect the recursive DTD and build an :class:`~repro.api.Engine` over it;
2. generate a synthetic document and open a :class:`~repro.api.Session`
   (the document is shredded into relations once, Table 1 style);
3. translate ``Q1 = dept//project`` and print the extended XPath, the
   relational program with the simple LFP operator and the SQL (Example 3.5);
4. answer Q1 through the session and check it against direct XPath
   evaluation — the central invariant ``Q(T) = Q'(tau_d(T))``;
5. do the same for the rich-qualifier query Q2 of Example 2.2, then answer
   Q1 again under the SQLGen-R baseline configuration for comparison.

Run with ``python examples/quickstart.py``.
"""

from repro import Engine, EngineConfig, SQLDialect, generate_document
from repro.dtd.samples import dept_dtd, describe
from repro.workloads.queries import DEPT_QUERIES
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath


def main() -> None:
    dtd = dept_dtd()
    print("== The dept DTD (Fig. 1a) ==")
    print(describe(dtd))
    print(dtd.to_text())

    # One engine = one DTD + one frozen configuration.
    engine = Engine.from_dtd(dtd, EngineConfig(strategy="cycleex"))

    # Generate a document and open a session over it (shredded once).
    document = generate_document(dtd, x_l=7, x_r=3, seed=42, max_elements=2000)
    print(f"generated document: {document.size()} elements, height {document.height()}")

    with engine.open_session(document) as session:
        # Q1 = dept//project.
        print("\n== Q1 = dept//project ==")
        plan = engine.translate(DEPT_QUERIES["Q1"])
        print("extended XPath rewriting:")
        print(plan.extended)
        print("\nrelational program (with the simple LFP operator):")
        print(plan.program)
        print("\nSQL (DB2 dialect):")
        print(engine.sql(DEPT_QUERIES["Q1"], SQLDialect.DB2))

        result = session.answer(DEPT_QUERIES["Q1"])
        oracle = evaluate_xpath(document, parse_xpath(DEPT_QUERIES["Q1"]))
        print(f"\nprojects found via SQL: {len(result)}; via direct XPath: {len(oracle)}")
        assert {n.node_id for n in result} == {n.node_id for n in oracle}

        # Q2: rich qualifiers with negation — beyond SQLGen-R's fragment.
        print("\n== Q2 (Example 2.2, rich qualifiers) ==")
        cno_values = [n.value for n in document.nodes_with_label("cno")]
        q2 = DEPT_QUERIES["Q2"].replace("cs66", cno_values[0] if cno_values else "cs66")
        print(q2)
        result = session.answer(q2)
        oracle = evaluate_xpath(document, parse_xpath(q2))
        print(f"courses found via SQL: {len(result)}; via direct XPath: {len(oracle)}")
        assert {n.node_id for n in result} == {n.node_id for n in oracle}

    # The same query through the SQLGen-R baseline: one knob in the config.
    baseline = Engine.from_dtd(dtd, EngineConfig(strategy="recursive-union"))
    with baseline.open_session(document) as session:
        baseline_result = session.answer(DEPT_QUERIES["Q1"])
        print(f"\nSQLGen-R baseline answers Q1 with {len(baseline_result)} projects "
              "(same result, SQL'99 recursion instead of the simple LFP)")

    print("\nquickstart finished: all answers match the XPath oracle")


if __name__ == "__main__":
    main()
