"""The data mapping ``tau_d``: shred XML documents into relational databases."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.dtd.model import DTD
from repro.errors import ShreddingError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import DOC_ORDER
from repro.shredding.inlining import (
    MISSING_VALUE,
    ROOT_PARENT,
    InliningPartition,
    SimpleMapping,
    shared_inlining,
)
from repro.xmltree.tree import XMLNode, XMLTree

__all__ = ["ShreddedDocument", "interval_numbering", "shred_document", "shred_inlined"]


@dataclass
class ShreddedDocument:
    """A shredded document: the database plus bookkeeping to map results back.

    Attributes
    ----------
    database:
        The populated relational database.
    mapping:
        The :class:`SimpleMapping` that produced it.
    tree:
        The source document (kept so node ids in query results can be
        resolved back to :class:`XMLNode` objects).
    """

    database: Database
    mapping: SimpleMapping
    tree: XMLTree

    def node_for_id(self, node_id: object) -> XMLNode:
        """Resolve a stored node identifier back to its XML node."""
        return self.tree.node(int(node_id))

    def nodes_for_ids(self, node_ids) -> List[XMLNode]:
        """Resolve many identifiers, returning nodes in document order."""
        nodes = [self.node_for_id(node_id) for node_id in node_ids]
        return sorted(nodes, key=lambda node: node.node_id)


def interval_numbering(tree: XMLTree) -> Set[Tuple[int, int, int, int]]:
    """The pre/post/size document-order numbering of ``tree``.

    One ``(node_id, pre, post, size)`` tuple per node, where ``pre`` is the
    depth-first visit rank, ``post`` the finish rank and ``size`` the number
    of proper descendants.  Pre-order ranks are contiguous per subtree, so
    the proper descendants of a node are exactly the nodes whose ``pre``
    lies in the half-open window ``(pre, pre + size]`` — the range predicate the
    ``interval`` descendant strategy joins on.
    """
    rows: Set[Tuple[int, int, int, int]] = set()
    if tree.root is None:
        return rows
    pre_of: Dict[int, int] = {}
    pre_counter = 0
    post_counter = 0
    stack: List[Tuple[XMLNode, bool]] = [(tree.root, False)]
    while stack:
        node, finished = stack.pop()
        if not finished:
            pre_of[node.node_id] = pre_counter
            pre_counter += 1
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))
        else:
            pre = pre_of[node.node_id]
            size = pre_counter - pre - 1
            rows.add((node.node_id, pre, post_counter, size))
            post_counter += 1
    return rows


def shred_document(
    tree: XMLTree, dtd: DTD, mapping: Optional[SimpleMapping] = None
) -> ShreddedDocument:
    """Shred ``tree`` with the simplified mapping ``R_A(F, T, V)``.

    Every node becomes one tuple in the relation of its element type: the
    parent's node id (``'_'`` for the document root), its own node id, and
    its text value (``'_'`` when absent), exactly as in Table 1.  The
    ``DOC_ORDER`` side relation additionally records every node's interval
    (pre/post/size) numbering for the range-join descendant strategy.
    """
    mapping = mapping or SimpleMapping(dtd)
    schema = mapping.database_schema()
    rows: Dict[str, Set[Tuple]] = {name: set() for name in schema.relation_names}

    for node in tree.nodes():
        if not dtd.has_type(node.label):
            raise ShreddingError(
                f"node {node.node_id} has element type {node.label!r} "
                f"not declared by DTD {dtd.name!r}"
            )
        relation_name = mapping.relation_for(node.label)
        parent_id = ROOT_PARENT if node.parent is None else node.parent.node_id
        value = node.value if node.value is not None else MISSING_VALUE
        rows[relation_name].add((parent_id, node.node_id, value))

    if schema.has_relation(DOC_ORDER):
        rows[DOC_ORDER] = interval_numbering(tree)

    database = Database(schema)
    for name, relation_rows in rows.items():
        database.set_relation(
            name, Relation(schema.relation(name).columns, relation_rows, name=name)
        )
    return ShreddedDocument(database=database, mapping=mapping, tree=tree)


def shred_inlined(
    tree: XMLTree, dtd: DTD, partition: Optional[InliningPartition] = None
) -> Database:
    """Shred ``tree`` with the shared-inlining layout.

    Each subgraph-head node becomes one row of its relation; descendants
    inlined into that subgraph contribute their text values to the row's
    value columns.  The ``parentId`` of a head row is the nearest ancestor
    that heads a relation (``'_'`` for the document root) and ``parentCode``
    records that ancestor's element type when disambiguation is needed.
    """
    partition = partition or shared_inlining(dtd)
    schema = partition.database_schema()
    heads = {relation.head for relation in partition.relations}
    rows: Dict[str, Set[Tuple]] = {relation.name: set() for relation in partition.relations}

    def nearest_head_ancestor(node: XMLNode) -> Optional[XMLNode]:
        current = node.parent
        while current is not None and current.label not in heads:
            current = current.parent
        return current

    def inlined_values(node: XMLNode, relation) -> Dict[str, str]:
        """Collect text values of descendants inlined into ``node``'s row."""
        values: Dict[str, str] = {}
        if node.label in relation.value_columns and node.value is not None:
            values[relation.value_columns[node.label]] = node.value
        stack = list(node.children)
        while stack:
            child = stack.pop()
            if child.label in heads:
                continue  # child starts its own subgraph row
            if child.label in relation.value_columns and child.value is not None:
                values.setdefault(relation.value_columns[child.label], child.value)
            stack.extend(child.children)
        return values

    for node in tree.nodes():
        if node.label not in heads:
            continue
        relation = partition.relation_for(node.label)
        ancestor = nearest_head_ancestor(node)
        parent_id = ROOT_PARENT if ancestor is None else ancestor.node_id
        row: List[object] = [node.node_id, parent_id]
        if relation.has_parent_code:
            row.append(ancestor.label if ancestor is not None else ROOT_PARENT)
        values = inlined_values(node, relation)
        for member in relation.members:
            column = relation.value_columns.get(member)
            if column is not None:
                row.append(values.get(column, MISSING_VALUE))
        rows[relation.name].add(tuple(row))

    database = Database(schema)
    for name, relation_rows in rows.items():
        database.set_relation(
            name, Relation(schema.relation(name).columns, relation_rows, name=name)
        )
    return database
