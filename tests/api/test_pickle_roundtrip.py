"""Pickle-equivalence property tests for every multiprocessing payload.

The process-pool serving tier ships :class:`EngineConfig`,
:class:`PlanKey`, :class:`BackendResult` and fuzz :class:`DocumentSpec`
values over ``multiprocessing`` queues — i.e. through ``pickle``.  These
tests pin the contract next to the existing ``to_dict``/``from_dict``
round-trips: pickling (at every protocol the interpreter supports) must
reproduce each value *exactly*, agreeing with the JSON wire form wherever
one exists, across the same configuration grid the fuzz oracle exercises.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.api import EngineConfig
from repro.backends import create_backend
from repro.backends.base import BackendResult
from repro.core.optimize import push_selection_options
from repro.core.plancache import PlanKey, plan_key
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd import samples
from repro.fuzz.cases import DocumentSpec, FuzzCase
from repro.fuzz.oracle import default_engines
from repro.relational.sqlgen import SQLDialect
from repro.xmltree.generator import generate_document

PROTOCOLS = list(range(2, pickle.HIGHEST_PROTOCOL + 1))


def _round_trips(value, protocol):
    clone = pickle.loads(pickle.dumps(value, protocol=protocol))
    assert clone == value
    assert type(clone) is type(value)
    return clone


class TestEngineConfigPickle:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_full_fuzz_grid_round_trips_exactly_as_json(self, protocol):
        for engine in default_engines():
            config = engine.config
            clone = _round_trips(config, protocol)
            # The pickle transport and the JSON wire form agree field by
            # field: a worker built from a pickled config is the same
            # engine as one built from the JSON dict.
            assert clone.to_dict() == config.to_dict()
            assert EngineConfig.from_dict(json.loads(json.dumps(clone.to_dict()))) == config
            assert hash(clone) == hash(config)

    def test_pickled_config_still_validates_with_(self):
        clone = pickle.loads(pickle.dumps(EngineConfig(backend="sqlite")))
        assert clone.with_(optimize_level=0).optimize_level == 0


class TestPlanKeyPickle:
    def _keys(self):
        for dtd in (samples.cross_dtd(), samples.dept_dtd()):
            for strategy in (
                DescendantStrategy.CYCLEEX,
                DescendantStrategy.CYCLEE,
            ):
                yield plan_key(
                    dtd,
                    "a//d" if dtd.name == "cross" else "dept//project",
                    strategy=strategy,
                    options=push_selection_options(),
                    dialect=SQLDialect.SQLITE,
                    optimize_level=1,
                )

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_plan_keys_round_trip_and_stay_cache_compatible(self, protocol):
        for key in self._keys():
            clone = _round_trips(key, protocol)
            # Equal AND same hash: a key shipped to a worker must land on
            # the same cache entry as the original.
            assert hash(clone) == hash(key)
            assert isinstance(clone, PlanKey)

    def test_translator_accepts_a_pickled_key_as_its_own(self):
        translator = XPathToSQLTranslator(samples.cross_dtd())
        key = translator.plan_key("a//d")
        assert pickle.loads(pickle.dumps(key)) == translator.plan_key("a//d")


class TestBackendResultPickle:
    def _results(self):
        dtd = samples.cross_dtd()
        tree = generate_document(dtd, seed=7)
        translator = XPathToSQLTranslator(dtd)
        shredded = translator.shred(tree)
        program = translator.translate("a//d").program
        for backend_name in ("memory", "sqlite"):
            backend = create_backend(backend_name, shredded.database)
            try:
                yield backend.execute(program)
            finally:
                backend.close()

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_real_results_round_trip_exactly(self, protocol):
        for result in self._results():
            clone = _round_trips(result, protocol)
            assert clone.rows == result.rows
            assert clone.columns == result.columns
            assert clone.node_ids() == result.node_ids()
            # stats is a Mapping; values must survive bit-exact (they feed
            # the merged benchmark numbers).
            assert dict(clone.stats) == dict(result.stats)

    def test_rows_stay_a_frozenset(self):
        result = next(iter(self._results()))
        clone = pickle.loads(pickle.dumps(result))
        assert isinstance(clone.rows, frozenset)


class TestDocumentSpecPickle:
    SPECS = [
        DocumentSpec(),
        DocumentSpec(x_l=2, x_r=9, max_elements=40, seed=13, distinct_values=2),
        DocumentSpec(max_elements=1, seed=0),
    ]

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_specs_round_trip(self, protocol):
        for spec in self.SPECS:
            clone = _round_trips(spec, protocol)
            assert hash(clone) == hash(spec)

    def test_pickled_spec_regenerates_the_identical_document(self):
        # The property that matters to the pool: a worker that receives a
        # pickled spec must materialise byte-for-byte the same document the
        # parent would (documents are shipped as recipes, not trees).
        dtd = samples.cross_dtd()
        for spec in self.SPECS:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone.generate(dtd).to_xml() == spec.generate(dtd).to_xml()

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_spec_pickle_agrees_with_the_json_wire_form(self, protocol):
        for spec in self.SPECS:
            case = FuzzCase(
                label="pin",
                dtd_text=samples.cross_dtd().to_text(),
                query="a//d",
                document=spec,
            )
            via_json = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
            via_pickle = pickle.loads(pickle.dumps(case, protocol=protocol))
            assert via_pickle == via_json == case
            assert via_pickle.document == spec
