"""Tests for query answering over GAV XML views (Sect. 3.4, Examples 3.2-3.4)."""

import random

import pytest

from repro.dtd import samples
from repro.errors import ViewError
from repro.live.fuzzer import RandomMutationGenerator
from repro.live.mutations import DocumentMutator
from repro.views.gav import GAVView, answer_on_view, extract_view
from repro.xmltree.generator import generate_document
from repro.xmltree.validator import conforms
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath


@pytest.fixture(scope="module")
def fig3():
    """The Fig. 3(a)/(b) view/source pair plus a generated source document."""
    view_dtd = samples.fig3_view_dtd()
    source_dtd = samples.fig3_source_dtd()
    source_tree = generate_document(source_dtd, x_l=7, x_r=3, seed=61, max_elements=600)
    return view_dtd, source_dtd, source_tree


@pytest.fixture(scope="module")
def dag_pair():
    """The D1(n)/D2(n) pair of Fig. 3(c)/(d) (Example 3.3)."""
    n = 5
    view_dtd = samples.complete_dag_dtd(n)
    source_dtd = samples.complete_dag_with_blocker_dtd(n)
    source_tree = generate_document(source_dtd, x_l=8, x_r=2, seed=67, max_elements=800)
    return n, view_dtd, source_dtd, source_tree


class TestViewExtraction:
    def test_view_conforms_to_view_dtd(self, fig3):
        view_dtd, _, source_tree = fig3
        view = extract_view(source_tree, view_dtd)
        assert conforms(view, view_dtd)

    def test_view_is_smaller_when_source_uses_extra_edges(self, fig3):
        view_dtd, _, source_tree = fig3
        view = extract_view(source_tree, view_dtd)
        assert view.size() <= source_tree.size()

    def test_view_drops_excluded_children(self, dag_pair):
        _, view_dtd, _, source_tree = dag_pair
        view = extract_view(source_tree, view_dtd)
        assert view.labels().get("B", 0) == 0

    def test_root_mismatch_rejected(self, fig3):
        view_dtd, _, _ = fig3
        from repro.xmltree.tree import build_tree

        with pytest.raises(ViewError):
            extract_view(build_tree(("wrong", [])), view_dtd)


class TestViewDefinition:
    def test_containment_enforced(self):
        with pytest.raises(ViewError):
            GAVView(samples.fig3_source_dtd(), samples.fig3_view_dtd())

    def test_containment_accepted(self):
        view = GAVView(samples.fig3_view_dtd(), samples.fig3_source_dtd())
        assert view.view_dtd.name == "fig3-view"
        assert view.source_dtd is not None

    def test_rewrite_produces_extended_query(self):
        view = GAVView(samples.fig3_view_dtd())
        rewritten = view.rewrite("A//C")
        assert "C" in str(rewritten)


class TestQueryAnswering:
    @pytest.mark.parametrize("query", ["A//C", "A//B", "A/B/A", "A//B[A]", "//C"])
    def test_answer_equals_query_over_materialized_view(self, fig3, query):
        """Q'(T) = Q(V): the rewritten query on the source equals Q on the view."""
        view_dtd, source_dtd, source_tree = fig3
        gav = GAVView(view_dtd, source_dtd)
        via_rewrite = {n.path_from_root()[-1] + str(n.node_id) for n in gav.answer(query, source_tree)}

        view = extract_view(source_tree, view_dtd)
        on_view = evaluate_xpath(view, parse_xpath(query))
        # Node identities differ between V and T; compare by root-path shape,
        # which the GAV mapping preserves.
        def path_key(node):
            return tuple(node.path_from_root()), _sibling_signature(node)

        def _sibling_signature(node):
            # Position among same-label siblings along the path, to make the
            # comparison exact even with repeated labels.
            signature = []
            current = node
            while current.parent is not None:
                same = [c for c in current.parent.children if c.label == current.label]
                signature.append(same.index(current))
                current = current.parent
            return tuple(reversed(signature))

        # Re-answer with node objects to build comparable keys.
        rewrite_nodes = gav.answer(query, source_tree)
        assert {path_key(n) for n in rewrite_nodes} == {path_key(n) for n in on_view}

    def test_example_3_3_blocked_nodes_excluded(self, dag_pair):
        n, view_dtd, source_dtd, source_tree = dag_pair
        gav = GAVView(view_dtd, source_dtd)
        query = f"//A{n}"
        answered = gav.answer(query, source_tree)
        # No answered node may be reached through a B node in the source.
        for node in answered:
            assert "B" not in node.path_from_root()
        # And the answer must match evaluating on the materialised view.
        view = extract_view(source_tree, view_dtd)
        assert len(answered) == len(evaluate_xpath(view, parse_xpath(query)))

    def test_answer_on_view_helper(self, fig3):
        view_dtd, _, source_tree = fig3
        helper_answer = answer_on_view("A//C", view_dtd, source_tree)
        class_answer = GAVView(view_dtd).answer("A//C", source_tree)
        assert [n.node_id for n in helper_answer] == [n.node_id for n in class_answer]

    def test_answer_via_rdbms_matches_native(self, fig3):
        view_dtd, source_dtd, source_tree = fig3
        gav = GAVView(view_dtd, source_dtd)
        native = {n.node_id for n in gav.answer("A//C", source_tree)}
        via_sql = {n.node_id for n in gav.answer_via_rdbms("A//C", source_tree)}
        assert via_sql == native


class TestViewsUnderMutation:
    """Issue 10: GAV answering stays correct over a live-mutated source."""

    @pytest.fixture()
    def mutated_fig3(self, fig3):
        view_dtd, source_dtd, source_tree = fig3
        mutated = source_tree.copy()
        script = RandomMutationGenerator(source_dtd, random.Random(31)).script(mutated)
        assert script, "fig3 source too constrained to mutate"
        DocumentMutator(mutated, source_dtd).apply_script(script)
        return view_dtd, source_dtd, mutated

    def test_mutated_source_still_conforms(self, mutated_fig3):
        _, source_dtd, mutated = mutated_fig3
        assert conforms(mutated, source_dtd)

    def test_extracted_view_of_mutated_source_conforms(self, mutated_fig3):
        view_dtd, _, mutated = mutated_fig3
        assert conforms(extract_view(mutated, view_dtd), view_dtd)

    @pytest.mark.parametrize("query", ["A//C", "A//B", "A/B/A"])
    def test_rewrite_matches_materialized_view_after_mutation(
        self, mutated_fig3, query
    ):
        """Q'(M(T)) = Q(V(M(T))): the view invariant survives source updates."""
        view_dtd, source_dtd, mutated = mutated_fig3
        gav = GAVView(view_dtd, source_dtd)
        answered = gav.answer(query, mutated)
        view = extract_view(mutated, view_dtd)
        on_view = evaluate_xpath(view, parse_xpath(query))
        assert len(answered) == len(on_view), query

    def test_rdbms_arm_matches_native_after_mutation(self, mutated_fig3):
        view_dtd, source_dtd, mutated = mutated_fig3
        gav = GAVView(view_dtd, source_dtd)
        native = {n.node_id for n in gav.answer("A//C", mutated)}
        via_sql = {n.node_id for n in gav.answer_via_rdbms("A//C", mutated)}
        assert via_sql == native
