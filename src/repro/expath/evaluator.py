"""Evaluation of extended XPath queries over XML trees.

The semantics (Sect. 3.2) extend the XPath semantics with:

* variables — a variable denotes its defining expression, so evaluating
  ``X`` at a set of context nodes evaluates the bound expression there;
* general Kleene closure ``E*`` — zero or more applications of ``E``
  starting from the context nodes, computed as a fixpoint.

This evaluator is the native-engine realisation of extended XPath alluded to
in Sect. 3.4 (regular-XPath-style evaluation in XML engines) and doubles as
the oracle for the extended-XPath-to-SQL translation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import ExtendedXPathError
from repro.expath.ast import (
    EAnd,
    EDescendants,
    EEmpty,
    EEmptySet,
    EIntervals,
    ELabel,
    ENot,
    EOr,
    EPathQual,
    EQualified,
    EQualifier,
    ESlash,
    EStar,
    ETextEquals,
    EUnion,
    EVar,
    Expr,
    ExtendedXPathQuery,
)
from repro.xmltree.tree import XMLNode, XMLTree

__all__ = ["ExtendedXPathEvaluator", "evaluate_extended"]


class ExtendedXPathEvaluator:
    """Evaluate extended XPath expressions/queries over a fixed XML tree."""

    def __init__(self, tree: XMLTree, query: Optional[ExtendedXPathQuery] = None) -> None:
        self._tree = tree
        self._query = query

    # -- public API -------------------------------------------------------------

    def evaluate_query(self, query: ExtendedXPathQuery) -> List[XMLNode]:
        """Evaluate a full query at the virtual root (document order)."""
        self._query = query
        result = self._eval_at_virtual_root(query.result)
        return sorted(result, key=lambda node: node.node_id)

    def evaluate_at(self, node: XMLNode, expr: Expr) -> List[XMLNode]:
        """Evaluate an expression with ``node`` as the context node."""
        return sorted(self._eval(expr, {node}), key=lambda n: n.node_id)

    # -- internals --------------------------------------------------------------

    def _definition(self, name: str) -> Expr:
        if self._query is None:
            raise ExtendedXPathError(
                f"variable {name!r} used but no equation system is in scope"
            )
        return self._query.definition(name)

    def _eval_at_virtual_root(self, expr: Expr) -> Set[XMLNode]:
        root = self._tree.root
        if isinstance(expr, EEmptySet):
            return set()
        if isinstance(expr, EEmpty):
            return {root}
        if isinstance(expr, ELabel):
            return {root} if root.label == expr.name else set()
        if isinstance(expr, EVar):
            return self._eval_at_virtual_root(self._definition(expr.name))
        if isinstance(expr, ESlash):
            return self._eval(expr.right, self._eval_at_virtual_root(expr.left))
        if isinstance(expr, EUnion):
            return self._eval_at_virtual_root(expr.left) | self._eval_at_virtual_root(
                expr.right
            )
        if isinstance(expr, EStar):
            # E* at the virtual root: zero applications yields the virtual
            # root itself, which is not a document node; one-or-more
            # applications start from the document root's level.  Queries
            # produced by the translators never place a bare E* at the top
            # level, but we give it the natural closure-over-children meaning.
            return self._closure(expr.inner, {root})
        if isinstance(expr, (EDescendants, EIntervals)):
            # Proper descendants of the virtual root = every document node;
            # EIntervals denotes the same node set, only lowered differently.
            return {
                node for node in self._tree.nodes() if node.label == expr.target
            }
        if isinstance(expr, EQualified):
            nodes = self._eval_at_virtual_root(expr.expr)
            return {node for node in nodes if self._holds(expr.qualifier, node)}
        raise TypeError(f"unknown extended XPath expression {expr!r}")

    def _eval(self, expr: Expr, context: Set[XMLNode]) -> Set[XMLNode]:
        if not context:
            return set()
        if isinstance(expr, EEmptySet):
            return set()
        if isinstance(expr, EEmpty):
            return set(context)
        if isinstance(expr, ELabel):
            return {
                child
                for node in context
                for child in node.children
                if child.label == expr.name
            }
        if isinstance(expr, EVar):
            return self._eval(self._definition(expr.name), context)
        if isinstance(expr, ESlash):
            return self._eval(expr.right, self._eval(expr.left, context))
        if isinstance(expr, EUnion):
            return self._eval(expr.left, context) | self._eval(expr.right, context)
        if isinstance(expr, EStar):
            return self._closure(expr.inner, context)
        if isinstance(expr, (EDescendants, EIntervals)):
            out: Set[XMLNode] = set()
            for node in context:
                for descendant in node.iter_descendants():
                    if descendant is not node and descendant.label == expr.target:
                        out.add(descendant)
            return out
        if isinstance(expr, EQualified):
            nodes = self._eval(expr.expr, context)
            return {node for node in nodes if self._holds(expr.qualifier, node)}
        raise TypeError(f"unknown extended XPath expression {expr!r}")

    def _closure(self, inner: Expr, context: Set[XMLNode]) -> Set[XMLNode]:
        """Least fixpoint of applying ``inner`` zero or more times."""
        result: Set[XMLNode] = set(context)
        frontier: Set[XMLNode] = set(context)
        while frontier:
            step = self._eval(inner, frontier)
            new = step - result
            result |= new
            frontier = new
        return result

    def _holds(self, qualifier: EQualifier, node: XMLNode) -> bool:
        if isinstance(qualifier, EPathQual):
            return bool(self._eval(qualifier.expr, {node}))
        if isinstance(qualifier, ETextEquals):
            return node.value == qualifier.value
        if isinstance(qualifier, ENot):
            return not self._holds(qualifier.inner, node)
        if isinstance(qualifier, EAnd):
            return self._holds(qualifier.left, node) and self._holds(qualifier.right, node)
        if isinstance(qualifier, EOr):
            return self._holds(qualifier.left, node) or self._holds(qualifier.right, node)
        raise TypeError(f"unknown qualifier {qualifier!r}")


def evaluate_extended(tree: XMLTree, query: ExtendedXPathQuery) -> List[XMLNode]:
    """Evaluate an extended XPath query over ``tree`` at the virtual root."""
    return ExtendedXPathEvaluator(tree).evaluate_query(query)
