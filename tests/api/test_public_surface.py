"""The public-API surface snapshot.

``repro.__all__`` (and ``repro.api.__all__``) are the supported surface;
this test pins them to the committed snapshots below so accidental surface
growth — a new re-export slipping into ``repro/__init__.py`` — fails CI
instead of silently becoming API.  Growing the surface is fine, but it is
an explicit act: update the snapshot here in the same change.
"""

from __future__ import annotations

import repro
import repro.api

# The committed snapshot of the top-level surface.  Keep sorted.
PUBLIC_SURFACE = sorted(
    [
        "Backend",
        "BackendResult",
        "ConfigError",
        "DTD",
        "DescendantStrategy",
        "DifferentialOracle",
        "Engine",
        "EngineConfig",
        "FuzzCase",
        "FuzzConfig",
        "GAVView",
        "MemoryBackend",
        "PlanCache",
        "QueryResult",
        "QueryService",
        "ReproError",
        "SQLDialect",
        "SQLGenR",
        "Session",
        "SessionError",
        "SqliteBackend",
        "TranslationOptions",
        "TranslationResult",
        "XPathToSQLTranslator",
        "__version__",
        "answer_xpath",
        "create_backend",
        "generate_document",
        "parse_dtd",
        "parse_xpath",
        "run_fuzz",
        "shred_document",
    ]
)

# The committed snapshot of the facade package's surface.  Keep sorted.
API_SURFACE = sorted(
    [
        "ConfigError",
        "DuplicateDocumentError",
        "Engine",
        "EngineConfig",
        "QueryResult",
        "ReproError",
        "Session",
        "SessionClosedError",
        "SessionError",
        "UnknownDocumentError",
        "resolve_engine_config",
    ]
)


class TestPublicSurface:
    def test_top_level_all_matches_snapshot(self):
        assert sorted(repro.__all__) == PUBLIC_SURFACE

    def test_api_all_matches_snapshot(self):
        assert sorted(repro.api.__all__) == API_SURFACE

    def test_every_top_level_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_every_api_name_resolves(self):
        # Includes the lazily exported facade classes (PEP 562).
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_no_duplicate_names(self):
        assert len(repro.__all__) == len(set(repro.__all__))
        assert len(repro.api.__all__) == len(set(repro.api.__all__))

    def test_facade_is_the_same_object_everywhere(self):
        # repro.Engine and repro.api.Engine must not drift apart.
        assert repro.Engine is repro.api.Engine
        assert repro.EngineConfig is repro.api.EngineConfig
        assert repro.Session is repro.api.Session
        assert repro.QueryResult is repro.api.QueryResult
