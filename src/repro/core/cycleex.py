"""Algorithm CycleEX: rec(A, B) as a polynomial-size extended XPath query.

CycleEX (Fig. 7) runs the same node-elimination dynamic program as CycleE
but stores each table entry behind a *variable*: the equation for
``X[i, j, k]`` references at most four other variables::

    X[i, j, k] = X[i, j, k-1]  UNION  X[i, k, k-1] / S[k, k-1] / X[k, j, k-1]
    S[k, k-1]  = ( X[k, k, k-1] )*

so the whole system has ``O(n^3)`` constant-size equations instead of an
exponential-size expression (Theorem 4.1).  The paper's three pruning rules
(drop ``X = EMPTYSET``, inline alias equations, drop equations the result
does not need) are applied when a specific ``rec(A, B)`` query is extracted.

The elimination table depends only on the DTD, not on the query, so a
single :class:`CycleEXIndex` is shared by every ``//`` occurrence of every
query over that DTD (this is the "precomputed once and for all" remark of
Sect. 4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.dtd.graph import DTDGraph
from repro.dtd.model import DTD
from repro.expath.ast import (
    EEmpty,
    EEmptySet,
    ELabel,
    EStar,
    EVar,
    Equation,
    Expr,
    ExtendedXPathQuery,
    eslash,
    eunion,
)
from repro.expath.simplify import simplify_query

__all__ = ["CycleEXIndex", "rec_query"]


class CycleEXIndex:
    """The CycleEX elimination table for one DTD graph.

    After construction the index holds, for every ordered pair of element
    types ``(A, B)``, a variable that is bound (by the index's equation
    list) to an expression denoting all paths from ``A`` to ``B`` —
    including the zero-length path when ``A == B`` (descendant-or-self
    semantics, as required by the translation of ``//``).
    """

    def __init__(self, graph: DTDGraph, variable_prefix: str = "D") -> None:
        self._graph = graph
        self._prefix = variable_prefix
        self._equations: List[Equation] = []
        self._final: Dict[Tuple[str, str], Expr] = {}
        self._build()

    # -- construction ------------------------------------------------------------

    def _var(self, name: str, expression: Expr) -> Expr:
        """Bind ``expression`` to a fresh variable unless it is trivially small."""
        if isinstance(expression, (EEmpty, EEmptySet, ELabel, EVar)):
            return expression
        self._equations.append(Equation(name, expression))
        return EVar(name)

    def _build(self) -> None:
        nodes = self._graph.nodes
        prefix = self._prefix
        # k = 0 layer: direct edges only.  Table entries denote paths of
        # length >= 1 throughout; the zero-length path of the
        # descendant-or-self semantics is added in result_expression() so
        # that Kleene-closure bases never contain the identity relation.
        table: Dict[Tuple[str, str], Expr] = {}
        for i in nodes:
            for j in nodes:
                expr: Expr = EEmptySet()
                if self._graph.has_edge(i, j):
                    expr = ELabel(j)
                table[(i, j)] = expr

        for level, k in enumerate(nodes, start=1):
            loop_body = table[(k, k)]
            if isinstance(loop_body, (EEmpty, EEmptySet)):
                loop: Expr = EEmpty()
            else:
                loop = self._var(f"{prefix}_S_{level}", EStar(loop_body))
            updated: Dict[Tuple[str, str], Expr] = {}
            for i in nodes:
                into_k = table[(i, k)]
                for j in nodes:
                    out_of_k = table[(k, j)]
                    through = eslash(eslash(into_k, loop), out_of_k)
                    combined = eunion(table[(i, j)], through)
                    ni = self._graph.number_of(i)
                    nj = self._graph.number_of(j)
                    updated[(i, j)] = self._var(f"{prefix}_{ni}_{nj}_{level}", combined)
            table = updated
        self._final = table

    # -- public API ---------------------------------------------------------------

    @property
    def graph(self) -> DTDGraph:
        """The underlying DTD graph."""
        return self._graph

    @property
    def equations(self) -> List[Equation]:
        """All equations of the elimination table, in dependency order."""
        return list(self._equations)

    def result_expression(self, source: str, target: str) -> Expr:
        """Expression denoting paths ``source -> target`` (descendant-or-self).

        Includes the zero-length path when ``source == target``, as required
        by the translation of ``//``.
        """
        expr = self._final[(source, target)]
        if source == target:
            return eunion(EEmpty(), expr)
        return expr

    def has_path(self, source: str, target: str) -> bool:
        """True when a path of length >= 1 exists from source to target."""
        return not isinstance(self._final[(source, target)], EEmptySet)

    def rec(self, source: str, target: str, simplify: bool = True) -> ExtendedXPathQuery:
        """Return ``rec(source, target)`` as a pruned extended XPath query.

        The returned query's equations are the subset of the elimination
        table the result depends on; with ``simplify=True`` the paper's
        pruning rules (alias inlining, dead-equation removal) are applied.
        """
        query = ExtendedXPathQuery(self._equations, self.result_expression(source, target))
        query = query.pruned()
        if simplify:
            query = simplify_query(query)
        return query


def rec_query(dtd: DTD, source: str, target: str) -> ExtendedXPathQuery:
    """Convenience wrapper: build ``rec(source, target)`` over ``dtd`` with CycleEX."""
    return CycleEXIndex(DTDGraph(dtd)).rec(source, target)
