"""Unit tests for program-level optimisations and option presets."""

import pytest

from repro.core.optimize import (
    DEFAULT_OPTIMIZE_LEVEL,
    OPTIMIZE_LEVELS,
    ProgramOptimizer,
    baseline_options,
    eliminate_common_subexpressions,
    optimize_program,
    prune_unreachable,
    push_selection_options,
    select_strategy,
    simplify_program,
    standard_options,
)
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd import samples
from repro.dtd.parser import parse_dtd
from repro.relational.algebra import (
    AntiJoin,
    Assignment,
    Compose,
    Condition,
    Difference,
    EmptyRelation,
    Fixpoint,
    Program,
    Project,
    Scan,
    Select,
    SemiJoin,
    Union,
)
from repro.relational.executor import execute_program
from repro.relational.schema import T as T_COLUMN
from repro.shredding.inlining import SimpleMapping
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath


class TestOptionPresets:
    def test_baseline_disables_everything(self):
        options = baseline_options()
        assert not options.use_small_seed
        assert not options.push_selections

    def test_standard_enables_small_seed_only(self):
        options = standard_options()
        assert options.use_small_seed
        assert not options.push_selections

    def test_push_enables_both(self):
        options = push_selection_options()
        assert options.use_small_seed
        assert options.push_selections


class TestCommonSubexpressionElimination:
    def test_duplicate_assignments_merged(self):
        program = Program(
            [
                Assignment("T1", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("T2", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("T3", Compose(Scan("T1"), Scan("T2"))),
            ],
            Scan("T3"),
        )
        optimized = eliminate_common_subexpressions(program)
        assert len(optimized) == 2
        # T2's uses must have been redirected to T1.
        rewritten = optimized.expression_for("T3")
        assert str(rewritten) == "(T1 . T1)"

    def test_distinct_assignments_kept(self):
        program = Program(
            [
                Assignment("T1", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("T2", Compose(Scan("R_b"), Scan("R_a"))),
            ],
            Compose(Scan("T1"), Scan("T2")),
        )
        optimized = eliminate_common_subexpressions(program)
        assert len(optimized) == 2

    def test_chained_duplicates_collapse_transitively(self):
        program = Program(
            [
                Assignment("A1", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("A2", Compose(Scan("R_a"), Scan("R_b"))),
                Assignment("B1", Select(Scan("A1"), (Condition("F", "=", "_"),))),
                Assignment("B2", Select(Scan("A2"), (Condition("F", "=", "_"),))),
            ],
            Compose(Scan("B1"), Scan("B2")),
        )
        optimized = eliminate_common_subexpressions(program)
        assert len(optimized) == 2

    def test_semantics_preserved_on_real_translation(self, dept_dtd, dept_tree, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        result = translator.translate("dept//student/qualified//course")
        optimized = eliminate_common_subexpressions(result.program)
        assert len(optimized) <= len(result.program)
        original_rows, _ = execute_program(dept_shredded.database, result.program)
        optimized_rows, _ = execute_program(dept_shredded.database, optimized)
        assert original_rows.rows == optimized_rows.rows

    def test_cse_reduces_size_when_same_rec_used_twice(self, cross_dtd):
        translator = XPathToSQLTranslator(cross_dtd)
        result = translator.translate("a//d | a//c")
        optimized = eliminate_common_subexpressions(result.program)
        assert len(optimized) <= len(result.program)


class TestSimplifyProgram:
    def test_adjacent_selections_merge(self):
        program = Program(
            [],
            Select(
                Select(Scan("R_a"), (Condition("F", "=", "_"),)),
                (Condition("V", "=", "x"),),
            ),
        )
        simplified = simplify_program(program)
        result = simplified.result
        assert isinstance(result, Select)
        assert isinstance(result.input, Scan)
        assert len(result.conditions) == 2

    def test_nested_projections_compose(self):
        inner = Project(Scan("R_a"), ("T", "T", "V"), ("F", "T", "V"))
        outer = Project(inner, ("F", "T", "V"))
        simplified = simplify_program(Program([], outer))
        result = simplified.result
        assert isinstance(result, Project)
        assert isinstance(result.input, Scan)
        assert result.columns == ("T", "T", "V")

    def test_union_flattens_and_dedupes(self):
        union = Union(
            (
                Scan("R_a"),
                Union((Scan("R_a"), Scan("R_b"))),
                EmptyRelation(),
            )
        )
        simplified = simplify_program(Program([], union))
        result = simplified.result
        assert isinstance(result, Union)
        assert [str(child) for child in result.inputs] == ["R_a", "R_b"]

    def test_operators_over_empty_inputs_fold(self):
        empty = EmptyRelation()
        assert isinstance(
            simplify_program(Program([], Compose(Scan("R_a"), empty))).result,
            EmptyRelation,
        )
        assert isinstance(
            simplify_program(Program([], Fixpoint(empty))).result, EmptyRelation
        )
        # An empty probe never filters anything out of an anti-join.
        assert str(
            simplify_program(Program([], AntiJoin(Scan("R_a"), empty))).result
        ) == "R_a"
        assert str(
            simplify_program(Program([], Difference(Scan("R_a"), empty))).result
        ) == "R_a"


class TestReachabilityPruning:
    """The schema-aware level-2 pass over hand-built programs."""

    def _dtd(self):
        return samples.dept_dtd()

    def test_impossible_compose_collapses(self):
        # cno has no children, so R_cno . R_course joins nothing, ever.
        dtd = self._dtd()
        program = Program([], Compose(Scan("R_cno"), Scan("R_course")))
        pruned = prune_unreachable(program, dtd)
        assert isinstance(pruned.result, EmptyRelation)

    def test_possible_compose_survives(self):
        dtd = self._dtd()
        program = Program([], Compose(Scan("R_dept"), Scan("R_course")))
        pruned = prune_unreachable(program, dtd)
        assert not isinstance(pruned.result, EmptyRelation)

    def test_union_drops_dead_branches(self):
        dtd = self._dtd()
        union = Union(
            (
                Compose(Scan("R_dept"), Scan("R_course")),
                Compose(Scan("R_cno"), Scan("R_course")),  # dead
            )
        )
        pruned = prune_unreachable(Program([], union), dtd)
        assert "R_cno" not in str(pruned.result)

    def test_root_filter_on_non_root_scan_collapses(self):
        # Only the document root has F = '_'; course rows never do.
        dtd = self._dtd()
        program = Program([], Select(Scan("R_course"), (Condition("F", "=", "_"),)))
        pruned = prune_unreachable(program, dtd)
        assert isinstance(pruned.result, EmptyRelation)

    def test_value_selection_on_valueless_type_collapses(self):
        # prereq carries no PCDATA, so V = 'x' can never hold there.
        dtd = self._dtd()
        program = Program([], Select(Scan("R_prereq"), (Condition("V", "=", "x"),)))
        pruned = prune_unreachable(program, dtd)
        assert isinstance(pruned.result, EmptyRelation)

    def test_semijoin_against_dead_probe_collapses(self):
        dtd = self._dtd()
        probe = Compose(Scan("R_cno"), Scan("R_course"))  # empty
        program = Program([], SemiJoin(Scan("R_course"), probe))
        pruned = prune_unreachable(program, dtd)
        assert isinstance(pruned.result, EmptyRelation)

    def test_dead_temporaries_are_eliminated(self):
        dtd = self._dtd()
        program = Program(
            [
                Assignment("T1", Compose(Scan("R_cno"), Scan("R_course"))),
                Assignment("T2", Compose(Scan("R_dept"), Scan("R_course"))),
            ],
            Union((Scan("T1"), Scan("T2"))),
        )
        pruned = prune_unreachable(program, dtd)
        assert pruned.temporaries() == ["T2"]

    def test_pruning_preserves_execution_results(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd, optimize_level=0)
        for query in ("dept//project", "dept/course[not //project]"):
            program = translator.translate(query).program
            pruned = prune_unreachable(program, dept_dtd)
            original, _ = execute_program(dept_shredded.database, program)
            rewritten, _ = execute_program(dept_shredded.database, pruned)
            assert original.rows == rewritten.rows


class TestOptimizeLevels:
    def test_level_0_is_identity(self, cross_dtd):
        translator = XPathToSQLTranslator(cross_dtd, optimize_level=0)
        program = translator.translate("a//d").program
        assert str(optimize_program(program, 0, dtd=cross_dtd)) == str(program)

    def test_levels_shrink_monotonically(self, dept_dtd):
        raw = XPathToSQLTranslator(dept_dtd, optimize_level=0).translate(
            "dept//student/qualified//course"
        ).program
        sizes = {
            level: optimize_program(raw, level, dtd=dept_dtd).operator_profile().total
            for level in OPTIMIZE_LEVELS
        }
        assert sizes[1] <= sizes[0]
        assert sizes[2] <= sizes[1]
        assert sizes[1] < sizes[0]  # CSE definitely fires here

    def test_schema_dead_query_collapses_entirely(self, cross_dtd):
        translator = XPathToSQLTranslator(cross_dtd, optimize_level=2)
        program = translator.translate("b//d").program
        assert len(program) == 0
        assert isinstance(program.result, EmptyRelation)

    def test_invalid_level_rejected(self, cross_dtd):
        with pytest.raises(ValueError):
            ProgramOptimizer(dtd=cross_dtd, level=7)
        with pytest.raises(ValueError):
            XPathToSQLTranslator(cross_dtd, optimize_level=-1)

    def test_default_level_is_2(self, cross_dtd):
        assert DEFAULT_OPTIMIZE_LEVEL == 2
        assert XPathToSQLTranslator(cross_dtd).optimize_level == 2


class TestSelectStrategy:
    def test_cyclic_region_uses_interval(self):
        # Recursive regions need real transitive closure: the interval
        # encoding answers it with one range join instead of a fixpoint.
        assert select_strategy(samples.cross_dtd(), "a//d") is DescendantStrategy.INTERVAL
        assert select_strategy(samples.gedml_dtd(), "even//data") is DescendantStrategy.INTERVAL

    def test_acyclic_region_unfolds(self):
        library = parse_dtd(
            "root library\n"
            "library -> shelf*\n"
            "shelf -> book*\n"
            "book -> title*\n"
            "title -> EMPTY #text\n",
            name="library",
        )
        assert select_strategy(library, "library//title") is DescendantStrategy.CYCLEE

    def test_no_descendant_step_defaults_to_cycleex(self):
        assert select_strategy(samples.cross_dtd(), "a/b") is DescendantStrategy.CYCLEEX

    def test_wide_dags_fall_back_to_interval(self):
        # The complete-DAG family is the paper's exponential-unfolding case:
        # no recursion, but unfolding blows up, so the range join wins.
        dag = samples.complete_dag_dtd(12)
        root = dag.root
        assert (
            select_strategy(dag, f"{root}//{dag.element_types[-1]}")
            is DescendantStrategy.INTERVAL
        )

    def test_qualifier_regions_count(self):
        # The // inside the qualifier touches the cyclic course region.
        dtd = samples.dept_dtd()
        assert (
            select_strategy(dtd, "dept/course[//project]")
            is DescendantStrategy.INTERVAL
        )

    def test_auto_pipeline_answers_match_concrete(self, cross_dtd, cross_shredded):
        auto = XPathToSQLTranslator(cross_dtd, strategy=DescendantStrategy.AUTO)
        fixed = XPathToSQLTranslator(cross_dtd, strategy=DescendantStrategy.CYCLEEX)
        for query in ("a//d", "a/b//c/d", "a[not //c]"):
            assert {n.node_id for n in auto.answer(query, cross_shredded)} == {
                n.node_id for n in fixed.answer(query, cross_shredded)
            }


class TestPushSelectionEffect:
    def test_push_reduces_fixpoint_work(self, cross_dtd, cross_tree, cross_shredded):
        query = 'a/b[text() = "b-0"]//c/d'
        pushed = XPathToSQLTranslator(cross_dtd, options=push_selection_options())
        plain = XPathToSQLTranslator(cross_dtd, options=standard_options())
        _, push_stats = pushed.execute(query, cross_shredded)
        _, plain_stats = plain.execute(query, cross_shredded)
        assert push_stats.tuples_materialized <= plain_stats.tuples_materialized

    def test_push_and_plain_agree(self, cross_dtd, cross_tree, cross_shredded):
        query = 'a/b//c/d[text() = "d-1"]'
        expected = {n.node_id for n in evaluate_xpath(cross_tree, parse_xpath(query))}
        for options in (standard_options(), push_selection_options(), baseline_options()):
            translator = XPathToSQLTranslator(cross_dtd, options=options)
            got = {n.node_id for n in translator.answer(query, cross_shredded)}
            assert got == expected
