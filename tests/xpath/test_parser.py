"""Unit tests for the XPath parser."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    And,
    Descendant,
    EmptyPath,
    EmptySet,
    Label,
    Not,
    Or,
    PathQual,
    Qualified,
    Slash,
    TextEquals,
    Union,
    Wildcard,
)
from repro.xpath.parser import parse_xpath, tokenize


class TestBasicPaths:
    def test_single_label(self):
        assert parse_xpath("dept") == Label("dept")

    def test_child_step(self):
        assert parse_xpath("dept/course") == Slash(Label("dept"), Label("course"))

    def test_descendant_step(self):
        assert parse_xpath("dept//project") == Slash(
            Label("dept"), Descendant(Label("project"))
        )

    def test_leading_descendant(self):
        assert parse_xpath("//project") == Descendant(Label("project"))

    def test_wildcard(self):
        assert parse_xpath("dept/*") == Slash(Label("dept"), Wildcard())

    def test_empty_path_dot(self):
        assert parse_xpath(".") == EmptyPath()
        assert parse_xpath("") == EmptyPath()

    def test_emptyset_keyword(self):
        assert parse_xpath("EMPTYSET") == EmptySet()

    def test_union(self):
        parsed = parse_xpath("a/b | a/c")
        assert isinstance(parsed, Union)
        assert parsed.left == Slash(Label("a"), Label("b"))

    def test_union_unicode(self):
        assert parse_xpath("a ∪ b") == Union(Label("a"), Label("b"))

    def test_parenthesised_union_in_path(self):
        parsed = parse_xpath("a/(b | c)/d")
        assert isinstance(parsed, Slash)
        assert isinstance(parsed.left.right, Union)

    def test_left_associativity(self):
        parsed = parse_xpath("a/b/c")
        assert parsed == Slash(Slash(Label("a"), Label("b")), Label("c"))


class TestQualifiers:
    def test_path_qualifier(self):
        parsed = parse_xpath("course[project]")
        assert parsed == Qualified(Label("course"), PathQual(Label("project")))

    def test_text_equals(self):
        parsed = parse_xpath('cno[text() = "cs66"]')
        assert parsed == Qualified(Label("cno"), TextEquals("cs66"))

    def test_text_equals_single_quotes(self):
        parsed = parse_xpath("cno[text() = 'cs66']")
        assert parsed == Qualified(Label("cno"), TextEquals("cs66"))

    def test_value_comparison_shorthand(self):
        parsed = parse_xpath('course[cno = "cs66"]')
        expected = Qualified(
            Label("course"), PathQual(Qualified(Label("cno"), TextEquals("cs66")))
        )
        assert parsed == expected

    def test_negation_ascii_and_unicode(self):
        for text in ["course[not project]", "course[¬project]", "course[!project]"]:
            parsed = parse_xpath(text)
            assert parsed == Qualified(Label("course"), Not(PathQual(Label("project"))))

    def test_conjunction_and_disjunction(self):
        parsed = parse_xpath("a[b and c or d]")
        qualifier = parsed.qualifier
        assert isinstance(qualifier, Or)
        assert isinstance(qualifier.left, And)

    def test_parenthesised_boolean_qualifier(self):
        parsed = parse_xpath("a[not (b or c)]")
        assert isinstance(parsed.qualifier, Not)
        assert isinstance(parsed.qualifier.inner, Or)

    def test_nested_qualifiers(self):
        parsed = parse_xpath("a[b[c]]")
        inner = parsed.qualifier.path
        assert inner == Qualified(Label("b"), PathQual(Label("c")))

    def test_descendant_inside_qualifier(self):
        parsed = parse_xpath("course[//prereq]")
        assert parsed.qualifier == PathQual(Descendant(Label("prereq")))

    def test_multiple_qualifiers_stack(self):
        parsed = parse_xpath("a[b][c]")
        assert isinstance(parsed, Qualified)
        assert isinstance(parsed.path, Qualified)

    def test_paper_query_q2_parses(self):
        query = (
            'dept/course[//prereq/course[cno = "cs66"] ∧ ¬//project ∧ '
            '¬takenBy/student/qualified//course[cno = "cs66"]]'
        )
        parsed = parse_xpath(query)
        assert isinstance(parsed, Slash)
        assert isinstance(parsed.right, Qualified)

    def test_qd_query_parses(self):
        parsed = parse_xpath("a[not //c or (b and //d)]")
        assert isinstance(parsed.qualifier, Or)


class TestErrorsAndTokens:
    def test_unbalanced_bracket(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("a[b")

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("a/#b")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("a b")

    def test_missing_operand(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("a/")

    def test_text_requires_string(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("a[text() = b]")

    def test_tokenize_kinds(self):
        kinds = [t.kind for t in tokenize('a//b[text() = "x"]')]
        assert kinds == ["NAME", "DSLASH", "NAME", "LBRACKET", "TEXTFN", "EQ", "STRING", "RBRACKET"]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "dept//project",
            "a/b//c/d",
            "a[not //c or (b and //d)]",
            'dept/course[cno = "cs66"]',
            "a/(b | c)/d",
            "dept/*//cno",
        ],
    )
    def test_str_reparses_to_same_ast(self, text):
        parsed = parse_xpath(text)
        assert parse_xpath(str(parsed)) == parsed
