"""Live documents: DTD-validated mutations with incremental re-shredding.

The subsystem keeps the paper's invariant Q(T) = Q'(tau_d(T)) true *over
time*: a registered document may be mutated (insert/delete subtree, replace
text) and the relational side is updated incrementally — a
:class:`~repro.live.delta.ShredDelta` of row inserts/deletes per relation
plus the renumbered ``DOC_ORDER`` intervals — instead of being re-shredded
from scratch.  ``Backend.apply_delta`` applies the delta to whatever store
the backend owns; :meth:`repro.service.QueryService.update_document`
threads the invalidation through the serving tier (result LRUs dropped,
plan/prepared caches kept — plans depend only on the DTD).

:mod:`repro.live.fuzzer` generates random valid mutation scripts and checks
mutate-then-query against reshred-from-scratch-then-query differentially
across the engine grid; :mod:`repro.live.bench` measures incremental
updates against full re-registration (BENCH_8).
"""

from repro.live.delta import ShredDelta, apply_delta_to_database, merge_deltas
from repro.live.mutations import (
    DeleteSubtree,
    DocumentMutator,
    InsertSubtree,
    Mutation,
    ReplaceText,
    as_subtree,
    mutation_from_dict,
    mutation_to_dict,
)

__all__ = [
    "ShredDelta",
    "merge_deltas",
    "apply_delta_to_database",
    "DocumentMutator",
    "Mutation",
    "InsertSubtree",
    "DeleteSubtree",
    "ReplaceText",
    "as_subtree",
    "mutation_to_dict",
    "mutation_from_dict",
]
