"""Property-based tests (hypothesis) for the core invariants.

The central properties checked on randomly generated documents and queries:

* generated documents always conform to their DTD;
* the translation invariant ``Q(T) = Q'(tau_d(T))`` holds for random
  queries drawn from the Sect. 2.2 grammar, for every descendant strategy;
* ``rec(A, B)`` from CycleEX and CycleE denote the same node sets;
* the LFP operator computes exactly the transitive closure of its input;
* simplification of extended XPath queries preserves semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.optimize import push_selection_options, standard_options
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd import samples
from repro.fuzz.xpath_gen import RandomXPathGenerator, XPathGenConfig
from repro.relational.algebra import Fixpoint, Scan
from repro.relational.executor import Executor
from repro.relational.relation import Relation
from repro.relational.schema import NODE_COLUMNS, DatabaseSchema, RelationSchema
from repro.relational.database import Database
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document
from repro.xmltree.validator import conforms
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Random query generation over the cross DTD (labels a, b, c, d).
# ---------------------------------------------------------------------------

_LABELS = ["a", "b", "c", "d"]


def _steps():
    return st.sampled_from(_LABELS + ["*"])


@st.composite
def relative_paths(draw, max_steps=3):
    """A relative path: steps joined by / or //."""
    count = draw(st.integers(1, max_steps))
    parts = [draw(_steps()) for _ in range(count)]
    separators = [draw(st.sampled_from(["/", "//"])) for _ in range(count - 1)]
    text = parts[0]
    for separator, part in zip(separators, parts[1:]):
        text += separator + part
    return text


@st.composite
def qualifiers(draw):
    base = draw(relative_paths(max_steps=2))
    kind = draw(st.sampled_from(["plain", "not", "value", "and", "or"]))
    if kind == "plain":
        return base
    if kind == "not":
        return f"not {base}"
    if kind == "value":
        label = draw(st.sampled_from(_LABELS))
        value = draw(st.integers(0, 3))
        return f'{label} = "{label}-{value}"'
    other = draw(relative_paths(max_steps=2))
    connector = "and" if kind == "and" else "or"
    return f"{base} {connector} {other}"


@st.composite
def cross_queries(draw):
    """Whole-document queries over the cross DTD, rooted at 'a'."""
    text = "a"
    for _ in range(draw(st.integers(0, 2))):
        separator = draw(st.sampled_from(["/", "//"]))
        text += separator + draw(_steps())
    if draw(st.booleans()):
        text += f"[{draw(qualifiers())}]"
        if draw(st.booleans()):
            separator = draw(st.sampled_from(["/", "//"]))
            text += separator + draw(_steps())
    return text


@pytest.fixture(scope="module")
def cross_documents():
    dtd = samples.cross_dtd()
    documents = []
    for seed in (3, 5, 9):
        tree = generate_document(dtd, x_l=7, x_r=3, seed=seed, max_elements=400, distinct_values=4)
        documents.append((tree, shred_document(tree, dtd)))
    return dtd, documents


class TestGeneratorConformance:
    @SLOW
    @given(
        seed=st.integers(0, 10_000),
        x_l=st.integers(2, 8),
        x_r=st.integers(1, 4),
        factory=st.sampled_from(
            [samples.cross_dtd, samples.dept_dtd, samples.bioml_dtd, samples.gedml_dtd]
        ),
    )
    def test_generated_documents_conform(self, seed, x_l, x_r, factory):
        dtd = factory()
        tree = generate_document(dtd, x_l=x_l, x_r=x_r, seed=seed, max_elements=300)
        assert conforms(tree, dtd)


class TestTranslationInvariant:
    @SLOW
    @given(query_text=cross_queries(), strategy=st.sampled_from(list(DescendantStrategy)))
    def test_q_of_t_equals_qprime_of_taud_t(self, cross_documents, query_text, strategy):
        dtd, documents = cross_documents
        query = parse_xpath(query_text)
        translator = XPathToSQLTranslator(dtd, strategy=strategy)
        for tree, shredded in documents:
            expected = {n.node_id for n in evaluate_xpath(tree, query)}
            actual = {n.node_id for n in translator.answer(query, shredded)}
            assert actual == expected, query_text

    @SLOW
    @given(query_text=cross_queries())
    def test_optimised_and_plain_lowering_agree(self, cross_documents, query_text):
        dtd, documents = cross_documents
        query = parse_xpath(query_text)
        plain = XPathToSQLTranslator(dtd, options=standard_options())
        pushed = XPathToSQLTranslator(dtd, options=push_selection_options())
        tree, shredded = documents[0]
        assert {n.node_id for n in plain.answer(query, shredded)} == {
            n.node_id for n in pushed.answer(query, shredded)
        }


# ---------------------------------------------------------------------------
# The invariant over *every* sample DTD × both optimisation settings.
#
# The hypothesis tests above exercise the cross DTD deeply; this sweep runs
# schema-guided random queries (fixed seed, so deterministic) over all the
# paper DTDs — the BIOML subgraph family, GedML, dept — under both lowering
# configurations and every descendant strategy.
# ---------------------------------------------------------------------------

ALL_SAMPLE_DTDS = sorted(samples.paper_dtds())

OPTIMIZATION_SETTINGS = {
    "standard": standard_options,
    "push-selections": push_selection_options,
}


@pytest.fixture(scope="module")
def sample_documents():
    documents = {}
    for name, dtd in samples.paper_dtds().items():
        tree = generate_document(
            dtd, x_l=7, x_r=3, seed=17, max_elements=250, distinct_values=4
        )
        documents[name] = (dtd, tree, shred_document(tree, dtd))
    return documents


class TestInvariantAcrossSampleDTDs:
    @pytest.mark.parametrize("options_name", sorted(OPTIMIZATION_SETTINGS))
    @pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
    def test_random_queries_agree_with_evaluator(
        self, sample_documents, dtd_name, options_name
    ):
        dtd, tree, shredded = sample_documents[dtd_name]
        queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=13)).queries(5)
        options = OPTIMIZATION_SETTINGS[options_name]()
        for strategy in DescendantStrategy:
            translator = XPathToSQLTranslator(dtd, strategy=strategy, options=options)
            for query_text in queries:
                query = parse_xpath(query_text)
                expected = {n.node_id for n in evaluate_xpath(tree, query)}
                actual = {n.node_id for n in translator.answer(query, shredded)}
                assert actual == expected, (dtd_name, strategy.value, query_text)


class TestRecEquivalence:
    @SLOW
    @given(
        source=st.sampled_from(_LABELS),
        target=st.sampled_from(_LABELS),
        seed=st.integers(0, 500),
    )
    def test_cyclee_and_cycleex_denote_same_sets(self, source, target, seed):
        from repro.core.cycleex import rec_query
        from repro.core.tarjan import cycle_expression
        from repro.expath.evaluator import ExtendedXPathEvaluator

        dtd = samples.cross_dtd()
        tree = generate_document(dtd, x_l=6, x_r=3, seed=seed, max_elements=250)
        cyclee_expr = cycle_expression(dtd, source, target)
        cycleex_query = rec_query(dtd, source, target)
        e_eval = ExtendedXPathEvaluator(tree)
        x_eval = ExtendedXPathEvaluator(tree, cycleex_query)
        for context in tree.nodes_with_label(source):
            via_e = {n.node_id for n in e_eval.evaluate_at(context, cyclee_expr)}
            via_x = {n.node_id for n in x_eval.evaluate_at(context, cycleex_query.result)}
            assert via_e == via_x


@st.composite
def edge_relations(draw):
    node_count = draw(st.integers(2, 8))
    nodes = list(range(node_count))
    edges = draw(
        st.sets(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
            max_size=node_count * 2,
        )
    )
    return nodes, edges


class TestLFPProperties:
    @SLOW
    @given(data=edge_relations())
    def test_fixpoint_is_transitive_closure(self, data):
        nodes, edges = data
        schema = DatabaseSchema(
            [RelationSchema("edges", NODE_COLUMNS)],
            node_relations=["edges"],
            element_relations={},
        )
        database = Database(schema)
        database.set_relation(
            "edges", Relation(NODE_COLUMNS, {(f, t, "_") for f, t in edges})
        )
        closure = Executor(database).evaluate(Fixpoint(Scan("edges")))

        # Reference closure computed independently.
        reachable = {(f, t) for f, t in edges}
        changed = True
        while changed:
            changed = False
            for f, mid in list(reachable):
                for mid2, t in list(reachable):
                    if mid == mid2 and (f, t) not in reachable:
                        reachable.add((f, t))
                        changed = True
        assert {(row[0], row[1]) for row in closure.rows} == reachable


class TestSimplificationProperty:
    @SLOW
    @given(query_text=cross_queries(), seed=st.integers(0, 200))
    def test_simplified_extended_query_preserves_semantics(self, query_text, seed):
        from repro.core.xpath_to_expath import xpath_to_extended
        from repro.expath.evaluator import evaluate_extended
        from repro.expath.simplify import simplify_query

        dtd = samples.cross_dtd()
        tree = generate_document(dtd, x_l=6, x_r=3, seed=seed, max_elements=250)
        extended = xpath_to_extended(parse_xpath(query_text), dtd, simplify=False)
        simplified = simplify_query(extended)
        assert {n.node_id for n in evaluate_extended(tree, extended)} == {
            n.node_id for n in evaluate_extended(tree, simplified)
        }
