"""End-to-end tracing through the public facade — the acceptance criterion.

``Session.answer()`` under ``observability=True`` must yield the complete
span tree (plan-cache lookup -> translate -> optimizer passes -> prepare
-> execute) with cache hit/miss visible, and the tree must round-trip
through JSON exactly.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.api import Engine, EngineConfig
from repro.dtd.samples import dept_dtd
from repro.obs.metrics import MetricsRegistry
from repro.xmltree.generator import generate_document

QUERY = "dept//project"


@pytest.fixture(scope="module")
def dtd():
    return dept_dtd()


@pytest.fixture(scope="module")
def document(dtd):
    return generate_document(dtd, x_l=6, x_r=3, seed=7, max_elements=400)


@pytest.fixture()
def isolated_registry():
    previous = obs.set_registry(MetricsRegistry())
    yield obs.registry()
    obs.set_registry(previous)


class TestSessionAnswerTrace:
    def test_cold_answer_yields_the_complete_span_tree(self, dtd, document):
        with Engine(dtd, EngineConfig(observability=True)) as engine:
            with engine.open_session(document) as session:
                result = session.answer(QUERY)
        root = result.trace
        assert root is not None and root.name == "session.answer"
        assert root.attrs["query"] == QUERY
        # The whole path, in order: cache lookup, fresh translation with
        # its phases, backend prepare and execute.
        for name in (
            "plan-cache",
            "translate",
            "resolve-strategy",
            "xpath-to-extended",
            "lower",
            "optimize",
            "prepare",
            "execute",
        ):
            assert root.find(name) is not None, f"span {name!r} missing"
        assert root.find("plan-cache").attrs["hit"] is False
        assert root.find("optimize").children, "optimizer passes not traced"
        assert root.find("execute").attrs["rows"] == len(result)

    def test_warm_answer_marks_cache_hits_instead_of_retranslating(
        self, dtd, document
    ):
        with Engine(dtd, EngineConfig(observability=True)) as engine:
            with engine.open_session(document) as session:
                session.answer(QUERY)
                warm = session.answer(QUERY).trace
        # Result-cache hit: the answer span is marked and no backend work ran.
        answer_span = warm.find("answer")
        assert answer_span.attrs["result_cache_hit"] is True
        assert warm.find("translate") is None
        assert warm.find("execute") is None

    def test_trace_round_trips_through_json_exactly(self, dtd, document):
        with Engine(dtd, EngineConfig(observability=True)) as engine:
            with engine.open_session(document) as session:
                root = session.answer(QUERY).trace
        payload = json.loads(json.dumps(root.to_dict(), sort_keys=True))
        assert obs.Span.from_dict(payload).to_dict() == root.to_dict()

    def test_observability_off_means_no_trace_and_no_leak(self, dtd, document):
        with Engine(dtd, EngineConfig()) as engine:
            with engine.open_session(document) as session:
                result = session.answer(QUERY)
        assert result.trace is None
        assert not obs.is_tracing()

    def test_batch_answers_each_carry_their_own_trace(self, dtd, document):
        queries = [QUERY, "dept/employee", QUERY]
        with Engine(dtd, EngineConfig(observability=True)) as engine:
            with engine.open_session(document) as session:
                results = session.answer_batch(queries, threads=2)
        for result in results:
            assert result.trace is not None
            assert result.trace.name == "session.answer"

    def test_cache_counters_reach_the_metrics_registry(
        self, dtd, document, isolated_registry
    ):
        with Engine(dtd, EngineConfig()) as engine:
            with engine.open_session(document) as session:
                session.answer(QUERY)
                session.answer(QUERY)
        snapshot = isolated_registry.snapshot()
        assert snapshot["cache.plan.misses"]["value"] >= 1
        assert snapshot["cache.result.hits"]["value"] >= 1
        assert snapshot["service.queries"]["value"] == 2


class TestExplainTiming:
    def test_timing_mode_appends_a_fresh_translation_trace(self, dtd):
        with Engine(dtd, EngineConfig()) as engine:
            plain = engine.explain(QUERY)
            timed = engine.explain(QUERY, timing=True)
        assert "timing:" not in plain
        assert "timing:" in timed
        assert "translate" in timed
        assert timed.startswith(plain)
