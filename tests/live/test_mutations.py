"""Tests for :mod:`repro.live.mutations` — validation, application, deltas."""

import pytest

from repro.dtd import samples
from repro.dtd.parser import parse_dtd
from repro.errors import MutationError
from repro.live.delta import apply_delta_to_database, merge_deltas
from repro.live.mutations import (
    DeleteSubtree,
    DocumentMutator,
    InsertSubtree,
    ReplaceText,
    as_subtree,
    mutation_from_dict,
    mutation_to_dict,
    subtree_from_dict,
    subtree_to_dict,
)
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document
from repro.xmltree.tree import build_tree

TINY_DTD = parse_dtd(
    """root db
db -> item*
item -> (name, tag*)
name -> EMPTY #text
tag -> EMPTY #text
""",
    name="tiny",
)


def tiny_tree():
    return build_tree(
        (
            "db",
            [
                ("item", [("name", "n1"), ("tag", "t1"), ("tag", "t2")]),
                ("item", [("name", "n2")]),
            ],
        )
    )


def db_rows(database):
    return {name: frozenset(database.relation(name).rows) for name in database}


def assert_tracks_scratch(tree, dtd, shredded, delta):
    """Applying ``delta`` must reproduce a from-scratch reshred of ``tree``."""
    apply_delta_to_database(shredded.database, delta)
    scratch = shred_document(tree, dtd)
    assert db_rows(shredded.database) == db_rows(scratch.database)


class TestInsertSubtree:
    def test_valid_insert_tracks_scratch_reshred(self):
        tree = tiny_tree()
        shredded = shred_document(tree, TINY_DTD)
        mutator = DocumentMutator(tree, TINY_DTD)
        delta = mutator.insert_subtree(
            tree.root, ("item", None, (("name", "n3", ()),)), index=1
        )
        assert not delta.is_empty()
        assert_tracks_scratch(tree, TINY_DTD, shredded, delta)

    def test_nested_insert_grafts_whole_subtree(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        before = tree.size()
        spec = ("item", None, (("name", "deep", ()), ("tag", "t", ()), ("tag", "u", ())))
        mutator.insert_subtree(tree.root, spec)
        assert tree.size() == before + 4
        assert tree.root.children[-1].children[0].value == "deep"

    def test_undeclared_label_rejected(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        with pytest.raises(MutationError, match="ghost"):
            mutator.insert_subtree(tree.root, ("ghost", None, ()))

    def test_insert_violating_parent_model_rejected(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        # db accepts only item children.
        with pytest.raises(MutationError, match="content model"):
            mutator.insert_subtree(tree.root, ("name", "x", ()))

    def test_insert_with_invalid_subtree_children_rejected(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        # item requires a leading name child.
        with pytest.raises(MutationError, match="content model"):
            mutator.insert_subtree(tree.root, ("item", None, (("tag", "t", ()),)))

    def test_value_on_non_text_type_rejected(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        with pytest.raises(MutationError, match="does not carry text"):
            mutator.insert_subtree(
                tree.root, ("item", "no-text-here", (("name", "n", ()),))
            )

    def test_out_of_range_index_rejected(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        with pytest.raises(MutationError, match="out of range"):
            mutator.insert_subtree(
                tree.root, ("item", None, (("name", "n", ()),)), index=99
            )

    def test_rejected_insert_leaves_tree_untouched(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        before = tree.size()
        with pytest.raises(MutationError):
            mutator.insert_subtree(tree.root, ("name", "x", ()))
        assert tree.size() == before


class TestDeleteSubtree:
    def test_valid_delete_tracks_scratch_reshred(self):
        tree = tiny_tree()
        shredded = shred_document(tree, TINY_DTD)
        mutator = DocumentMutator(tree, TINY_DTD)
        delta = mutator.delete_subtree(tree.root.children[0])
        assert_tracks_scratch(tree, TINY_DTD, shredded, delta)

    def test_delete_root_rejected(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        with pytest.raises(MutationError, match="document root"):
            mutator.delete_subtree(tree.root)

    def test_delete_breaking_sibling_model_rejected(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        # item -> (name, tag*): the name child is mandatory.
        name_node = tree.root.children[0].children[0]
        with pytest.raises(MutationError, match="content model"):
            mutator.delete_subtree(name_node)

    def test_unknown_node_id_rejected(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        with pytest.raises(MutationError, match="unknown node id"):
            mutator.delete_subtree(10_000)


class TestReplaceText:
    def test_replace_tracks_scratch_reshred(self):
        tree = tiny_tree()
        shredded = shred_document(tree, TINY_DTD)
        mutator = DocumentMutator(tree, TINY_DTD)
        delta = mutator.replace_text(tree.root.children[0].children[0], "renamed")
        assert_tracks_scratch(tree, TINY_DTD, shredded, delta)

    def test_clearing_text_tracks_scratch_reshred(self):
        tree = tiny_tree()
        shredded = shred_document(tree, TINY_DTD)
        mutator = DocumentMutator(tree, TINY_DTD)
        delta = mutator.replace_text(tree.root.children[0].children[0], None)
        assert_tracks_scratch(tree, TINY_DTD, shredded, delta)

    def test_noop_replace_yields_empty_delta(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        delta = mutator.replace_text(tree.root.children[0].children[0], "n1")
        assert delta.is_empty()

    def test_text_on_non_text_type_rejected(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        with pytest.raises(MutationError, match="does not carry text"):
            mutator.replace_text(tree.root.children[0], "nope")


class TestApplyScript:
    def test_script_delta_equals_per_mutation_merge(self):
        """Deferred DOC_ORDER diffing must not change the merged delta."""
        probe = tiny_tree()
        script = [
            InsertSubtree(probe.root.node_id, ("item", None, (("name", "n9", ()),))),
            ReplaceText(probe.root.children[0].children[0].node_id, "rewritten"),
            DeleteSubtree(probe.root.children[0].children[1].node_id),
        ]
        script_tree = tiny_tree()
        script_delta = DocumentMutator(script_tree, TINY_DTD).apply_script(script)

        step_tree = tiny_tree()
        step_mutator = DocumentMutator(step_tree, TINY_DTD)
        step_delta = step_mutator.apply(script[0])
        for mutation in script[1:]:
            step_delta = merge_deltas(step_delta, step_mutator.apply(mutation))

        assert script_delta.deletes == step_delta.deletes
        assert script_delta.inserts == step_delta.inserts

    def test_failing_script_raises_after_applying_prefix(self):
        tree = tiny_tree()
        mutator = DocumentMutator(tree, TINY_DTD)
        before = tree.size()
        script = [
            InsertSubtree(tree.root.node_id, ("item", None, (("name", "nX", ()),))),
            DeleteSubtree(10_000),
        ]
        with pytest.raises(MutationError):
            mutator.apply_script(script)
        assert tree.size() == before + 2  # the valid prefix was applied

    def test_script_on_generated_paper_document_tracks_scratch(self):
        dtd = samples.paper_dtds()["dept"]
        tree = generate_document(dtd, x_l=7, x_r=3, seed=19, max_elements=200)
        shredded = shred_document(tree, dtd)
        mutator = DocumentMutator(tree, dtd)
        text_node = next(
            node for node in tree.nodes() if node.label in dtd.text_types
        )
        delta = mutator.apply_script([ReplaceText(text_node.node_id, "mutated")])
        assert_tracks_scratch(tree, dtd, shredded, delta)


class TestSerialization:
    @pytest.mark.parametrize(
        "mutation",
        [
            InsertSubtree(3, ("item", None, (("name", "n", ()),)), index=1),
            InsertSubtree(3, ("tag", "v", ())),
            DeleteSubtree(7),
            ReplaceText(5, "text"),
            ReplaceText(5, None),
        ],
    )
    def test_mutation_round_trip(self, mutation):
        assert mutation_from_dict(mutation_to_dict(mutation)) == mutation

    def test_subtree_round_trip(self):
        spec = as_subtree(("item", None, (("name", "n", ()), ("tag", "t", ()))))
        assert subtree_from_dict(subtree_to_dict(spec)) == spec

    def test_as_subtree_accepts_tree_and_node(self):
        tree = tiny_tree()
        spec = as_subtree(tree)
        assert spec[0] == "db"
        assert as_subtree(tree.root.children[0])[0] == "item"

    @pytest.mark.parametrize(
        "payload",
        [
            "not-an-object",
            {"op": "teleport"},
            {"op": "delete"},
            {"op": "delete", "node": "seven"},
            {"op": "replace_text", "node": 1, "value": 3},
            {"op": "insert", "parent": 1, "subtree": {"label": ""}},
            {"op": "insert", "parent": 1, "subtree": {"label": "a"}, "extra": True},
        ],
    )
    def test_bad_payloads_rejected(self, payload):
        with pytest.raises(MutationError):
            mutation_from_dict(payload)
