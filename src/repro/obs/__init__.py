"""``repro.obs`` — zero-dependency tracing, metrics and structured logs.

The observability seam for the whole engine:

- :mod:`repro.obs.trace` — hierarchical :class:`Span` trees with a no-op
  fast path (``span()`` costs one thread-local read when no trace is
  active), ``start_trace``/``end_trace``/``trace``/``attach``.
- :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` of
  thread-safe counters, gauges and p50/p95/p99 histograms.
- :mod:`repro.obs.logs` — JSON-lines event emission, off by default.
- :class:`Timer` — the one shared elapsed-time utility; every ad-hoc
  ``time.perf_counter()`` block in the repo routes through it.

Everything here is stdlib-only and imports nothing from the rest of
``repro``, so any layer (plan cache, backends, service, facade) can
instrument itself without import cycles.
"""

from __future__ import annotations

import time

from .logs import configure as configure_logs
from .logs import disable as disable_logs
from .logs import emit, emit_span
from .logs import is_enabled as logs_enabled
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    registry,
    set_registry,
)
from .trace import (
    Span,
    aggregate_spans,
    attach,
    current_span,
    end_trace,
    is_tracing,
    render_span_tree,
    span,
    start_trace,
    trace,
)

__all__ = [
    # trace
    "Span",
    "span",
    "trace",
    "start_trace",
    "end_trace",
    "current_span",
    "is_tracing",
    "attach",
    "aggregate_spans",
    "render_span_tree",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "registry",
    "set_registry",
    # logs
    "configure_logs",
    "disable_logs",
    "logs_enabled",
    "emit",
    "emit_span",
    # timing
    "Timer",
]


class Timer:
    """The shared elapsed-time block: ``with Timer() as t: ...; t.seconds``.

    Wall-clock via ``time.perf_counter()``.  ``seconds`` reads live while
    the block is still open (useful for progress output) and freezes at
    exit.  Optionally records into a registry histogram::

        with Timer(metric="fuzz.case_seconds"):
            run_case()
    """

    __slots__ = ("_start", "_elapsed", "_metric")

    def __init__(self, metric: str = "") -> None:
        self._start = 0.0
        self._elapsed: float = -1.0
        self._metric = metric

    def __enter__(self) -> "Timer":
        self._elapsed = -1.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._elapsed = time.perf_counter() - self._start
        if self._metric:
            registry().histogram(self._metric).observe(self._elapsed)

    @property
    def seconds(self) -> float:
        """Elapsed seconds — live inside the block, frozen after exit."""
        if self._elapsed >= 0.0:
            return self._elapsed
        return time.perf_counter() - self._start
