"""GAV XML views of XML data and query answering without materialisation.

Sect. 3.4 of the paper considers GAV mappings ``sigma : D1 -> D2`` where
``D1`` (the view DTD) is *contained in* ``D2`` (the source DTD): for any
source document ``T`` conforming to ``D2``, the view ``V`` is the maximal
top-down substructure of ``T`` that conforms to ``D1`` — the root maps to
the root, and an element reached via a path ``rho`` in ``V`` maps to the
element reached via the same path in ``T``.  Such views arise in XML access
control (revealing only part of a document) and data integration.

Because XPath is not closed under rewriting over such views (Example 3.2)
and regular XPath incurs an exponential blow-up (Example 3.3), the paper's
first translation step — XPath to *extended* XPath over ``D1`` — doubles as
a polynomial-time query answering algorithm: the rewritten query, evaluated
over the source ``T``, returns exactly ``Q(V)``.

This module provides:

* :func:`extract_view` — materialise ``V`` from ``T`` (used by tests to
  check the equivalence; real deployments keep ``V`` virtual);
* :class:`GAVView` — a view definition that answers XPath queries over the
  virtual view by rewriting them with XPathToEXp and evaluating the
  extended query on the source document (or pushing it to the RDBMS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.expath_to_sql import TranslationOptions
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy, XPathToExtended
from repro.dtd.model import DTD
from repro.errors import ViewError
from repro.expath.ast import ExtendedXPathQuery
from repro.expath.evaluator import ExtendedXPathEvaluator
from repro.xmltree.tree import XMLNode, XMLTree
from repro.xpath.ast import Path
from repro.xpath.parser import parse_xpath

__all__ = ["GAVView", "extract_view", "answer_on_view"]


def extract_view(source: XMLTree, view_dtd: DTD) -> XMLTree:
    """Materialise the GAV view of ``source`` defined by ``view_dtd``.

    The view keeps the source root and, recursively, every child whose
    element type is a child of the current type in the view DTD; all other
    subtrees are pruned.  The result is the maximal top-down substructure of
    the source that uses only the view DTD's edges, with the same node
    labels and text values (node identities are fresh).
    """
    if source.root.label != view_dtd.root:
        raise ViewError(
            f"source root {source.root.label!r} does not match view root {view_dtd.root!r}"
        )
    view = XMLTree.create(source.root.label, source.root.value)

    def copy_children(source_node: XMLNode, view_node: XMLNode) -> None:
        allowed = set(view_dtd.children(source_node.label))
        for child in source_node.children:
            if child.label not in allowed:
                continue
            copied = view.add_child(view_node, child.label, child.value)
            copy_children(child, copied)

    copy_children(source.root, view.root)
    return view


class GAVView:
    """A virtual GAV XML view: answer XPath queries without materialising it.

    Parameters
    ----------
    view_dtd:
        The (possibly recursive) DTD ``D1`` of the view.
    source_dtd:
        Optional source DTD ``D2``; when provided it must contain
        ``view_dtd`` (Sect. 2.1 containment), which is the condition under
        which the rewriting is exact.
    """

    def __init__(self, view_dtd: DTD, source_dtd: Optional[DTD] = None) -> None:
        self._view_dtd = view_dtd
        self._source_dtd = source_dtd
        if source_dtd is not None and not view_dtd.is_contained_in(source_dtd):
            raise ViewError(
                f"view DTD {view_dtd.name!r} is not contained in source DTD "
                f"{source_dtd.name!r}; query answering would not be exact"
            )
        self._rewriter = XPathToExtended(view_dtd, strategy=DescendantStrategy.CYCLEEX)

    @property
    def view_dtd(self) -> DTD:
        """The view DTD ``D1``."""
        return self._view_dtd

    @property
    def source_dtd(self) -> Optional[DTD]:
        """The source DTD ``D2`` (if declared)."""
        return self._source_dtd

    def rewrite(self, query) -> ExtendedXPathQuery:
        """Rewrite an XPath query on the view into extended XPath on the source.

        The rewriting is computed in polynomial time and is equivalent to the
        original query over every source DTD containing the view DTD
        (Theorem 4.2).
        """
        path = parse_xpath(query) if isinstance(query, str) else query
        return self._rewriter.translate(path)

    def answer(self, query, source: XMLTree) -> List[XMLNode]:
        """Answer a view query directly on the source document (native engine).

        Returns the source nodes whose images in the view would be selected
        by the query; the view itself is never materialised.
        """
        rewritten = self.rewrite(query)
        return ExtendedXPathEvaluator(source).evaluate_query(rewritten)

    def answer_via_rdbms(self, query, source: XMLTree) -> List[XMLNode]:
        """Answer a view query by shredding the source and running SQL.

        Combines both paper contributions: the view rewriting (step 1) and
        the SQL lowering with the LFP operator (step 2).  The source is
        shredded with the *source* DTD when one is declared, otherwise with
        the view DTD.
        """
        storage_dtd = self._source_dtd or self._view_dtd
        translator = XPathToSQLTranslator(storage_dtd)
        # Rewriting happens over the *view* DTD so excluded edges are never
        # followed; lowering happens over the storage mapping of the source.
        rewritten = self.rewrite(query)
        program = translator.lower_extended(rewritten)
        shredded = translator.shred(source)
        from repro.relational.executor import Executor
        from repro.relational.schema import T as T_COLUMN

        executor = Executor(shredded.database)
        relation = executor.run(program)
        return shredded.nodes_for_ids(relation.column_values(T_COLUMN))


def answer_on_view(query, view_dtd: DTD, source: XMLTree) -> List[XMLNode]:
    """Convenience wrapper: answer ``query`` on the virtual view of ``source``."""
    return GAVView(view_dtd).answer(query, source)
