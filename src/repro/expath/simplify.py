"""Simplification of extended XPath expressions and equation systems.

Implements the pruning applied by the translation algorithms (Sect. 4):

* empty-set elimination — ``EMPTYSET UNION E = E`` and ``E/EMPTYSET = EMPTYSET``;
* identity elimination — ``eps/E = E``;
* duplicate-union elimination;
* equation pruning — drop ``X = EMPTYSET``, inline trivial aliases
  ``X = Y`` / ``X = A``, and drop equations the result does not depend on
  (the three pruning rules listed for CycleEX).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.expath.ast import (
    EAnd,
    EEmpty,
    EEmptySet,
    ELabel,
    ENot,
    EOr,
    EPathQual,
    EQualified,
    EQualifier,
    ESlash,
    EStar,
    ETextEquals,
    EUnion,
    EVar,
    Equation,
    Expr,
    ExtendedXPathQuery,
    eslash,
    eunion,
)

__all__ = ["simplify_expression", "simplify_qualifier", "simplify_query"]


def _strip_empty_branches(expr: Expr) -> Expr:
    """Remove ``eps`` branches from a union (used under a Kleene closure).

    ``(E UNION eps)* == E*``, and dropping the ``eps`` keeps the identity
    relation out of the LFP operator's input.
    """
    if isinstance(expr, EEmpty):
        return EEmptySet()
    if isinstance(expr, EUnion):
        return eunion(_strip_empty_branches(expr.left), _strip_empty_branches(expr.right))
    return expr


def simplify_expression(expr: Expr) -> Expr:
    """Return an equivalent expression with trivial sub-expressions folded."""
    if isinstance(expr, ESlash):
        return eslash(simplify_expression(expr.left), simplify_expression(expr.right))
    if isinstance(expr, EUnion):
        left = simplify_expression(expr.left)
        right = simplify_expression(expr.right)
        return eunion(left, right)
    if isinstance(expr, EStar):
        inner = _strip_empty_branches(simplify_expression(expr.inner))
        if isinstance(inner, (EEmptySet, EEmpty)):
            return EEmpty()
        if isinstance(inner, EStar):
            return inner  # (E*)* == E*
        return EStar(inner)
    if isinstance(expr, EQualified):
        base = simplify_expression(expr.expr)
        if isinstance(base, EEmptySet):
            return EEmptySet()
        qualifier = simplify_qualifier(expr.qualifier)
        if qualifier is None:
            return base  # qualifier statically true
        if qualifier is False:
            return EEmptySet()  # qualifier statically false
        return EQualified(base, qualifier)
    return expr


def simplify_qualifier(qualifier: EQualifier):
    """Simplify a qualifier.

    Returns ``None`` when the qualifier is statically true (``[eps]``),
    ``False`` when statically false (``[EMPTYSET]``), or a simplified
    qualifier otherwise.
    """
    if isinstance(qualifier, EPathQual):
        expr = simplify_expression(qualifier.expr)
        if isinstance(expr, EEmpty):
            return None
        if isinstance(expr, EEmptySet):
            return False
        return EPathQual(expr)
    if isinstance(qualifier, ENot):
        inner = simplify_qualifier(qualifier.inner)
        if inner is None:
            return False
        if inner is False:
            return None
        return ENot(inner)
    if isinstance(qualifier, EAnd):
        left = simplify_qualifier(qualifier.left)
        right = simplify_qualifier(qualifier.right)
        if left is False or right is False:
            return False
        if left is None:
            return right
        if right is None:
            return left
        return EAnd(left, right)
    if isinstance(qualifier, EOr):
        left = simplify_qualifier(qualifier.left)
        right = simplify_qualifier(qualifier.right)
        if left is None or right is None:
            return None
        if left is False:
            return right
        if right is False:
            return left
        return EOr(left, right)
    return qualifier


def _substitute_aliases(expr: Expr, aliases: Dict[str, Expr]) -> Expr:
    if isinstance(expr, EVar) and expr.name in aliases:
        return aliases[expr.name]
    if isinstance(expr, ESlash):
        return eslash(
            _substitute_aliases(expr.left, aliases), _substitute_aliases(expr.right, aliases)
        )
    if isinstance(expr, EUnion):
        return eunion(
            _substitute_aliases(expr.left, aliases), _substitute_aliases(expr.right, aliases)
        )
    if isinstance(expr, EStar):
        inner = _substitute_aliases(expr.inner, aliases)
        return EEmpty() if isinstance(inner, EEmptySet) else EStar(inner)
    if isinstance(expr, EQualified):
        return EQualified(
            _substitute_aliases(expr.expr, aliases),
            _substitute_aliases_qualifier(expr.qualifier, aliases),
        )
    return expr


def _substitute_aliases_qualifier(qualifier: EQualifier, aliases: Dict[str, Expr]) -> EQualifier:
    if isinstance(qualifier, EPathQual):
        return EPathQual(_substitute_aliases(qualifier.expr, aliases))
    if isinstance(qualifier, ENot):
        return ENot(_substitute_aliases_qualifier(qualifier.inner, aliases))
    if isinstance(qualifier, EAnd):
        return EAnd(
            _substitute_aliases_qualifier(qualifier.left, aliases),
            _substitute_aliases_qualifier(qualifier.right, aliases),
        )
    if isinstance(qualifier, EOr):
        return EOr(
            _substitute_aliases_qualifier(qualifier.left, aliases),
            _substitute_aliases_qualifier(qualifier.right, aliases),
        )
    return qualifier


def simplify_query(query: ExtendedXPathQuery) -> ExtendedXPathQuery:
    """Simplify every equation, inline trivial aliases, and prune dead equations.

    Alias inlining covers the CycleEX pruning rules: equations whose
    right-hand side is the empty set, a bare variable or a single label are
    substituted away rather than kept as separate equations/temporary tables.
    """
    aliases: Dict[str, Expr] = {}
    equations: List[Equation] = []
    for equation in query.equations:
        expr = simplify_expression(_substitute_aliases(equation.expression, aliases))
        if isinstance(expr, (EEmptySet, EEmpty, EVar, ELabel)):
            aliases[equation.variable] = expr
            continue
        equations.append(Equation(equation.variable, expr))
    result = simplify_expression(_substitute_aliases(query.result, aliases))
    return ExtendedXPathQuery(equations, result).pruned()
