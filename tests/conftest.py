"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dtd import samples
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document


@pytest.fixture(scope="session")
def dept_dtd():
    """The dept DTD of Fig. 1(a)."""
    return samples.dept_dtd()


@pytest.fixture(scope="session")
def cross_dtd():
    """The cross-cycle DTD of Fig. 11(a)."""
    return samples.cross_dtd()


@pytest.fixture(scope="session")
def gedml_dtd():
    """The 9-cycle GedML DTD of Fig. 11(c)."""
    return samples.gedml_dtd()


@pytest.fixture(scope="session")
def dept_tree(dept_dtd):
    """A small generated dept document (deterministic seed)."""
    return generate_document(dept_dtd, x_l=6, x_r=3, seed=1)


@pytest.fixture(scope="session")
def cross_tree(cross_dtd):
    """A small generated cross-cycle document (deterministic seed)."""
    return generate_document(cross_dtd, x_l=8, x_r=3, seed=5, max_elements=1200)


@pytest.fixture(scope="session")
def dept_shredded(dept_tree, dept_dtd):
    """The dept document shredded with the simplified mapping."""
    return shred_document(dept_tree, dept_dtd)


@pytest.fixture(scope="session")
def cross_shredded(cross_tree, cross_dtd):
    """The cross document shredded with the simplified mapping."""
    return shred_document(cross_tree, cross_dtd)


@pytest.fixture
def injected_sqlite_bug():
    """Deliberately inject a sqlgen bug: SQLite's result SELECT is silently
    truncated to one row — the wrong-answer class the differential fuzzing
    subsystem exists to catch."""
    from unittest import mock

    import repro.backends.sqlite as sqlite_backend

    real = sqlite_backend.program_statements

    def buggy(program, dialect):
        statements = real(program, dialect)
        statements[-1] = statements[-1] + " LIMIT 1"
        return statements

    with mock.patch.object(sqlite_backend, "program_statements", buggy):
        yield
