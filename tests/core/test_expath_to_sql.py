"""Unit tests for EXpToSQL (extended XPath -> relational programs)."""

import pytest

from repro.core.expath_to_sql import ExtendedToSQL, TranslationOptions, extended_to_sql
from repro.core.optimize import baseline_options, push_selection_options, standard_options
from repro.dtd import samples
from repro.expath.ast import (
    EDescendants,
    EEmpty,
    ELabel,
    EPathQual,
    EQualified,
    ESlash,
    EStar,
    ETextEquals,
    EUnion,
    EVar,
    ENot,
    EAnd,
    EOr,
    Equation,
    ExtendedXPathQuery,
)
from repro.relational.algebra import Fixpoint, IdentityRelation, RecursiveUnion, Select
from repro.relational.executor import execute_program
from repro.relational.schema import T as T_COLUMN
from repro.shredding.inlining import SimpleMapping
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document


@pytest.fixture(scope="module")
def dept():
    dtd = samples.dept_dtd()
    tree = generate_document(dtd, x_l=6, x_r=3, seed=33, max_elements=700)
    return dtd, tree, shred_document(tree, dtd)


def answer_ids(program, shredded):
    relation, _ = execute_program(shredded.database, program)
    return {int(value) for value in relation.column_values(T_COLUMN)}


def node_ids(nodes):
    return {node.node_id for node in nodes}


class TestLoweringCases:
    def _translate(self, dtd, expr, equations=(), options=None):
        query = ExtendedXPathQuery(list(equations), expr)
        return extended_to_sql(query, SimpleMapping(dtd), options)

    def test_label_scans_mapped_relation(self, dept):
        dtd, tree, shredded = dept
        program = self._translate(dtd, ELabel("dept"))
        assert answer_ids(program, shredded) == {tree.root.node_id}

    def test_slash_composes(self, dept):
        dtd, tree, shredded = dept
        expr = ESlash(ELabel("dept"), ELabel("course"))
        program = self._translate(dtd, expr)
        expected = {n.node_id for n in tree.root.children if n.label == "course"}
        assert answer_ids(program, shredded) == expected

    def test_union(self, dept):
        dtd, tree, shredded = dept
        expr = ESlash(ELabel("dept"), ESlash(ELabel("course"), EUnion(ELabel("cno"), ELabel("title"))))
        program = self._translate(dtd, expr)
        expected = node_ids(
            [
                grand
                for course in tree.root.children
                for grand in course.children
                if grand.label in ("cno", "title")
            ]
        )
        assert answer_ids(program, shredded) == expected

    def test_star_becomes_fixpoint(self, dept):
        dtd, tree, shredded = dept
        step = ESlash(ELabel("prereq"), ELabel("course"))
        expr = ESlash(ESlash(ELabel("dept"), ELabel("course")), EStar(step))
        program = self._translate(dtd, expr)
        assert any(isinstance(e, Fixpoint) for e in program.iter_expressions())
        # The result must contain the direct courses plus all prereq-courses.
        from repro.xpath.parser import parse_xpath
        from repro.xpath.evaluator import evaluate_xpath

        expected = node_ids(evaluate_xpath(tree, parse_xpath("dept/course"))) | node_ids(
            evaluate_xpath(tree, parse_xpath("dept/course//prereq/course"))
        )
        assert answer_ids(program, shredded) == expected

    def test_variable_becomes_temporary(self, dept):
        dtd, tree, shredded = dept
        equations = [Equation("Step", ESlash(ELabel("takenBy"), ELabel("student")))]
        expr = ESlash(ESlash(ELabel("dept"), ELabel("course")), EVar("Step"))
        program = self._translate(dtd, expr, equations)
        from repro.xpath.evaluator import evaluate_xpath
        from repro.xpath.parser import parse_xpath

        expected = node_ids(
            evaluate_xpath(tree, parse_xpath("dept/course/takenBy/student"))
        )
        assert answer_ids(program, shredded) == expected

    def test_text_qualifier_becomes_selection(self, dept):
        dtd, tree, shredded = dept
        target = tree.nodes_with_label("cno")[0]
        expr = ESlash(
            ESlash(ELabel("dept"), ELabel("course")),
            EQualified(ELabel("cno"), ETextEquals(target.value)),
        )
        program = self._translate(dtd, expr)
        answers = answer_ids(program, shredded)
        assert target.node_id in answers
        assert all(tree.node(i).value == target.value for i in answers)

    def test_path_qualifier_becomes_semijoin(self, dept):
        dtd, tree, shredded = dept
        expr = ESlash(ELabel("dept"), EQualified(ELabel("course"), EPathQual(ELabel("project"))))
        program = self._translate(dtd, expr)
        expected = node_ids(
            [c for c in tree.root.children if any(g.label == "project" for g in c.children)]
        )
        assert answer_ids(program, shredded) == expected

    def test_negated_qualifier_becomes_difference(self, dept):
        dtd, tree, shredded = dept
        expr = ESlash(
            ELabel("dept"), EQualified(ELabel("course"), ENot(EPathQual(ELabel("project"))))
        )
        program = self._translate(dtd, expr)
        expected = node_ids(
            [c for c in tree.root.children if not any(g.label == "project" for g in c.children)]
        )
        assert answer_ids(program, shredded) == expected

    def test_and_or_qualifiers(self, dept):
        dtd, tree, shredded = dept
        both = EAnd(EPathQual(ELabel("project")), EPathQual(ELabel("prereq")))
        either = EOr(EPathQual(ELabel("project")), EPathQual(ELabel("takenBy")))
        for qualifier in (both, either):
            expr = ESlash(ELabel("dept"), EQualified(ELabel("course"), qualifier))
            program = self._translate(dtd, expr)
            answers = answer_ids(program, shredded)
            assert answers <= node_ids(tree.root.children)

    def test_descendants_marker_becomes_recursive_union(self, dept):
        dtd, tree, shredded = dept
        expr = ESlash(ELabel("dept"), EDescendants("dept", "project"))
        program = self._translate(dtd, expr)
        assert any(isinstance(e, RecursiveUnion) for e in program.iter_expressions())
        assert answer_ids(program, shredded) == node_ids(tree.nodes_with_label("project"))

    def test_root_selection_applied(self, dept):
        dtd, _, _ = dept
        program = self._translate(dtd, ELabel("dept"))
        assert isinstance(program.result, Select)

    def test_root_selection_can_be_disabled(self, dept):
        dtd, _, _ = dept
        options = TranslationOptions(select_root=False)
        program = self._translate(dtd, ELabel("dept"), options=options)
        assert not isinstance(program.result, Select)


class TestOptionVariants:
    @pytest.mark.parametrize(
        "options",
        [baseline_options(), standard_options(), push_selection_options()],
        ids=["baseline", "standard", "push"],
    )
    def test_all_option_sets_agree(self, dept, options):
        dtd, tree, shredded = dept
        step = ESlash(ELabel("prereq"), ELabel("course"))
        expr = ESlash(
            ESlash(ESlash(ELabel("dept"), ELabel("course")), EStar(step)), ELabel("project")
        )
        program = extended_to_sql(ExtendedXPathQuery([], expr), SimpleMapping(dtd), options)
        reference = extended_to_sql(
            ExtendedXPathQuery([], expr), SimpleMapping(dtd), baseline_options()
        )
        assert answer_ids(program, shredded) == answer_ids(reference, shredded)

    def test_baseline_uses_full_identity(self, dept):
        dtd, _, _ = dept
        expr = ESlash(ESlash(ELabel("dept"), ELabel("course")), EStar(ESlash(ELabel("prereq"), ELabel("course"))))
        program = extended_to_sql(ExtendedXPathQuery([], expr), SimpleMapping(dtd), baseline_options())
        assert any(isinstance(e, IdentityRelation) for e in program.iter_expressions())

    def test_standard_avoids_full_identity_for_visible_star(self, dept):
        dtd, _, _ = dept
        expr = ESlash(ESlash(ELabel("dept"), ELabel("course")), EStar(ESlash(ELabel("prereq"), ELabel("course"))))
        program = extended_to_sql(ExtendedXPathQuery([], expr), SimpleMapping(dtd), standard_options())
        assert not any(isinstance(e, IdentityRelation) for e in program.iter_expressions())

    def test_push_anchors_fixpoints(self, dept):
        dtd, _, _ = dept
        expr = ESlash(ESlash(ELabel("dept"), ELabel("course")), EStar(ESlash(ELabel("prereq"), ELabel("course"))))
        program = extended_to_sql(
            ExtendedXPathQuery([], expr), SimpleMapping(dtd), push_selection_options()
        )
        fixpoints = [e for e in program.iter_expressions() if isinstance(e, Fixpoint)]
        assert fixpoints and all(f.source_anchor is not None for f in fixpoints)
