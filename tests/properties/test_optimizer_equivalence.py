"""Optimizer-level equivalence: level 0 == level 1 == level 2, everywhere.

The Issue 4 property: the program-optimizer pass pipeline is semantically
invisible.  Checked three ways:

* schema-guided random queries over *all 8 sample DTDs*, executed on both
  backends at every optimizer level — identical node sets (and identical to
  the direct XPath evaluator);
* every case of the checked-in fuzz regression corpus replayed at every
  level;
* the auto strategy answers exactly like every concrete strategy.
"""

from __future__ import annotations

import pytest

from repro.backends import create_backend
from repro.core.optimize import OPTIMIZE_LEVELS
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd import samples
from repro.fuzz.cases import FuzzCase
from repro.fuzz.xpath_gen import RandomXPathGenerator, XPathGenConfig
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath

from pathlib import Path

ALL_SAMPLE_DTDS = sorted(samples.paper_dtds())
BACKENDS = ("memory", "sqlite")
CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz" / "corpus"


@pytest.fixture(scope="module")
def sample_documents():
    documents = {}
    for name, dtd in samples.paper_dtds().items():
        tree = generate_document(
            dtd, x_l=7, x_r=3, seed=29, max_elements=250, distinct_values=4
        )
        documents[name] = (dtd, tree, shred_document(tree, dtd))
    return documents


class TestLevelsAgreeOnSampleDTDs:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
    def test_all_levels_return_identical_answers(
        self, sample_documents, dtd_name, backend_name
    ):
        dtd, tree, shredded = sample_documents[dtd_name]
        queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=19)).queries(5)
        backend = create_backend(backend_name, shredded.database)
        try:
            for query_text in queries:
                query = parse_xpath(query_text)
                expected = {
                    str(n.node_id) for n in evaluate_xpath(tree, query)
                }
                per_level = {}
                for level in OPTIMIZE_LEVELS:
                    translator = XPathToSQLTranslator(dtd, optimize_level=level)
                    program = translator.translate(query).program
                    per_level[level] = set(backend.execute(program).node_ids())
                for level, ids in per_level.items():
                    assert ids == expected, (dtd_name, backend_name, level, query_text)
        finally:
            backend.close()


class TestLevelsAgreeOnFuzzCorpus:
    CASES = sorted(CORPUS_DIR.glob("*.json"))

    @pytest.mark.parametrize("case_path", CASES, ids=lambda p: p.stem)
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_corpus_case_level_invariant(self, case_path, backend_name):
        case = FuzzCase.load(case_path)
        dtd = case.dtd()
        tree = case.tree()
        query = parse_xpath(case.query)
        shredded = shred_document(tree, dtd)
        expected = {str(n.node_id) for n in evaluate_xpath(tree, query)}
        backend = create_backend(backend_name, shredded.database)
        try:
            for level in OPTIMIZE_LEVELS:
                translator = XPathToSQLTranslator(dtd, optimize_level=level)
                program = translator.translate(query).program
                ids = set(backend.execute(program).node_ids())
                assert ids == expected, (case.label, backend_name, level)
        finally:
            backend.close()


class TestAutoStrategyEquivalence:
    @pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
    def test_auto_matches_every_concrete_strategy(self, sample_documents, dtd_name):
        dtd, tree, shredded = sample_documents[dtd_name]
        queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=23)).queries(4)
        auto = XPathToSQLTranslator(dtd, strategy=DescendantStrategy.AUTO)
        concrete = [
            XPathToSQLTranslator(dtd, strategy=strategy)
            for strategy in DescendantStrategy
            if strategy is not DescendantStrategy.AUTO
        ]
        for query_text in queries:
            query = parse_xpath(query_text)
            via_auto = {n.node_id for n in auto.answer(query, shredded)}
            for translator in concrete:
                got = {n.node_id for n in translator.answer(query, shredded)}
                assert got == via_auto, (dtd_name, translator.strategy, query_text)
