"""Deterministic-seed validity properties of the random generators.

The whole fuzzing subsystem rests on three guarantees, checked here over a
spread of seeds:

* generated DTDs are structurally valid, round-trip through the grammar
  syntax, and are recursive exactly when cycles were requested;
* documents generated from a random DTD always conform to it;
* generated queries always parse, resolve every label against the DTD, and
  translate under every descendant strategy.
"""

import pytest

from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd.parser import parse_dtd
from repro.fuzz.cases import DocumentSpec, FuzzCase
from repro.fuzz.dtd_gen import DTDGenConfig, RandomDTDGenerator
from repro.fuzz.xpath_gen import RandomXPathGenerator, XPathGenConfig, query_labels
from repro.xmltree.validator import conforms
from repro.xpath.parser import parse_xpath

SEEDS = list(range(12))


def _dtd_for(seed: int, cycle_edges: int):
    return RandomDTDGenerator(DTDGenConfig(seed=seed, cycle_edges=cycle_edges)).generate()


class TestRandomDTDGenerator:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_valid_and_round_trips(self, seed):
        dtd = _dtd_for(seed, cycle_edges=seed % 4)
        # The DTD constructor validates referential integrity; also check
        # the grammar-text round trip preserves the graph exactly.
        reparsed = parse_dtd(dtd.to_text())
        assert set(reparsed.element_types) == set(dtd.element_types)
        assert reparsed.text_types == dtd.text_types
        assert {(e.parent, e.child, e.starred) for e in reparsed.edges()} == {
            (e.parent, e.child, e.starred) for e in dtd.edges()
        }

    @pytest.mark.parametrize("seed", SEEDS)
    def test_recursion_is_a_knob(self, seed):
        assert not _dtd_for(seed, cycle_edges=0).is_recursive()
        assert _dtd_for(seed, cycle_edges=2).is_recursive()

    def test_deterministic_per_seed(self):
        config = DTDGenConfig(seed=99, cycle_edges=2)
        first = RandomDTDGenerator(config).generate()
        second = RandomDTDGenerator(config).generate()
        assert first.to_text() == second.to_text()

    def test_distinct_seeds_differ(self):
        texts = {_dtd_for(seed, cycle_edges=1).to_text() for seed in range(20)}
        assert len(texts) > 10  # some collisions are fine; sameness is not

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_documents_conform(self, seed):
        dtd = _dtd_for(seed, cycle_edges=seed % 4)
        for doc_seed in (0, 1, 2):
            tree = DocumentSpec(seed=doc_seed, max_elements=150).generate(dtd)
            assert conforms(tree, dtd), (seed, doc_seed, dtd.to_text())


class TestRandomXPathGenerator:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_queries_parse_and_resolve(self, seed):
        dtd = _dtd_for(seed, cycle_edges=seed % 3)
        generator = RandomXPathGenerator(
            dtd, XPathGenConfig(seed=seed, predicate_probability=0.6)
        )
        for query_text in generator.queries(8):
            path = parse_xpath(query_text)
            assert query_labels(path) <= set(dtd.element_types), query_text
            assert str(parse_xpath(str(path))) == str(path)  # print/parse round trip

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_queries_translate_under_every_strategy(self, seed):
        dtd = _dtd_for(seed, cycle_edges=2)
        generator = RandomXPathGenerator(dtd, XPathGenConfig(seed=seed))
        queries = generator.queries(5)
        for strategy in DescendantStrategy:
            translator = XPathToSQLTranslator(dtd, strategy=strategy)
            for query_text in queries:
                result = translator.translate(query_text)
                assert result.program.assignments or result.program.result is not None

    def test_deterministic_stream(self):
        dtd = _dtd_for(7, cycle_edges=2)
        first = RandomXPathGenerator(dtd, XPathGenConfig(seed=3)).queries(10)
        second = RandomXPathGenerator(dtd, XPathGenConfig(seed=3)).queries(10)
        assert first == second


class TestCaseSerialization:
    def test_json_round_trip(self):
        dtd = _dtd_for(5, cycle_edges=1)
        case = FuzzCase(
            label="round-trip",
            dtd_text=dtd.to_text(),
            query="e0//e1",
            document=DocumentSpec(seed=9, max_elements=64, x_l=5),
        )
        restored = FuzzCase.from_json(case.to_json())
        assert restored == case
        assert restored.dtd().to_text() == dtd.to_text()

    def test_save_and_load(self, tmp_path):
        case = FuzzCase("disk", _dtd_for(6, 1).to_text(), "e0/*")
        path = tmp_path / "case.json"
        case.save(path)
        assert FuzzCase.load(path) == case

    def test_unsupported_format_rejected(self):
        with pytest.raises(ValueError):
            FuzzCase.from_dict({"format": 999, "label": "x", "dtd": "", "query": ""})

    def test_malformed_cases_raise_value_error(self):
        with pytest.raises(ValueError, match="missing field"):
            FuzzCase.from_dict({"label": "x", "dtd": "root r\nr -> EMPTY\n"})
        with pytest.raises(ValueError, match="unknown knob"):
            FuzzCase.from_dict(
                {"label": "x", "dtd": "", "query": "r", "document": {"bogus_knob": 3}}
            )
        with pytest.raises(ValueError, match="must be an object"):
            FuzzCase.from_dict({"label": "x", "dtd": "", "query": "r", "document": 7})
