"""Mutation equivalence: the paper invariant survives live updates.

The Issue 10 property: for every schema-valid mutation script M over a
document T, answering Q on the incrementally-maintained relational store
(shred T, then apply M's :class:`~repro.live.delta.ShredDelta` through
``Backend.apply_delta``) equals answering Q over a from-scratch reshred of
M(T) — and both equal the XPath evaluator on M(T).  Checked across all 8
sample DTDs, both memory executors and the sqlite backend, at optimize
levels 0 and 2.
"""

from __future__ import annotations

import random

import pytest

from repro.api.config import EngineConfig
from repro.backends import create_backend
from repro.core.pipeline import XPathToSQLTranslator
from repro.dtd import samples
from repro.fuzz.xpath_gen import RandomXPathGenerator, XPathGenConfig
from repro.live.fuzzer import MutationGenConfig, RandomMutationGenerator
from repro.live.mutations import DocumentMutator
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath

ALL_SAMPLE_DTDS = sorted(samples.paper_dtds())
OPTIMIZE_LEVELS = (0, 2)

BACKEND_CONFIGS = {
    "memory/columnar": EngineConfig(backend="memory", executor="columnar"),
    "memory/tuple": EngineConfig(backend="memory", executor="tuple"),
    "sqlite": EngineConfig(backend="sqlite"),
}


@pytest.fixture(scope="module")
def mutated_documents():
    """Per DTD: the base tree, the mutated tree and the merged delta."""
    cases = {}
    for name, dtd in samples.paper_dtds().items():
        base = generate_document(
            dtd, x_l=7, x_r=3, seed=43, max_elements=220, distinct_values=4
        )
        generator = RandomMutationGenerator(
            dtd, random.Random(29), MutationGenConfig(mutations=6)
        )
        script = generator.script(base)
        mutated = base.copy()
        delta = DocumentMutator(mutated, dtd).apply_script(script)
        cases[name] = (dtd, base, mutated, script, delta)
    return cases


@pytest.mark.parametrize("level", OPTIMIZE_LEVELS)
@pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
def test_delta_arm_matches_scratch_arm_and_evaluator(
    mutated_documents, dtd_name, level
):
    dtd, base, mutated, script, delta = mutated_documents[dtd_name]
    assert script, f"no valid script generated for {dtd_name}"
    queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=47)).queries(4)
    translator = XPathToSQLTranslator(dtd, optimize_level=level)

    backends = {}
    for label, config in BACKEND_CONFIGS.items():
        delta_backend = create_backend(
            config, shred_document(base.copy(), dtd).database
        )
        delta_backend.apply_delta(delta)
        scratch_backend = create_backend(
            config, shred_document(mutated.copy(), dtd).database
        )
        backends[label] = delta_backend
        backends[f"{label}@scratch"] = scratch_backend

    try:
        for query_text in queries:
            query = parse_xpath(query_text)
            expected = {
                int(n.node_id) for n in evaluate_xpath(mutated, query)
            }
            program = translator.translate(query).program
            for label, backend in backends.items():
                ids = {int(i) for i in backend.execute(program).node_ids()}
                assert ids == expected, (dtd_name, label, level, query_text)
    finally:
        for backend in backends.values():
            backend.close()


def test_composed_deltas_equal_one_shot_script(mutated_documents):
    """Applying per-mutation deltas one by one equals the merged script delta."""
    dtd, base, mutated, script, delta = mutated_documents["cross"]
    stepped = base.copy()
    database = shred_document(stepped, dtd).database
    backend = create_backend("memory", database)
    mutator = DocumentMutator(stepped, dtd)
    try:
        for mutation in script:
            backend.apply_delta(mutator.apply(mutation))
        backend.apply_delta(mutator.flush_order())
        scratch = shred_document(mutated, dtd).database
        assert {
            name: frozenset(database.relation(name).rows) for name in database
        } == {name: frozenset(scratch.relation(name).rows) for name in scratch}
    finally:
        backend.close()
