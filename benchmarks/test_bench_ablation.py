"""Benchmark: ablations of the design choices called out in DESIGN.md.

Three ablations of the CycleEX lowering over the same cross-cycle dataset
and query (Qa = a/b//c/d):

* ``baseline``   — no data-dependent optimisation: the full identity
  relation R_id seeds every ``(E)*`` (Fig. 10 as written);
* ``small-seed`` — the Sect. 5.2 "Handling (E)*" optimisation only;
* ``push``       — small seeds plus selections/prefix joins pushed into the
  LFP operator.

A fourth benchmark measures the effect of qualifier folding in RewQual by
translating a query whose qualifier the DTD structure decides statically.
"""

import pytest

from repro.core.optimize import (
    baseline_options,
    push_selection_options,
    standard_options,
)
from repro.core.pipeline import XPathToSQLTranslator
from repro.relational.executor import Executor

VARIANTS = {
    "baseline": baseline_options(),
    "small-seed": standard_options(),
    "push": push_selection_options(),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_ablation_lfp_seeding_and_push(benchmark, cross_dataset, variant):
    dtd, tree, shredded = cross_dataset
    translator = XPathToSQLTranslator(dtd, options=VARIANTS[variant])
    program = translator.translate("a/b//c/d").program

    def run():
        return Executor(shredded.database).run(program)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["result_rows"] = len(result)
    benchmark.extra_info["lfps"] = program.operator_profile().lfps


@pytest.mark.parametrize("folding", ["with-dtd-folding", "without-folding-effect"])
def test_ablation_qualifier_folding(benchmark, cross_dataset, folding):
    """RewQual folds [not b/a] to true over the cross DTD (b never has an a child).

    The folded query collapses to plain a//d; the unfoldable control query
    keeps a real qualifier.  Comparing the two shows what the structural
    pruning of Sect. 4.2 saves.
    """
    dtd, tree, shredded = cross_dataset
    query = "a//d[not b/a]" if folding == "with-dtd-folding" else "a//d[not c]"
    translator = XPathToSQLTranslator(dtd)
    program = translator.translate(query).program

    def run():
        return Executor(shredded.database).run(program)

    benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["query"] = query
    benchmark.extra_info["joins"] = program.operator_profile().joins
