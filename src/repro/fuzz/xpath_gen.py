"""Seeded random XPath queries that are valid for a given DTD.

The generator is *schema guided*: it tracks the set of element types the
partial query can currently denote and only extends it along the DTD graph
— child steps pick from the union of the context types' children,
descendant steps pick from the types reachable from the context, and
``text() = c`` predicates target declared text types with values in the
shape the document generator produces (``"<label>-<k>"``).  Generated
queries therefore always parse, every label resolves against the DTD, and
answers are frequently non-empty — which is what gives the differential
oracle its bite.

Covered grammar (Sect. 2.2): label and wildcard steps, ``/`` and ``//``,
top-level unions, and qualifiers built from paths, text comparisons,
``not``, ``and`` and ``or``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.dtd.model import DTD
from repro.xpath.ast import Label, Path, Qualified, Qualifier

__all__ = ["XPathGenConfig", "RandomXPathGenerator", "query_labels"]


@dataclass(frozen=True)
class XPathGenConfig:
    """Shape knobs for :class:`RandomXPathGenerator`.

    Attributes
    ----------
    seed:
        RNG seed; the generator's query *stream* is deterministic for a
        fixed seed and call order.
    max_steps:
        Maximum number of steps appended after the root label.
    descendant_probability:
        Chance a step uses ``//`` rather than ``/``.
    wildcard_probability:
        Chance a step is ``*`` instead of a concrete label.
    predicate_probability:
        Chance a qualifier is attached after each step.
    union_probability:
        Chance the query is a top-level union of two rooted paths.
    max_predicate_depth:
        Nesting bound for ``not``/``and``/``or`` combinations.
    text_values:
        Predicate constants are drawn as ``"<label>-<k>"`` with
        ``k < text_values`` — matching the document generator's
        ``distinct_values`` so selective predicates actually select.
    """

    seed: int = 0
    max_steps: int = 3
    descendant_probability: float = 0.4
    wildcard_probability: float = 0.12
    predicate_probability: float = 0.4
    union_probability: float = 0.1
    max_predicate_depth: int = 2
    text_values: int = 4


class RandomXPathGenerator:
    """Generate a stream of random queries over one DTD.

    Example
    -------
    >>> from repro.dtd.samples import cross_dtd
    >>> generator = RandomXPathGenerator(cross_dtd(), XPathGenConfig(seed=1))
    >>> query = generator.generate()
    >>> query.startswith("a")
    True
    """

    def __init__(self, dtd: DTD, config: Optional[XPathGenConfig] = None) -> None:
        self._dtd = dtd
        self._config = config or XPathGenConfig()
        self._rng = random.Random(self._config.seed)

    def generate(self) -> str:
        """Generate the next query of the stream (a whole-document query)."""
        query = self._rooted_path()
        if self._rng.random() < self._config.union_probability:
            query = f"{query} | {self._rooted_path()}"
        return query

    def queries(self, count: int) -> List[str]:
        """Generate ``count`` queries."""
        return [self.generate() for _ in range(count)]

    # -- internals --------------------------------------------------------------

    def _rooted_path(self) -> str:
        """A path anchored at the DTD root, following the DTD graph."""
        config, rng = self._config, self._rng
        text = self._dtd.root
        context: Set[str] = {self._dtd.root}
        for _ in range(rng.randint(0, config.max_steps)):
            step = self._step(context)
            if step is None:
                break
            text += step
            if rng.random() < config.predicate_probability:
                predicate = self._predicate(context, config.max_predicate_depth)
                if predicate:
                    text += f"[{predicate}]"
        return text

    def _step(self, context: Set[str]) -> Optional[str]:
        """Append one step, updating ``context`` in place; None when stuck."""
        config, rng = self._config, self._rng
        descendant = rng.random() < config.descendant_probability
        if descendant:
            candidates = sorted(context | self._reachable(context))
        else:
            candidates = sorted(self._children(context))
        if not candidates:
            return None
        separator = "//" if descendant else "/"
        if not descendant and rng.random() < config.wildcard_probability:
            context.clear()
            context.update(candidates)
            return f"{separator}*"
        label = rng.choice(candidates)
        context.clear()
        context.add(label)
        return f"{separator}{label}"

    def _children(self, context: Set[str]) -> Set[str]:
        out: Set[str] = set()
        for element_type in context:
            out.update(self._dtd.children(element_type))
        return out

    def _reachable(self, context: Set[str]) -> Set[str]:
        out: Set[str] = set()
        for element_type in context:
            out.update(self._dtd.reachable_from(element_type))
        return out

    def _predicate(self, context: Set[str], depth: int) -> str:
        """A qualifier valid at ``context`` nodes (empty string when stuck)."""
        rng = self._rng
        kinds = ["path", "path", "text", "not", "and", "or"]
        if depth <= 0:
            kinds = ["path", "path", "text"]
        kind = rng.choice(kinds)
        if kind == "text":
            text_context = sorted(set(context) & self._dtd.text_types)
            if not text_context:
                kind = "path"
            else:
                label = rng.choice(text_context)
                value = rng.randrange(self._config.text_values)
                return f'text() = "{label}-{value}"'
        if kind == "path":
            return self._predicate_path(context)
        left = self._predicate(context, depth - 1)
        if not left:
            return ""
        if kind == "not":
            return f"not({left})"
        right = self._predicate(context, depth - 1)
        if not right:
            return left
        return f"({left} {'and' if kind == 'and' else 'or'} {right})"

    def _predicate_path(self, context: Set[str]) -> str:
        """A short relative path usable as an existential qualifier."""
        rng = self._rng
        local = set(context)
        parts: List[str] = []
        for index in range(rng.randint(1, 2)):
            descendant = rng.random() < self._config.descendant_probability
            candidates = sorted(
                local | self._reachable(local) if descendant else self._children(local)
            )
            if not candidates:
                break
            label = rng.choice(candidates)
            local = {label}
            parts.append(("//" if descendant else "/" if index else "") + label)
        if not parts:
            return ""
        text = "".join(parts)
        # A leading "//" is legal inside a qualifier; a leading "/" is not.
        return text


def query_labels(path: Path) -> Set[str]:
    """All element-type labels mentioned by ``path`` (for resolution checks)."""
    labels: Set[str] = set()

    def walk_path(node: Path) -> None:
        if isinstance(node, Label):
            labels.add(node.name)
        if isinstance(node, Qualified):
            walk_path(node.path)
            walk_qualifier(node.qualifier)
            return
        for child in node.children():
            walk_path(child)

    def walk_qualifier(node: Qualifier) -> None:
        from repro.xpath.ast import And, Not, Or, PathQual

        if isinstance(node, PathQual):
            walk_path(node.path)
        elif isinstance(node, Not):
            walk_qualifier(node.inner)
        elif isinstance(node, (And, Or)):
            walk_qualifier(node.left)
            walk_qualifier(node.right)

    walk_path(path)
    return labels
