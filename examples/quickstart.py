#!/usr/bin/env python3
"""Quickstart: translate and answer the paper's running example (Q1, Q2).

The script walks through the whole pipeline on the dept DTD of Fig. 1(a):

1. inspect the recursive DTD and its graph;
2. generate a synthetic document and shred it into relations (Table 1 style);
3. translate ``Q1 = dept//project`` to extended XPath and to SQL with the
   simple LFP operator (Example 3.5);
4. execute the translated program on the in-memory engine and check it
   against direct XPath evaluation;
5. do the same for the rich-qualifier query Q2 of Example 2.2.

Run with ``python examples/quickstart.py``.
"""

from repro import DescendantStrategy, SQLDialect, XPathToSQLTranslator, generate_document
from repro.dtd.samples import dept_dtd, describe
from repro.workloads.queries import DEPT_QUERIES
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath


def main() -> None:
    dtd = dept_dtd()
    print("== The dept DTD (Fig. 1a) ==")
    print(describe(dtd))
    print(dtd.to_text())

    # Generate and shred a document.
    document = generate_document(dtd, x_l=7, x_r=3, seed=42, max_elements=2000)
    print(f"generated document: {document.size()} elements, height {document.height()}")

    translator = XPathToSQLTranslator(dtd)
    shredded = translator.shred(document)
    print(f"shredded into {len(shredded.database.schema.relation_names)} relations, "
          f"{shredded.database.total_rows()} tuples\n")

    # Q1 = dept//project.
    print("== Q1 = dept//project ==")
    result = translator.translate(DEPT_QUERIES["Q1"])
    print("extended XPath rewriting:")
    print(result.extended)
    print("\nrelational program (with the simple LFP operator):")
    print(result.program)
    print("\nSQL (DB2 dialect):")
    print(result.sql(SQLDialect.DB2))

    answers = translator.answer(DEPT_QUERIES["Q1"], shredded)
    oracle = evaluate_xpath(document, parse_xpath(DEPT_QUERIES["Q1"]))
    print(f"\nprojects found via SQL: {len(answers)}; via direct XPath: {len(oracle)}")
    assert {n.node_id for n in answers} == {n.node_id for n in oracle}

    # Q2: rich qualifiers with negation — beyond SQLGen-R's fragment.
    print("\n== Q2 (Example 2.2, rich qualifiers) ==")
    cno_values = [n.value for n in document.nodes_with_label("cno")]
    q2 = DEPT_QUERIES["Q2"].replace("cs66", cno_values[0] if cno_values else "cs66")
    print(q2)
    answers = translator.answer(q2, shredded)
    oracle = evaluate_xpath(document, parse_xpath(q2))
    print(f"courses found via SQL: {len(answers)}; via direct XPath: {len(oracle)}")
    assert {n.node_id for n in answers} == {n.node_id for n in oracle}

    # The same query through the SQLGen-R baseline for comparison.
    baseline = XPathToSQLTranslator(dtd, strategy=DescendantStrategy.RECURSIVE_UNION)
    baseline_answers = baseline.answer(DEPT_QUERIES["Q1"], shredded)
    print(f"\nSQLGen-R baseline answers Q1 with {len(baseline_answers)} projects "
          "(same result, SQL'99 recursion instead of the simple LFP)")

    print("\nquickstart finished: all answers match the XPath oracle")


if __name__ == "__main__":
    main()
