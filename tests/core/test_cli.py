"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["describe", "dept"])
        assert args.command == "describe"
        args = parser.parse_args(["translate", "cross", "a//d", "--dialect", "db2"])
        assert args.dialect == "db2"
        args = parser.parse_args(["answer", "cross", "a//d", "--elements", "500"])
        assert args.elements == 500
        args = parser.parse_args(["experiment", "exp5"])
        assert args.name == "exp5"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["translate", "cross", "a//d", "--strategy", "magic"])


class TestCommands:
    def test_describe_named_dtd(self, capsys):
        assert main(["describe", "dept"]) == 0
        output = capsys.readouterr().out
        assert "dept" in output
        assert "recursive=True" in output
        assert "course ->" in output

    def test_describe_dtd_file(self, tmp_path, capsys):
        path = tmp_path / "tiny.dtd"
        path.write_text("root r\nr -> a*\na -> r*\n")
        assert main(["describe", str(path)]) == 0
        assert "recursive=True" in capsys.readouterr().out

    def test_describe_unknown_dtd_exits(self):
        with pytest.raises(SystemExit):
            main(["describe", "no-such-dtd"])

    def test_translate_prints_all_artifacts(self, capsys):
        assert main(["translate", "dept", "dept//project", "--dialect", "db2"]) == 0
        output = capsys.readouterr().out
        assert "extended XPath" in output
        assert "relational program" in output
        assert "SQL (db2)" in output
        assert "LFPs" in output

    def test_translate_show_sql_only(self, capsys):
        assert main(["translate", "cross", "a//d", "--show", "sql"]) == 0
        output = capsys.readouterr().out
        assert "SQL (generic)" in output
        assert "relational program" not in output

    def test_translate_with_push_and_baseline_strategy(self, capsys):
        assert main(
            ["translate", "cross", "a//d", "--strategy", "recursive-union"]
        ) == 0
        assert "SQL'99 recursions" in capsys.readouterr().out
        assert main(["translate", "cross", "a//d", "--push-selections"]) == 0

    def test_answer_prints_matches(self, capsys):
        assert main(
            ["answer", "cross", "a//d", "--elements", "400", "--seed", "3", "--limit", "5"]
        ) == 0
        output = capsys.readouterr().out
        assert "matches:" in output
        assert "a/b" in output  # printed node paths start at the root

    def test_answer_respects_limit(self, capsys):
        main(["answer", "cross", "a//d", "--elements", "600", "--seed", "5", "--limit", "1"])
        output = capsys.readouterr().out
        assert "more" in output or output.count("node ") <= 1

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "exp3", "--quick"]) == 0
        assert "Fig. 14" in capsys.readouterr().out


class TestBackendFlags:
    def test_answer_backend_choices_registered(self):
        parser = build_parser()
        args = parser.parse_args(["answer", "cross", "a//d", "--backend", "sqlite"])
        assert args.backend == "sqlite"
        with pytest.raises(SystemExit):
            parser.parse_args(["answer", "cross", "a//d", "--backend", "nope"])

    def test_answer_on_sqlite_matches_memory(self, capsys):
        argv = ["answer", "cross", "a//d", "--elements", "300", "--seed", "3", "--limit", "3"]
        assert main(argv + ["--backend", "memory"]) == 0
        memory_output = capsys.readouterr().out
        assert main(argv + ["--backend", "sqlite"]) == 0
        sqlite_output = capsys.readouterr().out
        # Same matches, same printed nodes; only the stats line differs.
        assert memory_output.splitlines()[1:] == sqlite_output.splitlines()[1:]
        assert "matches:" in memory_output
        assert "backend: sqlite" in sqlite_output

    def test_translate_sqlite_dialect(self, capsys):
        assert main(["translate", "cross", "a//d", "--dialect", "sqlite", "--show", "sql"]) == 0
        output = capsys.readouterr().out
        assert "SQL (sqlite)" in output
        assert "WITH RECURSIVE" in output

    def test_experiment_backend_flag(self, capsys):
        assert main(["experiment", "exp3", "--quick", "--backend", "sqlite"]) == 0
        assert "Fig. 14" in capsys.readouterr().out

    def test_diff_subcommand(self, capsys):
        assert main(["diff", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "comparisons agree" in output
        assert "MISMATCH" not in output
