"""Paper workloads: the example/experiment queries and dataset builders."""

from repro.workloads.queries import (
    BIOML_CASES,
    CROSS_QUERIES,
    DEPT_QUERIES,
    GEDML_QUERY,
    SELECTIVE_QUERIES,
    BiomlCase,
)
from repro.workloads.datasets import (
    DatasetSpec,
    build_dataset,
    dept_sample_tree,
    scaled_elements,
)

__all__ = [
    "DEPT_QUERIES",
    "CROSS_QUERIES",
    "SELECTIVE_QUERIES",
    "BIOML_CASES",
    "BiomlCase",
    "GEDML_QUERY",
    "DatasetSpec",
    "build_dataset",
    "dept_sample_tree",
    "scaled_elements",
]
