"""A database instance: a schema plus one relation per schema entry."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, NODE_COLUMNS, T, V

__all__ = ["Database"]


class Database:
    """A set of named relations conforming to a :class:`DatabaseSchema`.

    The database distinguishes *base* relations (declared by the schema,
    filled by the shredder) from *temporary* relations created while a
    translated program runs; temporaries live in the executor, not here.
    """

    def __init__(self, schema: DatabaseSchema, relations: Optional[Mapping[str, Relation]] = None) -> None:
        self._schema = schema
        self._version = 0
        self._relations: Dict[str, Relation] = {}
        for name in schema.relation_names:
            self._relations[name] = Relation(schema.relation(name).columns, name=name)
        for name, relation in (relations or {}).items():
            self.set_relation(name, relation)

    # -- accessors --------------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema."""
        return self._schema

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every :meth:`set_relation`.

        Derived structures (the columnar store's dictionary-encoded copy)
        snapshot this to detect staleness instead of re-encoding per use.
        """
        return self._version

    def relation(self, name: str) -> Relation:
        """Return the relation named ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def set_relation(self, name: str, relation: Relation) -> None:
        """Replace the contents of relation ``name`` (columns must match)."""
        expected = self._schema.relation(name).columns
        if tuple(relation.columns) != tuple(expected):
            raise SchemaError(
                f"relation {name!r} expects columns {list(expected)}, "
                f"got {list(relation.columns)}"
            )
        self._relations[name] = relation.copy(name=name)
        self._version += 1

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __repr__(self) -> str:
        sizes = {name: len(rel) for name, rel in self._relations.items()}
        return f"Database({sizes})"

    def __getstate__(self) -> Dict[str, object]:
        # The columnar store is a derived cache (and holds a lock); each
        # process rebuilds it lazily rather than shipping it across pickles.
        state = dict(self.__dict__)
        state.pop("_columnar_store", None)
        return state

    def total_rows(self) -> int:
        """Total number of rows across all base relations."""
        return sum(len(rel) for rel in self._relations.values())

    # -- identity relation -------------------------------------------------------

    def identity_relation(self) -> Relation:
        """The identity relation ``R_id``: one ``(v, v, v.val)`` tuple per node.

        Built from the schema's node relations, whose rows are ``(F, T, V)``
        triples; used when translating ``eps`` and ``(E)*`` (Sect. 5.1).
        """
        rows = set()
        for name in self._schema.node_relations:
            relation = self._relations[name]
            t_index = relation.column_index(T)
            v_index = relation.column_index(V)
            for row in relation:
                rows.add((row[t_index], row[t_index], row[v_index]))
        return Relation(NODE_COLUMNS, rows, name="R_id")
