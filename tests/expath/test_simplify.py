"""Unit tests for extended XPath simplification and pruning."""

from repro.expath.ast import (
    EAnd,
    EEmpty,
    EEmptySet,
    ELabel,
    ENot,
    EOr,
    EPathQual,
    EQualified,
    ESlash,
    EStar,
    ETextEquals,
    EUnion,
    EVar,
    Equation,
    ExtendedXPathQuery,
)
from repro.expath.simplify import simplify_expression, simplify_qualifier, simplify_query


class TestExpressionSimplification:
    def test_empty_set_in_slash(self):
        expr = ESlash(ELabel("a"), ESlash(EEmptySet(), ELabel("b")))
        assert simplify_expression(expr) == EEmptySet()

    def test_empty_set_in_union(self):
        expr = EUnion(EEmptySet(), ELabel("a"))
        assert simplify_expression(expr) == ELabel("a")

    def test_identity_in_slash(self):
        expr = ESlash(EEmpty(), ELabel("a"))
        assert simplify_expression(expr) == ELabel("a")

    def test_duplicate_union_branches(self):
        expr = EUnion(ELabel("a"), ELabel("a"))
        assert simplify_expression(expr) == ELabel("a")

    def test_star_of_empty_is_identity(self):
        assert simplify_expression(EStar(EEmptySet())) == EEmpty()
        assert simplify_expression(EStar(EEmpty())) == EEmpty()

    def test_star_of_star_collapses(self):
        inner = EStar(ELabel("a"))
        assert simplify_expression(EStar(inner)) == inner

    def test_star_strips_identity_branch(self):
        # (eps | a)* == (a)* — keeps the identity relation out of LFP bases.
        expr = EStar(EUnion(EEmpty(), ELabel("a")))
        assert simplify_expression(expr) == EStar(ELabel("a"))

    def test_qualified_empty_base(self):
        expr = EQualified(EEmptySet(), EPathQual(ELabel("a")))
        assert simplify_expression(expr) == EEmptySet()

    def test_statically_true_qualifier_dropped(self):
        expr = EQualified(ELabel("a"), EPathQual(EEmpty()))
        assert simplify_expression(expr) == ELabel("a")

    def test_statically_false_qualifier_empties(self):
        expr = EQualified(ELabel("a"), EPathQual(EEmptySet()))
        assert simplify_expression(expr) == EEmptySet()


class TestQualifierSimplification:
    def test_not_of_true_is_false(self):
        assert simplify_qualifier(ENot(EPathQual(EEmpty()))) is False

    def test_not_of_false_is_true(self):
        assert simplify_qualifier(ENot(EPathQual(EEmptySet()))) is None

    def test_and_with_false_is_false(self):
        qualifier = EAnd(EPathQual(ELabel("a")), EPathQual(EEmptySet()))
        assert simplify_qualifier(qualifier) is False

    def test_and_with_true_keeps_other(self):
        qualifier = EAnd(EPathQual(EEmpty()), EPathQual(ELabel("a")))
        assert simplify_qualifier(qualifier) == EPathQual(ELabel("a"))

    def test_or_with_true_is_true(self):
        qualifier = EOr(EPathQual(ELabel("a")), EPathQual(EEmpty()))
        assert simplify_qualifier(qualifier) is None

    def test_or_with_false_keeps_other(self):
        qualifier = EOr(EPathQual(EEmptySet()), EPathQual(ELabel("a")))
        assert simplify_qualifier(qualifier) == EPathQual(ELabel("a"))

    def test_text_qualifier_unchanged(self):
        qualifier = ETextEquals("x")
        assert simplify_qualifier(qualifier) == qualifier


class TestQuerySimplification:
    def test_alias_equations_inlined(self):
        query = ExtendedXPathQuery(
            [
                Equation("A", ELabel("course")),
                Equation("B", EVar("A")),
                Equation("C", ESlash(EVar("B"), ELabel("cno"))),
            ],
            EVar("C"),
        )
        simplified = simplify_query(query)
        assert simplified.variables() == ["C"]
        assert str(simplified.definition("C")) == "course/cno"

    def test_empty_set_equations_removed(self):
        query = ExtendedXPathQuery(
            [
                Equation("dead", EEmptySet()),
                Equation("live", EUnion(EVar("dead"), ELabel("a"))),
            ],
            EVar("live"),
        )
        simplified = simplify_query(query)
        # 'live' collapses to the label and is itself inlined away.
        assert simplified.variables() == []
        assert simplified.result == ELabel("a")

    def test_unused_equations_pruned(self):
        query = ExtendedXPathQuery(
            [
                Equation("used", ESlash(ELabel("a"), ELabel("b"))),
                Equation("unused", ESlash(ELabel("c"), ELabel("d"))),
            ],
            EVar("used"),
        )
        assert simplify_query(query).variables() == ["used"]

    def test_simplification_preserves_semantics(self):
        from repro.expath.evaluator import evaluate_extended
        from repro.xmltree.tree import build_tree

        tree = build_tree(("a", [("b", [("c", [("d", "v")])]), ("b", [])]))
        query = ExtendedXPathQuery(
            [
                Equation("Step", EUnion(EEmptySet(), ESlash(ELabel("b"), ELabel("c")))),
                Equation("All", ESlash(ELabel("a"), EVar("Step"))),
            ],
            EVar("All"),
        )
        simplified = simplify_query(query)
        assert {n.node_id for n in evaluate_extended(tree, query)} == {
            n.node_id for n in evaluate_extended(tree, simplified)
        }
