"""The optimizer benchmark: translation + execution across optimizer levels.

One harness feeds both ``repro bench-optimizer`` and
``benchmarks/test_bench_optimizer.py`` (which writes the committed
``BENCH_4.json``), so the CI smoke run and the asserted benchmark measure
exactly the same scenarios:

``levels``
    The recursive paper workloads (dept, cross, gedml) translated and
    executed at optimizer levels 0/1/2 on both backends.  Level 0 is the
    raw Fig. 10 lowering; level 1 adds CSE, selection/projection collapse
    and dead-code elimination; level 2 adds DTD-graph reachability pruning.
    Every level must return byte-identical result sets; the report records
    program sizes (assignments, operators) and wall time per rung.

``empty_queries``
    Schema-dead queries (steps the DTD proves can match nothing).  The
    level-2 reachability pass collapses the whole program to a constant
    empty relation; levels 0/1 still scan the identity relation.  This is
    the "collapse the whole subprogram" acceptance case of Issue 4.

``auto_strategy``
    Per-query automatic descendant-strategy selection: what
    :func:`repro.core.optimize.select_strategy` resolves for each workload
    query, plus the recursion-free (LFP-less) programs it buys on the
    non-recursive library workload.

Every scenario cross-checks results between levels and backends — a
benchmark that got faster by being wrong must fail loudly.

Each level's stats additionally carry a ``phases`` breakdown: one traced
translate+execute pass (outside the timed repeats) aggregated per span
name via :func:`repro.obs.aggregate_spans`, so the report shows where the
per-level time goes (translate, individual optimizer passes, execute).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.backends import create_backend
from repro.core.optimize import OPTIMIZE_LEVELS, select_strategy
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd import samples
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.shredding.shredder import shred_document
from repro.workloads.queries import (
    CROSS_QUERIES,
    DEPT_QUERIES,
    GEDML_QUERY,
    SCALABILITY_QUERY,
)
from repro.xmltree.generator import generate_document

__all__ = [
    "OptimizerBenchConfig",
    "run_optimizer_benchmark",
    "describe_report",
    "write_report",
]

BENCH_NAME = "optimizer-levels"
BENCH_ISSUE = 4

# Queries the DTD graph proves empty (the level-2 collapse cases); all are
# over the cross DTD whose root is `a`.
EMPTY_QUERIES: Dict[str, str] = {
    "E1": "b",        # b is not the document root
    "E2": "a/a",      # a has no a child
    "E3": "b//d",     # dead from the virtual root
}


@dataclass(frozen=True)
class OptimizerBenchConfig:
    """Knobs of one benchmark run (the defaults are the committed baseline)."""

    elements: int = 1200
    repeats: int = 5
    seed: int = 13

    @classmethod
    def quick(cls) -> "OptimizerBenchConfig":
        """A tiny-budget configuration for CI smoke runs."""
        return cls(elements=300, repeats=2)


def _library_dtd() -> DTD:
    """A small non-recursive DTD (auto picks unfolding here)."""
    return parse_dtd(
        "root library\n"
        "library -> shelf*\n"
        "shelf -> book*\n"
        "book -> title, author*\n"
        "title -> EMPTY #text\n"
        "author -> EMPTY #text\n",
        name="library",
    )


def _recursive_workloads(config: OptimizerBenchConfig):
    dept = samples.dept_dtd()
    cross = samples.cross_dtd()
    gedml = samples.gedml_dtd()
    return [
        (
            "dept",
            dept,
            dict(DEPT_QUERIES),
            generate_document(
                dept, x_l=8, x_r=3, seed=config.seed, max_elements=config.elements
            ),
        ),
        (
            "cross",
            cross,
            {**CROSS_QUERIES, "Qs": SCALABILITY_QUERY},
            generate_document(
                cross, x_l=10, x_r=3, seed=config.seed, max_elements=config.elements
            ),
        ),
        (
            "gedml",
            gedml,
            {"Qg": GEDML_QUERY},
            generate_document(
                gedml, x_l=8, x_r=3, seed=config.seed, max_elements=config.elements
            ),
        ),
    ]


def _measure_level(
    dtd: DTD,
    queries: Dict[str, str],
    shredded,
    level: int,
    repeats: int,
) -> Tuple[Dict[str, object], Dict[str, frozenset]]:
    """Translate + execute every query at one level; return (stats, results)."""
    translator = XPathToSQLTranslator(dtd, optimize_level=level)
    programs = {}
    start = time.perf_counter()
    for _ in range(repeats):
        for name, query in queries.items():
            programs[name] = translator.translate(query).program
    translation_seconds = time.perf_counter() - start

    assignments = sum(len(program) for program in programs.values())
    operators = sum(
        program.operator_profile().total for program in programs.values()
    )

    execution: Dict[str, float] = {}
    results: Dict[str, frozenset] = {}
    for backend_name in ("memory", "sqlite"):
        backend = create_backend(backend_name, shredded.database)
        try:
            elapsed = 0.0
            for _ in range(repeats):
                for name, program in programs.items():
                    executed = backend.execute(program)
                    elapsed += executed.stats["elapsed_seconds"]
                    ids = frozenset(executed.node_ids())
                    key = f"{backend_name}:{name}"
                    previous = results.get(key)
                    assert previous is None or previous == ids
                    results[key] = ids
            execution[backend_name] = elapsed
        finally:
            backend.close()

    # One traced pass *outside* the timed repeats: translate each query
    # fresh (bypassing the warm plan cache) and execute it once on the
    # memory engine; the aggregated span tree is this level's per-phase
    # breakdown (translate, optimize passes, prepare, execute).
    with obs.trace(f"optbench-O{level}") as trace_root:
        backend = create_backend("memory", shredded.database)
        try:
            for query in queries.values():
                backend.execute(translator.translate_uncached(query).program)
        finally:
            backend.close()

    stats = {
        "translation_seconds": translation_seconds,
        "execution_seconds": execution,
        "total_seconds": translation_seconds + sum(execution.values()),
        "assignments": assignments,
        "operators": operators,
        "phases": obs.aggregate_spans(trace_root),
    }
    return stats, results


def _bench_levels(config: OptimizerBenchConfig) -> Dict[str, object]:
    per_workload: List[Dict[str, object]] = []
    all_match = True
    for label, dtd, queries, tree in _recursive_workloads(config):
        shredded = shred_document(tree, dtd)
        by_level: Dict[str, Dict[str, object]] = {}
        results_by_level: Dict[int, Dict[str, frozenset]] = {}
        for level in OPTIMIZE_LEVELS:
            stats, results = _measure_level(
                dtd, queries, shredded, level, config.repeats
            )
            by_level[str(level)] = stats
            results_by_level[level] = results
        matched = all(
            results_by_level[level] == results_by_level[OPTIMIZE_LEVELS[0]]
            for level in OPTIMIZE_LEVELS
        )
        all_match = all_match and matched
        level0 = by_level[str(OPTIMIZE_LEVELS[0])]
        level2 = by_level[str(OPTIMIZE_LEVELS[-1])]
        per_workload.append(
            {
                "workload": label,
                "document_elements": tree.size(),
                "queries": len(queries),
                "levels": by_level,
                "operator_reduction": level0["operators"] - level2["operators"],
                "assignment_reduction": level0["assignments"] - level2["assignments"],
                "total_speedup": (
                    level0["total_seconds"] / level2["total_seconds"]
                    if level2["total_seconds"]
                    else float("inf")
                ),
                "results_match": matched,
            }
        )
    return {"workloads": per_workload, "results_match": all_match}


def _bench_empty_queries(config: OptimizerBenchConfig) -> Dict[str, object]:
    dtd = samples.cross_dtd()
    tree = generate_document(
        dtd, x_l=10, x_r=3, seed=config.seed, max_elements=config.elements
    )
    shredded = shred_document(tree, dtd)
    by_level: Dict[str, Dict[str, object]] = {}
    all_empty = True
    for level in OPTIMIZE_LEVELS:
        stats, results = _measure_level(
            dtd, EMPTY_QUERIES, shredded, level, config.repeats
        )
        by_level[str(level)] = stats
        all_empty = all_empty and all(not ids for ids in results.values())
    collapsed = by_level[str(OPTIMIZE_LEVELS[-1])]["assignments"] == 0
    return {
        "document_elements": tree.size(),
        "queries": len(EMPTY_QUERIES),
        "levels": by_level,
        "level2_fully_collapsed": collapsed,
        "results_match": all_empty,
    }


def _bench_auto_strategy(config: OptimizerBenchConfig) -> Dict[str, object]:
    resolutions: Dict[str, str] = {}
    for label, dtd, queries, _ in _recursive_workloads(config):
        for name, query in queries.items():
            resolutions[f"{label}:{name}"] = select_strategy(dtd, query).value

    # The non-recursive workload: auto must pick unfolding, which produces
    # recursion-free programs (no LFP operators at all).
    library = _library_dtd()
    library_queries = {
        "L1": "library//title",
        "L2": "library//book[author]/title",
    }
    lfps: Dict[str, Dict[str, int]] = {}
    for mode, strategy in (
        ("auto", DescendantStrategy.AUTO),
        ("cycleex", DescendantStrategy.CYCLEEX),
    ):
        translator = XPathToSQLTranslator(library, strategy=strategy)
        lfps[mode] = {
            name: translator.translate(query).operator_profile().lfps
            for name, query in library_queries.items()
        }
        if mode == "auto":
            for name, query in library_queries.items():
                resolutions[f"library:{name}"] = select_strategy(library, query).value
    return {
        "resolutions": resolutions,
        "library_lfps": lfps,
        "library_recursion_free": all(count == 0 for count in lfps["auto"].values()),
    }


def run_optimizer_benchmark(
    config: Optional[OptimizerBenchConfig] = None,
) -> Dict[str, object]:
    """Run every scenario and return the (JSON-serializable) report."""
    config = config or OptimizerBenchConfig()
    levels = _bench_levels(config)
    empty = _bench_empty_queries(config)
    auto = _bench_auto_strategy(config)
    report: Dict[str, object] = {
        "bench": BENCH_NAME,
        "issue": BENCH_ISSUE,
        "created_unix": int(time.time()),
        "config": asdict(config),
        "scenarios": {
            "levels": levels,
            "empty_queries": empty,
            "auto_strategy": auto,
        },
    }
    report["ok"] = bool(
        levels["results_match"]
        and empty["results_match"]
        and empty["level2_fully_collapsed"]
        and auto["library_recursion_free"]
    )
    return report


def write_report(report: Dict[str, object], path: str) -> None:
    """Write a report as pretty-printed JSON (the ``BENCH_4.json`` format)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def describe_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a report (the CLI output)."""
    scenarios = report["scenarios"]
    lines = [
        f"optimizer benchmark ({report['bench']}, "
        f"{report['config']['elements']} elements, "
        f"{report['config']['repeats']} repeat(s))"
    ]
    for entry in scenarios["levels"]["workloads"]:
        level0 = entry["levels"]["0"]
        level2 = entry["levels"]["2"]
        lines.append(
            f"  {entry['workload']}: operators {level0['operators']} -> "
            f"{level2['operators']} (-{entry['operator_reduction']}), "
            f"total {level0['total_seconds']:.3f}s -> {level2['total_seconds']:.3f}s "
            f"({entry['total_speedup']:.2f}x)"
        )
    empty = scenarios["empty_queries"]
    empty0 = empty["levels"]["0"]
    empty2 = empty["levels"]["2"]
    lines.append(
        f"  empty queries: total {empty0['total_seconds']:.3f}s -> "
        f"{empty2['total_seconds']:.3f}s, level-2 programs fully collapsed: "
        f"{empty['level2_fully_collapsed']}"
    )
    auto = scenarios["auto_strategy"]
    chosen = sorted(set(auto["resolutions"].values()))
    lines.append(
        f"  auto strategy: resolutions use {', '.join(chosen)}; "
        f"library workload recursion-free: {auto['library_recursion_free']}"
    )
    lines.append(f"  results match: {report['ok']}")
    return "\n".join(lines)
