"""Unit tests for CycleEX (rec(A, B) as polynomial-size equation systems)."""

import pytest

from repro.core.cycleex import CycleEXIndex, rec_query
from repro.core.tarjan import CycleE
from repro.dtd.graph import DTDGraph
from repro.dtd import samples
from repro.expath.ast import EEmpty, EEmptySet, EVar
from repro.expath.evaluator import ExtendedXPathEvaluator
from repro.expath.metrics import count_operators
from repro.xmltree.generator import generate_document
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath


class TestStructure:
    def test_unreachable_pair_is_empty(self):
        index = CycleEXIndex(DTDGraph(samples.cross_dtd()))
        assert isinstance(index.result_expression("d", "a"), EEmptySet)
        assert not index.has_path("d", "a")

    def test_reachable_pair_has_expression(self):
        index = CycleEXIndex(DTDGraph(samples.cross_dtd()))
        assert index.has_path("a", "d")

    def test_self_pair_includes_identity(self):
        index = CycleEXIndex(DTDGraph(samples.cross_dtd()))
        expr = index.result_expression("b", "b")
        # descendant-or-self: must include the zero-length path.
        assert "." in str(expr) or expr == EEmpty()

    def test_equations_are_constant_size(self):
        index = CycleEXIndex(DTDGraph(samples.gedml_dtd()))
        for equation in index.equations:
            counts = count_operators(equation.expression)
            # At most: one union, two slashes (through-term) per equation,
            # plus the star equations with a single operator.
            assert counts.total <= 4

    def test_equation_count_polynomial(self):
        graph = DTDGraph(samples.gedml_dtd())
        index = CycleEXIndex(graph)
        n = len(graph)
        assert len(index.equations) <= n * n * (n + 1)

    def test_rec_query_is_pruned(self):
        query = rec_query(samples.cross_dtd(), "a", "d")
        used = set(query.result.variables())
        for equation in query.equations:
            used |= equation.expression.variables()
        assert set(query.variables()) <= used | {eq.variable for eq in query.equations}
        # And it must be dramatically smaller than the full table.
        full = CycleEXIndex(DTDGraph(samples.cross_dtd()))
        assert len(query.equations) < len(full.equations)

    def test_rec_prunes_dead_branches(self):
        query = rec_query(samples.cross_dtd(), "c", "d")
        # No equation may mention the unreachable-from-c type 'a'.
        assert "a" not in {str(v) for eq in query.equations for v in [eq.variable]}


class TestSemanticEquivalence:
    @pytest.mark.parametrize(
        "factory, source, target",
        [
            (samples.cross_dtd, "a", "d"),
            (samples.cross_dtd, "b", "b"),
            (samples.cross_dtd, "c", "b"),
            (samples.bioml_dtd, "gene", "locus"),
            (samples.bioml_dtd, "dna", "gene"),
            (samples.gedml_dtd, "even", "data"),
            (samples.dept_dtd, "dept", "project"),
            (samples.dept_dtd, "course", "course"),
        ],
    )
    def test_rec_equals_descendant_axis(self, factory, source, target):
        dtd = factory()
        tree = generate_document(dtd, x_l=6, x_r=3, seed=19, max_elements=800)
        query = rec_query(dtd, source, target)
        oracle = XPathEvaluator(tree)
        evaluator = ExtendedXPathEvaluator(tree, query)
        descendant = parse_xpath(f"//{target}")
        for context in tree.nodes_with_label(source):
            expected = {n.node_id for n in oracle.evaluate_at(context, descendant)}
            if source == target:
                # rec(A, A) has descendant-or-self semantics: the zero-length
                # path keeps the context itself (needed by the // translation).
                expected |= {context.node_id}
            actual = {n.node_id for n in evaluator.evaluate_at(context, query.result)}
            assert actual == expected

    @pytest.mark.parametrize("source,target", [("a", "d"), ("b", "c"), ("c", "c")])
    def test_cycleex_equals_cyclee(self, source, target):
        """Both algorithms denote the same path language (inline and compare)."""
        dtd = samples.cross_dtd()
        tree = generate_document(dtd, x_l=7, x_r=3, seed=21, max_elements=600)
        cyclee_expr = CycleE(DTDGraph(dtd)).rec(source, target)
        cycleex_query = rec_query(dtd, source, target)
        e_eval = ExtendedXPathEvaluator(tree)
        x_eval = ExtendedXPathEvaluator(tree, cycleex_query)
        for context in tree.nodes_with_label(source):
            via_e = {n.node_id for n in e_eval.evaluate_at(context, cyclee_expr)}
            via_x = {n.node_id for n in x_eval.evaluate_at(context, cycleex_query.result)}
            assert via_e == via_x


class TestPolynomialSize:
    def test_quadratic_growth_on_dag_family(self):
        slashes = []
        for n in range(3, 10):
            query = rec_query(samples.complete_dag_dtd(n), "A1", f"A{n}")
            slashes.append(count_operators(query).slashes)
        # CycleEX growth is polynomial: far below the 2^(n-2) of CycleE.
        assert slashes[-1] < 2 ** (9 - 2)
        assert slashes[-1] <= 9 * 9

    def test_smaller_than_cyclee_on_gedml(self):
        dtd = samples.gedml_dtd()
        graph = DTDGraph(dtd)
        cyclee_counts = count_operators(CycleE(graph).rec("even", "data"))
        cycleex_counts = count_operators(CycleEXIndex(graph).rec("even", "data"))
        assert cycleex_counts.total < cyclee_counts.total
        assert cycleex_counts.stars <= cyclee_counts.stars
