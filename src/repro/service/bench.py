"""The service throughput benchmark: cold vs warm, batch vs one-shot, threads.

One harness feeds both ``repro bench-service`` and
``benchmarks/test_bench_service.py`` (which writes the repo's perf baseline
``BENCH_3.json``), so the CLI smoke run in CI and the asserted benchmark
measure exactly the same scenarios:

``repeated_workload``
    The serving case the :class:`~repro.service.QueryService` exists for: a
    fixed query set answered over and over against one document.  *Cold* is
    the stateless pipeline (:func:`repro.core.pipeline.answer_xpath` —
    re-translate, re-shred and re-execute per call, what every caller paid
    before the service layer); *plan-cached* reuses compiled plans and the
    loaded store but re-executes; *warm* additionally serves repeated
    (query, document) pairs from the per-store result cache.  The
    acceptance bar is warm >= 3x faster than cold.

``batch_vs_per_query``
    The paper workloads (dept, cross, gedml) answered as service batches
    vs one stateless call per query.

``concurrency``
    The same batch pushed through ``answer_batch`` serially and with a
    thread pool, on both backends.  The memory engine is pure Python, so
    threads mostly measure GIL overhead there; SQLite's C core releases the
    GIL and its per-thread connections can actually overlap.

Every scenario cross-checks that the fast path returned exactly the slow
path's nodes (``results_match``) — a benchmark that got faster by being
wrong must fail loudly.

``repeated_workload`` additionally carries a ``phases`` breakdown: one
traced pass (cold then warm, outside the timed loops) aggregated per span
name via :func:`repro.obs.aggregate_spans`, so the report says not just
*how fast* but *where the time goes* (translate, optimize passes, prepare,
execute, cache lookups).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.pipeline import answer_xpath
from repro.dtd import samples
from repro.dtd.model import DTD
from repro.service.service import QueryService
from repro.workloads.queries import (
    CROSS_QUERIES,
    DEPT_QUERIES,
    GEDML_QUERY,
    SCALABILITY_QUERY,
)
from repro.xmltree.generator import generate_document
from repro.xmltree.tree import XMLTree

__all__ = [
    "ServiceBenchConfig",
    "describe_report",
    "run_service_benchmark",
    "write_report",
]

BENCH_NAME = "service-throughput"
BENCH_ISSUE = 3


@dataclass(frozen=True)
class ServiceBenchConfig:
    """Knobs of one benchmark run (the defaults are the committed baseline)."""

    elements: int = 1200
    repeats: int = 5
    threads: int = 4
    rounds: int = 2
    seed: int = 11
    cache_capacity: int = 128

    @classmethod
    def quick(cls) -> "ServiceBenchConfig":
        """A tiny-budget configuration for CI smoke runs."""
        return cls(elements=300, repeats=3, threads=2, rounds=2)


def _cross_workload(config: ServiceBenchConfig) -> Tuple[str, DTD, Dict[str, str], XMLTree]:
    """The cross-cycle workload (label, DTD, queries, generated document).

    The single-workload scenarios use only this one — the recursive core of
    the paper's experiments — so the other documents are never generated
    for them.
    """
    cross = samples.cross_dtd()
    return (
        "cross",
        cross,
        {**CROSS_QUERIES, "Qs": SCALABILITY_QUERY},
        generate_document(
            cross, x_l=10, x_r=3, seed=config.seed, max_elements=config.elements
        ),
    )


def _workloads(config: ServiceBenchConfig) -> List[Tuple[str, DTD, Dict[str, str], XMLTree]]:
    """All paper workloads: (label, DTD, queries, generated document)."""
    dept = samples.dept_dtd()
    gedml = samples.gedml_dtd()
    return [
        (
            "dept",
            dept,
            dict(DEPT_QUERIES),
            generate_document(
                dept, x_l=8, x_r=3, seed=config.seed, max_elements=config.elements
            ),
        ),
        _cross_workload(config),
        (
            "gedml",
            gedml,
            {"Qg": GEDML_QUERY},
            generate_document(
                gedml, x_l=8, x_r=3, seed=config.seed, max_elements=config.elements
            ),
        ),
    ]


def _node_ids(nodes) -> Tuple[int, ...]:
    return tuple(node.node_id for node in nodes)


def _bench_repeated_workload(config: ServiceBenchConfig) -> Dict[str, object]:
    """Cold (stateless per call) vs warm (cached service) on a repeated set.

    Three rungs of the same ladder, all answering the identical sequence:

    * *stateless cold* — ``answer_xpath`` per call: re-translate, re-shred,
      re-execute (what callers paid before the service layer existed);
    * *plan-cached* — a service with the result cache off: the store and
      compiled plans are reused, every call still executes on the backend;
    * *warm* — the full service: repeated (query, document) pairs are
      served from the per-store result cache.
    """
    _, dtd, queries, tree = _cross_workload(config)
    sequence = [query for _ in range(config.repeats) for query in queries.values()]
    calls = len(sequence)

    start = time.perf_counter()
    cold_results = [_node_ids(answer_xpath(query, tree, dtd)) for query in sequence]
    cold_seconds = time.perf_counter() - start

    with QueryService(
        dtd, cache_capacity=config.cache_capacity, result_cache=False
    ) as service:
        service.register_document("doc", tree)
        for query in queries.values():  # warm the plan cache + prepared store
            service.answer(query)
        start = time.perf_counter()
        plan_cached_results = [_node_ids(service.answer(query)) for query in sequence]
        plan_cached_seconds = time.perf_counter() - start

    with QueryService(dtd, cache_capacity=config.cache_capacity) as service:
        setup_start = time.perf_counter()
        service.register_document("doc", tree)
        # First pass over the distinct queries: every cache misses once.
        for query in queries.values():
            service.answer(query)
        setup_seconds = time.perf_counter() - setup_start

        start = time.perf_counter()
        warm_results = [_node_ids(service.answer(query)) for query in sequence]
        warm_seconds = time.perf_counter() - start
        plans = service.cache_info()
        results = service.result_cache_info()

    # One traced pass *outside* the timed loops: a fresh service answers each
    # distinct query cold (plan-cache miss -> translate -> optimize ->
    # prepare -> execute) and then once more warm (result-cache hit); the
    # aggregated span tree is the report's per-phase breakdown.
    with QueryService(dtd, cache_capacity=config.cache_capacity) as service:
        service.register_document("doc", tree)
        with obs.trace("bench-repeated-workload") as trace_root:
            for _ in range(2):
                for query in queries.values():
                    service.answer(query)
    phases = obs.aggregate_spans(trace_root)

    return {
        "document_elements": tree.size(),
        "distinct_queries": len(queries),
        "calls": calls,
        "stateless_cold_seconds": cold_seconds,
        "plan_cached_seconds": plan_cached_seconds,
        "service_setup_seconds": setup_seconds,
        "service_warm_seconds": warm_seconds,
        "cold_ms_per_query": 1000.0 * cold_seconds / calls,
        "warm_ms_per_query": 1000.0 * warm_seconds / calls,
        "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        "plan_cache_speedup": cold_seconds / plan_cached_seconds
        if plan_cached_seconds
        else float("inf"),
        "plan_cache_hits": plans.hits,
        "plan_cache_misses": plans.misses,
        "result_cache_hits": results.hits,
        "result_cache_misses": results.misses,
        "phases": phases,
        "results_match": cold_results == warm_results
        and cold_results == plan_cached_results,
    }


def _bench_batch_vs_per_query(config: ServiceBenchConfig) -> Dict[str, object]:
    """Service batches vs one stateless ``answer_xpath`` call per query."""
    per_workload: List[Dict[str, object]] = []
    total_per_query = 0.0
    total_batch = 0.0
    all_match = True
    for label, dtd, queries, tree in _workloads(config):
        batch = [query for _ in range(config.rounds) for query in queries.values()]

        start = time.perf_counter()
        per_query_results = [_node_ids(answer_xpath(query, tree, dtd)) for query in batch]
        per_query_seconds = time.perf_counter() - start

        start = time.perf_counter()
        with QueryService(dtd, cache_capacity=config.cache_capacity) as service:
            service.register_document(label, tree)
            batch_results = [
                _node_ids(nodes) for nodes in service.answer_batch(batch)
            ]
        batch_seconds = time.perf_counter() - start

        matched = per_query_results == batch_results
        all_match = all_match and matched
        total_per_query += per_query_seconds
        total_batch += batch_seconds
        per_workload.append(
            {
                "workload": label,
                "document_elements": tree.size(),
                "calls": len(batch),
                "per_query_seconds": per_query_seconds,
                "batch_seconds": batch_seconds,
                "speedup": per_query_seconds / batch_seconds
                if batch_seconds
                else float("inf"),
                "results_match": matched,
            }
        )
    return {
        "workloads": per_workload,
        "per_query_seconds": total_per_query,
        "batch_seconds": total_batch,
        "speedup": total_per_query / total_batch if total_batch else float("inf"),
        "results_match": all_match,
    }


def _bench_concurrency(config: ServiceBenchConfig) -> Dict[str, object]:
    """Serial vs threaded ``answer_batch`` on each backend."""
    _, dtd, queries, tree = _cross_workload(config)
    batch = [query for _ in range(config.repeats) for query in queries.values()]
    by_backend: Dict[str, object] = {}
    for backend in ("memory", "sqlite"):
        # Result caching off: every call must actually execute, otherwise the
        # serial pass would warm the cache and the threaded pass would only
        # measure dictionary lookups.
        with QueryService(
            dtd,
            backend=backend,
            cache_capacity=config.cache_capacity,
            result_cache=False,
        ) as service:
            service.register_document("doc", tree)
            # Warm plans and the prepared store before timing.
            serial_warmup = [_node_ids(n) for n in service.answer_batch(batch[: len(queries)])]

            start = time.perf_counter()
            serial = [_node_ids(n) for n in service.answer_batch(batch, threads=1)]
            serial_seconds = time.perf_counter() - start

            start = time.perf_counter()
            threaded = [
                _node_ids(n) for n in service.answer_batch(batch, threads=config.threads)
            ]
            threaded_seconds = time.perf_counter() - start
        by_backend[backend] = {
            "calls": len(batch),
            "serial_seconds": serial_seconds,
            "threaded_seconds": threaded_seconds,
            "threads": config.threads,
            "speedup": serial_seconds / threaded_seconds
            if threaded_seconds
            else float("inf"),
            "results_match": serial == threaded
            and serial[: len(serial_warmup)] == serial_warmup,
        }
    return by_backend


def run_service_benchmark(config: Optional[ServiceBenchConfig] = None) -> Dict[str, object]:
    """Run every scenario and return the (JSON-serializable) report."""
    config = config or ServiceBenchConfig()
    report: Dict[str, object] = {
        "bench": BENCH_NAME,
        "issue": BENCH_ISSUE,
        "created_unix": int(time.time()),
        "config": asdict(config),
        "scenarios": {
            "repeated_workload": _bench_repeated_workload(config),
            "batch_vs_per_query": _bench_batch_vs_per_query(config),
            "concurrency": _bench_concurrency(config),
        },
    }
    scenarios = report["scenarios"]
    report["ok"] = bool(
        scenarios["repeated_workload"]["results_match"]
        and scenarios["batch_vs_per_query"]["results_match"]
        and all(entry["results_match"] for entry in scenarios["concurrency"].values())
    )
    return report


def write_report(report: Dict[str, object], path: str) -> None:
    """Write a report as pretty-printed JSON (the ``BENCH_3.json`` format)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def describe_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a report (the CLI output)."""
    scenarios = report["scenarios"]
    repeated = scenarios["repeated_workload"]
    batch = scenarios["batch_vs_per_query"]
    lines = [
        f"service benchmark ({report['bench']}, "
        f"{report['config']['elements']} elements, "
        f"{repeated['calls']} calls/scenario)",
        (
            f"  repeated workload: cold {repeated['stateless_cold_seconds']:.3f}s "
            f"-> plan-cached {repeated['plan_cached_seconds']:.3f}s "
            f"({repeated['plan_cache_speedup']:.1f}x) "
            f"-> warm {repeated['service_warm_seconds']:.3f}s "
            f"({repeated['speedup']:.1f}x; plans {repeated['plan_cache_hits']}h/"
            f"{repeated['plan_cache_misses']}m, results {repeated['result_cache_hits']}h/"
            f"{repeated['result_cache_misses']}m)"
        ),
        (
            f"  batch vs per-query: {batch['per_query_seconds']:.3f}s "
            f"-> {batch['batch_seconds']:.3f}s ({batch['speedup']:.1f}x)"
        ),
    ]
    for backend, entry in sorted(scenarios["concurrency"].items()):
        lines.append(
            f"  concurrency[{backend}]: serial {entry['serial_seconds']:.3f}s "
            f"vs {entry['threads']} threads {entry['threaded_seconds']:.3f}s "
            f"({entry['speedup']:.2f}x)"
        )
    lines.append(f"  results match: {report['ok']}")
    return "\n".join(lines)
