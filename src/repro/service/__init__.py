"""The query service layer: cached plans over prepared document stores.

The translation pipeline is stateless — :func:`repro.core.pipeline.answer_xpath`
re-runs both translation steps and re-shreds the document on every call.
:class:`QueryService` is the serving-side counterpart: it owns one DTD,
keeps an LRU :class:`~repro.core.plancache.PlanCache` of compiled plans,
holds registered documents as *prepared stores* (shredded once, backend
loaded once, plans prepared once) and answers queries — singly, in batches,
and concurrently from many threads.

:mod:`repro.service.bench` measures what that buys: cold (stateless) vs
warm (cached) answering and serial vs threaded batch throughput, written to
``BENCH_3.json`` by the benchmark suite and the ``repro bench-service``
subcommand.

Because that benchmark showed threads *lose* on this pure-Python CPU
workload, :mod:`repro.service.pool` adds the process-based tier —
:class:`ProcessQueryService`, N worker processes with sharded document
stores behind one facade — :mod:`repro.service.http` puts an asyncio
HTTP/JSON front end (and a verifying load generator) on top of it, and
:mod:`repro.service.servebench` measures serial vs threaded vs multiprocess
into ``BENCH_5.json``.
"""

from __future__ import annotations

from repro.core.plancache import CacheInfo, PlanCache, PlanKey, dtd_fingerprint
from repro.service.pool import PoolAnswer, ProcessQueryService
from repro.service.service import DocumentStore, QueryService

__all__ = [
    "CacheInfo",
    "DocumentStore",
    "PlanCache",
    "PlanKey",
    "PoolAnswer",
    "ProcessQueryService",
    "QueryService",
    "dtd_fingerprint",
]
