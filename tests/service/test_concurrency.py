"""Concurrency: 8 threads x 50 mixed queries == the serial answers (Issue 3).

The service's thread-safety claims, pinned: per-thread SQLite connections
(no "recursive use of cursors", no cross-connection errors), lock-free
reads on the memory engine, and a thread-safe plan/result cache.  Each
thread answers its own 50-query mixed workload and must observe exactly
the answers the same workload produces serially.
"""

from __future__ import annotations

import threading

import pytest

from repro.dtd import samples
from repro.service import QueryService
from repro.workloads.queries import CROSS_QUERIES, SCALABILITY_QUERY
from repro.xmltree.generator import generate_document

THREADS = 8
QUERIES_PER_THREAD = 50

# A mixed workload: recursive descent, qualifiers, negation, plain child steps.
MIXED_QUERIES = list(CROSS_QUERIES.values()) + [SCALABILITY_QUERY, "a/b", "a//c"]


def _workload(thread_index: int):
    """50 queries, phase-shifted per thread so threads interleave plans."""
    return [
        MIXED_QUERIES[(thread_index + i) % len(MIXED_QUERIES)]
        for i in range(QUERIES_PER_THREAD)
    ]


@pytest.fixture(scope="module")
def cross_setup():
    dtd = samples.cross_dtd()
    tree = generate_document(dtd, x_l=8, x_r=3, seed=7, max_elements=350)
    return dtd, tree


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
@pytest.mark.parametrize("result_cache", [True, False])
def test_8_threads_x_50_queries_match_serial(cross_setup, backend, result_cache):
    dtd, tree = cross_setup
    with QueryService(dtd, backend=backend, result_cache=result_cache) as service:
        service.register_document("doc", tree)
        serial = {
            query: [node.node_id for node in service.answer(query)]
            for query in MIXED_QUERIES
        }

        errors = []
        mismatches = []
        barrier = threading.Barrier(THREADS)

        def worker(thread_index: int):
            try:
                barrier.wait()  # maximise interleaving
                for query in _workload(thread_index):
                    answer = [node.node_id for node in service.answer(query)]
                    if answer != serial[query]:
                        mismatches.append((thread_index, query))
            except Exception as exc:
                errors.append((thread_index, repr(exc)))

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert not errors, f"thread errors: {errors[:3]}"
    assert not mismatches, f"non-serial answers: {mismatches[:3]}"


def test_threaded_answer_batch_equals_serial_batch(cross_setup):
    dtd, tree = cross_setup
    batch = [MIXED_QUERIES[i % len(MIXED_QUERIES)] for i in range(40)]
    for backend in ("memory", "sqlite"):
        with QueryService(dtd, backend=backend) as service:
            service.register_document("doc", tree)
            assert service.answer_batch(batch, threads=4) == service.answer_batch(
                batch, threads=1
            )


def test_concurrent_registration_and_answering(cross_setup):
    """Registering new documents while other threads answer is safe."""
    dtd, tree = cross_setup
    extra = [
        generate_document(dtd, x_l=5, x_r=2, seed=seed, max_elements=120)
        for seed in range(4)
    ]
    with QueryService(dtd) as service:
        service.register_document("doc", tree)
        expected = [node.node_id for node in service.answer("a//d", "doc")]
        errors = []

        def register(index: int):
            try:
                service.register_document(f"extra-{index}", extra[index])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        def answer():
            try:
                for _ in range(20):
                    nodes = service.answer("a//d", "doc")
                    assert [node.node_id for node in nodes] == expected
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        threads = [threading.Thread(target=register, args=(i,)) for i in range(4)]
        threads += [threading.Thread(target=answer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(service.document_ids()) == 5
