"""Benchmark: the program-optimizer levels — the Issue 4 perf baseline.

Runs the shared harness of :mod:`repro.core.optbench` (the same scenarios
``repro bench-optimizer`` measures) and writes ``BENCH_4.json`` at the repo
root, alongside ``BENCH_3.json``.

Asserted here (the Issue 4 acceptance bar):

* every optimizer level returns byte-identical results on every workload
  and both backends;
* level 2 produces strictly smaller programs (fewer operators) than level 0
  on the recursive workloads, and is no slower end-to-end (translation +
  execution, with slack for CI timer noise);
* schema-dead queries fully collapse at level 2 (zero assignments);
* the auto strategy yields recursion-free programs on the non-recursive
  library workload.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.optbench import (
    OptimizerBenchConfig,
    run_optimizer_benchmark,
    write_report,
)

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_4.json"

BENCH_CONFIG = OptimizerBenchConfig(elements=1000, repeats=3)

# Generous slack: level 2 must be at least no slower than level 0 modulo CI
# timer noise; in practice it is faster (see the committed BENCH_4.json).
TIMING_SLACK = 1.35


@pytest.fixture(scope="module")
def optimizer_report():
    return run_optimizer_benchmark(BENCH_CONFIG)


def test_writes_bench_4_json(optimizer_report):
    write_report(optimizer_report, str(REPORT_PATH))
    on_disk = json.loads(REPORT_PATH.read_text())
    assert on_disk["bench"] == "optimizer-levels"
    assert on_disk["issue"] == 4
    assert set(on_disk["scenarios"]) == {"levels", "empty_queries", "auto_strategy"}


def test_every_level_returns_identical_results(optimizer_report):
    assert optimizer_report["ok"] is True
    assert optimizer_report["scenarios"]["levels"]["results_match"] is True


def test_level_2_programs_are_smaller(optimizer_report):
    for entry in optimizer_report["scenarios"]["levels"]["workloads"]:
        assert entry["operator_reduction"] > 0, entry["workload"]
        assert entry["assignment_reduction"] > 0, entry["workload"]


def test_level_2_is_not_slower_end_to_end(optimizer_report):
    for entry in optimizer_report["scenarios"]["levels"]["workloads"]:
        level0 = entry["levels"]["0"]["total_seconds"]
        level2 = entry["levels"]["2"]["total_seconds"]
        assert level2 <= level0 * TIMING_SLACK, (
            f"{entry['workload']}: level 2 took {level2:.3f}s vs "
            f"level 0 {level0:.3f}s"
        )


def test_schema_dead_queries_collapse_to_constants(optimizer_report):
    empty = optimizer_report["scenarios"]["empty_queries"]
    assert empty["level2_fully_collapsed"] is True
    assert empty["results_match"] is True
    # Level 0 still carries real statements for provably-empty queries.
    assert empty["levels"]["0"]["operators"] >= 0
    assert empty["levels"]["2"]["operators"] == 0


def test_auto_strategy_unfolds_acyclic_workloads(optimizer_report):
    auto = optimizer_report["scenarios"]["auto_strategy"]
    assert auto["library_recursion_free"] is True
    # Recursive workloads must keep the fixpoint-based strategy.
    assert auto["resolutions"]["gedml:Qg"] == "cycleex"
    assert all(
        value == "cyclee" for key, value in auto["resolutions"].items()
        if key.startswith("library:")
    )
