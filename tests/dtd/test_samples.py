"""Tests pinning the structure of the paper's sample DTDs."""

import pytest

from repro.dtd import samples
from repro.dtd.graph import DTDGraph


class TestDeptDTD:
    def test_structure(self):
        dtd = samples.dept_dtd()
        assert dtd.root == "dept"
        assert dtd.is_recursive()
        assert set(dtd.children("course")) == {"cno", "title", "prereq", "takenBy", "project"}
        assert dtd.children("prereq") == ["course"]
        assert dtd.children("qualified") == ["course"]
        assert dtd.children("required") == ["course"]

    def test_three_cycles_through_course(self):
        graph = DTDGraph(samples.dept_dtd())
        cycles = graph.simple_cycles()
        assert len(cycles) == 3
        for cycle in cycles:
            assert "course" in cycle

    def test_text_types(self):
        dtd = samples.dept_dtd()
        assert {"cno", "title", "sno", "name", "pno", "ptitle"} <= dtd.text_types

    def test_simplified_dept_has_four_types(self):
        dtd = samples.simplified_dept_dtd()
        assert len(dtd) == 4
        assert dtd.is_recursive()


class TestCrossDTD:
    def test_table5_row(self):
        graph = DTDGraph(samples.cross_dtd())
        assert len(graph) == 4
        assert len(graph.edges) == 5
        assert graph.cycle_count() == 2

    def test_cycles_share_node_c(self):
        graph = DTDGraph(samples.cross_dtd())
        shared = set.intersection(*[set(c) for c in graph.simple_cycles()])
        assert "c" in shared

    def test_all_types_carry_text(self):
        dtd = samples.cross_dtd()
        assert dtd.text_types == frozenset({"a", "b", "c", "d"})


class TestBiomlFamily:
    @pytest.mark.parametrize(
        "factory, edges, cycles",
        [
            (samples.bioml_subgraph_a, 5, 2),
            (samples.bioml_subgraph_b, 6, 3),
            (samples.bioml_subgraph_c, 6, 3),
            (samples.bioml_subgraph_d, 7, 4),
            (samples.bioml_dtd, 7, 4),
        ],
    )
    def test_shapes(self, factory, edges, cycles):
        graph = DTDGraph(factory())
        assert len(graph) == 4
        assert len(graph.edges) == edges
        assert graph.cycle_count() == cycles

    def test_subgraphs_are_contained_in_full(self):
        full = samples.bioml_dtd()
        for factory in (samples.bioml_subgraph_a, samples.bioml_subgraph_b, samples.bioml_subgraph_c):
            assert factory().is_contained_in(full)

    def test_locus_reachable_from_gene(self):
        graph = DTDGraph(samples.bioml_subgraph_a())
        assert graph.reaches("gene", "locus")


class TestGedmlDTD:
    def test_table5_row(self):
        graph = DTDGraph(samples.gedml_dtd())
        assert len(graph) == 5
        assert len(graph.edges) == 11
        assert graph.cycle_count() == 9

    def test_data_reachable_from_even(self):
        graph = DTDGraph(samples.gedml_dtd())
        assert graph.reaches("even", "data")


class TestFig3AndDagFamilies:
    def test_view_contained_in_source(self):
        view = samples.fig3_view_dtd()
        source = samples.fig3_source_dtd()
        assert view.is_contained_in(source)
        assert not source.is_contained_in(view)

    def test_source_has_extra_edge(self):
        source = samples.fig3_source_dtd()
        assert "C" in source.children("B")
        view = samples.fig3_view_dtd()
        assert "C" not in view.children("B")

    def test_complete_dag_edge_count(self):
        dtd = samples.complete_dag_dtd(4)
        graph = DTDGraph(dtd)
        assert len(graph.edges) == 6  # n*(n-1)/2 for n=4
        assert not graph.is_cyclic()

    def test_complete_dag_requires_two_nodes(self):
        with pytest.raises(ValueError):
            samples.complete_dag_dtd(1)

    def test_blocker_dag_contains_plain_dag(self):
        plain = samples.complete_dag_dtd(4)
        blocked = samples.complete_dag_with_blocker_dtd(4)
        assert plain.is_contained_in(blocked)
        assert "B" in blocked.children("A1")
        assert blocked.children("B") == ["A4"]

    def test_describe_mentions_counts(self):
        text = samples.describe(samples.cross_dtd())
        assert "n=4" in text and "m=5" in text and "c=2" in text
