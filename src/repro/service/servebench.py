"""The serving-tier benchmark: serial vs threaded vs multiprocess (BENCH_5).

BENCH_3's ``concurrency`` scenario documented the regression this PR
exists to fix: on the pure-Python memory backend a 4-thread pool answers
the cross workload *slower* than one thread (GIL contention).  This
harness runs the identical BENCH_3 cross workload through three serving
tiers and reports requests/sec plus p50/p99 latency for each:

``serial``
    One :class:`~repro.service.QueryService`, one request at a time — the
    single-core baseline.
``threaded``
    The same service driven by ``threads`` concurrent dispatchers — the
    tier BENCH_3 showed losing to serial.
``multiprocess``
    A :class:`~repro.service.ProcessQueryService` (every worker owns a
    replica of the document, result caches off) driven by the same number
    of concurrent dispatchers — requests spread across worker *processes*,
    the only concurrency CPython's GIL cannot serialize.  A fourth row,
    ``multiprocess_batch``, sends the whole workload as chunked
    ``answer_batch`` calls (one queue round-trip per worker), the
    throughput shape batch consumers use.

Honesty notes, because benchmarks lie by omission: the report records
``cpu_count`` — on a single-core host true parallel speedup is physically
impossible and multiprocess ≈ serial minus IPC overhead is the *expected*
outcome (the benchmark suite gates its ">1x vs serial" assertion on
``cpu_count >= 2``); result caches are off in every tier so repeated
queries measure execution, not dictionary lookups; and every tier's
answers are compared node-for-node against the serial tier
(``results_match``), so a tier cannot win by being wrong.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.config import EngineConfig
from repro.service.bench import ServiceBenchConfig, _cross_workload
from repro.service.pool import ProcessQueryService
from repro.service.service import QueryService

__all__ = [
    "ServingBenchConfig",
    "describe_report",
    "run_serving_benchmark",
    "write_report",
]

BENCH_NAME = "serving-tiers"
BENCH_ISSUE = 7
BACKENDS = ("memory", "sqlite")


@dataclass(frozen=True)
class ServingBenchConfig:
    """Knobs of one serving-tier run (defaults are the committed baseline)."""

    elements: int = 1000
    repeats: int = 5
    threads: int = 4
    workers: int = 0  # 0 -> min(4, max(2, cpu_count))
    seed: int = 11
    cache_capacity: int = 128
    start_method: str = ""  # "" -> platform default (fork where available)

    @classmethod
    def quick(cls) -> "ServingBenchConfig":
        """A tiny-budget configuration for CI smoke runs."""
        return cls(elements=300, repeats=2, threads=2, workers=2)

    def resolved_workers(self) -> int:
        if self.workers > 0:
            return self.workers
        return min(4, max(2, os.cpu_count() or 1))


def _percentile_ms(latencies: Sequence[float], fraction: float) -> Optional[float]:
    if not latencies:
        return None
    ordered = sorted(latencies)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[int(rank)] * 1000.0


def _mode_entry(
    seconds: float, latencies: Sequence[float], calls: int, **extra: object
) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "calls": calls,
        "seconds": seconds,
        "rps": (calls / seconds) if seconds > 0 else None,
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
    }
    entry.update(extra)
    return entry


def _drive(worker, sequence: List[str], dispatchers: int):
    """Issue one request per sequence entry via ``dispatchers`` threads.

    Returns (total seconds, per-request latency list, per-request results in
    input order).  ``dispatchers=1`` degenerates to a plain serial loop.
    """
    latencies = [0.0] * len(sequence)
    results: List[Tuple[int, ...]] = [()] * len(sequence)

    def one(position: int) -> None:
        started = time.perf_counter()
        results[position] = worker(sequence[position])
        latencies[position] = time.perf_counter() - started

    started = time.perf_counter()
    if dispatchers <= 1:
        for position in range(len(sequence)):
            one(position)
    else:
        with ThreadPoolExecutor(max_workers=dispatchers) as pool:
            list(pool.map(one, range(len(sequence))))
    return time.perf_counter() - started, latencies, results


def _bench_backend(
    config: ServingBenchConfig, backend: str
) -> Dict[str, object]:
    _, dtd, queries, tree = _cross_workload(
        ServiceBenchConfig(elements=config.elements, seed=config.seed)
    )
    sequence = [query for _ in range(config.repeats) for query in queries.values()]
    distinct = list(queries.values())
    workers = config.resolved_workers()
    engine_config = EngineConfig(
        backend=backend,
        plan_cache_size=config.cache_capacity,
        result_cache_size=0,  # every request must execute (see module doc)
    )

    # -- serial + threaded: one in-process service -----------------------------
    with QueryService(dtd, config=engine_config) as service:
        service.register_document("doc", tree)
        for query in distinct:  # warm plans + prepared store before timing
            service.answer(query)

        def in_process(query: str) -> Tuple[int, ...]:
            return tuple(node.node_id for node in service.answer(query))

        serial_seconds, serial_latencies, serial_results = _drive(
            in_process, sequence, dispatchers=1
        )
        threaded_seconds, threaded_latencies, threaded_results = _drive(
            in_process, sequence, dispatchers=config.threads
        )

    # -- multiprocess: replicas == workers so the hot document is everywhere ---
    with ProcessQueryService(
        dtd,
        config=engine_config,
        workers=workers,
        replicas=workers,
        start_method=config.start_method or None,
        warmup=distinct,
    ) as pool:
        pool.register_document("doc", tree)
        for query in distinct:  # warm every replica's prepared store
            pool.answer_batch([query] * workers, "doc", include_nodes=False)

        def via_pool(query: str) -> Tuple[int, ...]:
            return tuple(
                pool.answer(query, "doc", include_nodes=False).node_ids
            )

        mp_seconds, mp_latencies, mp_results = _drive(
            via_pool, sequence, dispatchers=max(config.threads, workers)
        )

        batch_started = time.perf_counter()
        batch_answers = pool.answer_batch(sequence, "doc", include_nodes=False)
        batch_seconds = time.perf_counter() - batch_started
        batch_results = [tuple(answer.node_ids) for answer in batch_answers]

    results_match = (
        serial_results == threaded_results == mp_results == batch_results
    )
    serial_rps = len(sequence) / serial_seconds if serial_seconds else 0.0
    entry: Dict[str, object] = {
        "calls": len(sequence),
        "distinct_queries": len(distinct),
        "document_elements": tree.size(),
        "serial": _mode_entry(serial_seconds, serial_latencies, len(sequence)),
        "threaded": _mode_entry(
            threaded_seconds, threaded_latencies, len(sequence),
            threads=config.threads,
        ),
        "multiprocess": _mode_entry(
            mp_seconds, mp_latencies, len(sequence),
            workers=workers, dispatchers=max(config.threads, workers),
        ),
        "multiprocess_batch": _mode_entry(
            batch_seconds, [], len(sequence), workers=workers
        ),
        "results_match": results_match,
    }
    threaded_rps = len(sequence) / threaded_seconds if threaded_seconds else 0.0
    mp_rps = len(sequence) / mp_seconds if mp_seconds else 0.0
    entry["threaded_vs_serial"] = threaded_rps / serial_rps if serial_rps else None
    entry["multiprocess_vs_serial"] = mp_rps / serial_rps if serial_rps else None
    entry["multiprocess_vs_threaded"] = (
        mp_rps / threaded_rps if threaded_rps else None
    )
    return entry


def run_serving_benchmark(
    config: Optional[ServingBenchConfig] = None,
) -> Dict[str, object]:
    """Run every backend × tier and return the (JSON-serializable) report."""
    config = config or ServingBenchConfig()
    scenarios = {backend: _bench_backend(config, backend) for backend in BACKENDS}
    report: Dict[str, object] = {
        "bench": BENCH_NAME,
        "issue": BENCH_ISSUE,
        "created_unix": int(time.time()),
        "cpu_count": os.cpu_count(),
        "config": asdict(config),
        "scenarios": scenarios,
        "ok": all(entry["results_match"] for entry in scenarios.values()),
    }
    return report


def write_report(report: Dict[str, object], path: str) -> None:
    """Write a report as pretty-printed JSON (the ``BENCH_5.json`` format)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def describe_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a report (the CLI output)."""
    lines = [
        f"serving benchmark ({report['bench']}, cpu_count={report['cpu_count']}, "
        f"{report['config']['elements']} elements)"
    ]
    for backend, entry in sorted(report["scenarios"].items()):
        for mode in ("serial", "threaded", "multiprocess", "multiprocess_batch"):
            stats = entry[mode]
            p50 = stats["p50_ms"]
            p99 = stats["p99_ms"]
            latency = (
                f" p50 {p50:.1f}ms p99 {p99:.1f}ms"
                if p50 is not None and p99 is not None
                else ""
            )
            lines.append(
                f"  {backend}/{mode}: {stats['calls']} calls in "
                f"{stats['seconds']:.3f}s = {stats['rps']:.1f} req/s{latency}"
            )
        lines.append(
            f"  {backend}: multiprocess vs serial "
            f"{entry['multiprocess_vs_serial']:.2f}x, vs threaded "
            f"{entry['multiprocess_vs_threaded']:.2f}x "
            f"(results match: {entry['results_match']})"
        )
    lines.append(f"  ok: {report['ok']}")
    return "\n".join(lines)
