"""SQL text emission for translated programs.

The in-memory executor is what the benchmarks run against, but the whole
point of the paper is that the produced queries are *ordinary SQL with a
low-end recursion feature*.  This module renders a
:class:`~repro.relational.algebra.Program` as SQL text in three dialects:

* ``GENERIC`` — ANSI-style SQL with ``WITH RECURSIVE`` for the LFP operator;
* ``DB2`` — the DB2 ``WITH ... AS (... UNION ALL ...)`` recursive common
  table expression shown in Fig. 4;
* ``ORACLE`` — Oracle's ``CONNECT BY`` hierarchical query for the simple
  LFP, also shown in Fig. 4.

The emitted SQL is for inspection and documentation; it is not executed by
the test suite (no RDBMS is available offline).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.relational.algebra import (
    AntiJoin,
    Compose,
    Difference,
    EquiJoin,
    Fixpoint,
    IdentityRelation,
    Intersect,
    Program,
    Project,
    RAExpr,
    RecursiveUnion,
    Scan,
    Select,
    SemiJoin,
    TagProject,
    Union,
)
from repro.relational.schema import F, T, V

__all__ = ["SQLDialect", "program_to_sql", "expression_to_sql"]


class SQLDialect(enum.Enum):
    """Supported SQL output dialects."""

    GENERIC = "generic"
    DB2 = "db2"
    ORACLE = "oracle"


def _literal(value: object) -> str:
    if value is None:
        return "NULL"
    return "'" + str(value).replace("'", "''") + "'"


class _SQLRenderer:
    def __init__(self, dialect: SQLDialect) -> None:
        self._dialect = dialect
        self._counter = 0

    def _alias(self, prefix: str = "t") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # Each render method returns a SELECT statement producing columns F, T, V.

    def render(self, expr: RAExpr) -> str:
        if isinstance(expr, Scan):
            return f"SELECT {F}, {T}, {V} FROM {expr.name}"
        if isinstance(expr, IdentityRelation):
            return f"SELECT {T} AS {F}, {T}, {V} FROM ALL_NODES"
        if isinstance(expr, Select):
            inner = self.render(expr.input)
            alias = self._alias()
            conds = " AND ".join(
                f"{alias}.{c.column} {'=' if c.op == '=' else '<>'} {_literal(c.value)}"
                for c in expr.conditions
            )
            return f"SELECT {alias}.* FROM ({inner}) {alias} WHERE {conds}"
        if isinstance(expr, Project):
            inner = self.render(expr.input)
            alias = self._alias()
            aliases = expr.aliases or expr.columns
            cols = ", ".join(
                f"{alias}.{col} AS {out}" for col, out in zip(expr.columns, aliases)
            )
            return f"SELECT DISTINCT {cols} FROM ({inner}) {alias}"
        if isinstance(expr, TagProject):
            inner = self.render(expr.input)
            alias = self._alias()
            return (
                f"SELECT {alias}.{F}, {alias}.{T}, {alias}.{V}, "
                f"{_literal(expr.tag)} AS TAG FROM ({inner}) {alias}"
            )
        if isinstance(expr, Compose):
            left = self.render(expr.left)
            right = self.render(expr.right)
            la, ra = self._alias("l"), self._alias("r")
            return (
                f"SELECT {la}.{F} AS {F}, {ra}.{T} AS {T}, {ra}.{V} AS {V} "
                f"FROM ({left}) {la} JOIN ({right}) {ra} ON {la}.{T} = {ra}.{F}"
            )
        if isinstance(expr, EquiJoin):
            left = self.render(expr.left)
            right = self.render(expr.right)
            la, ra = self._alias("l"), self._alias("r")
            cols = ", ".join(
                f"{la if side == 'L' else ra}.{column} AS {alias_}"
                for side, column, alias_ in expr.output
            )
            return (
                f"SELECT {cols} FROM ({left}) {la} JOIN ({right}) {ra} "
                f"ON {la}.{expr.left_column} = {ra}.{expr.right_column}"
            )
        if isinstance(expr, SemiJoin):
            left = self.render(expr.left)
            right = self.render(expr.right)
            la = self._alias("l")
            return (
                f"SELECT {la}.* FROM ({left}) {la} WHERE {la}.{expr.left_column} IN "
                f"(SELECT {expr.right_column} FROM ({right}) {self._alias('q')})"
            )
        if isinstance(expr, AntiJoin):
            left = self.render(expr.left)
            right = self.render(expr.right)
            la = self._alias("l")
            return (
                f"SELECT {la}.* FROM ({left}) {la} WHERE {la}.{expr.left_column} NOT IN "
                f"(SELECT {expr.right_column} FROM ({right}) {self._alias('q')})"
            )
        if isinstance(expr, Union):
            parts = [f"({self.render(child)})" for child in expr.inputs]
            return "\nUNION\n".join(parts)
        if isinstance(expr, Difference):
            keyword = "MINUS" if self._dialect is SQLDialect.ORACLE else "EXCEPT"
            return f"({self.render(expr.left)})\n{keyword}\n({self.render(expr.right)})"
        if isinstance(expr, Intersect):
            return f"({self.render(expr.left)})\nINTERSECT\n({self.render(expr.right)})"
        if isinstance(expr, Fixpoint):
            return self._render_fixpoint(expr)
        if isinstance(expr, RecursiveUnion):
            return self._render_recursive_union(expr)
        raise TypeError(f"cannot render {expr!r} as SQL")

    # -- recursion ---------------------------------------------------------------

    def _render_fixpoint(self, expr: Fixpoint) -> str:
        base = self.render(expr.base)
        seed_filter = ""
        if expr.source_anchor is not None:
            anchor = self.render(expr.source_anchor)
            seed_filter = f" WHERE {F} IN (SELECT {T} FROM ({anchor}) {self._alias('a')})"
        if expr.target_anchor is not None and expr.source_anchor is None:
            anchor = self.render(expr.target_anchor)
            seed_filter = f" WHERE {T} IN (SELECT {F} FROM ({anchor}) {self._alias('a')})"

        if self._dialect is SQLDialect.ORACLE:
            # Oracle CONNECT BY over the single input relation (Fig. 4 left).
            return (
                f"SELECT CONNECT_BY_ROOT {F} AS {F}, {T}, {V}\n"
                f"FROM ({base})\n"
                f"CONNECT BY PRIOR {T} = {F}\n"
                f"START WITH 1 = 1{seed_filter.replace(' WHERE', ' AND') if seed_filter else ''}"
            )
        # Generic / DB2: recursive common table expression over one relation.
        with_kw = "WITH" if self._dialect is SQLDialect.DB2 else "WITH RECURSIVE"
        return (
            f"{with_kw} lfp ({F}, {T}, {V}) AS (\n"
            f"  SELECT {F}, {T}, {V} FROM ({base}) seed{seed_filter}\n"
            f"  UNION ALL\n"
            f"  SELECT lfp.{F}, step.{T}, step.{V}\n"
            f"  FROM lfp JOIN ({base}) step ON lfp.{T} = step.{F}\n"
            f")\n"
            f"SELECT DISTINCT {F}, {T}, {V} FROM lfp"
        )

    def _render_recursive_union(self, expr: RecursiveUnion) -> str:
        init = self.render(expr.init)
        branches: List[str] = []
        for step in expr.steps:
            edge = self.render(step.relation)
            alias = self._alias("e")
            branches.append(
                f"  SELECT r.{T} AS {F}, {alias}.{T} AS {T}, {alias}.{V} AS {V}, "
                f"'{step.child_tag}' AS TAG\n"
                f"  FROM r JOIN ({edge}) {alias} ON r.{T} = {alias}.{F} "
                f"AND r.TAG = '{step.parent_tag}'"
            )
        with_kw = "WITH" if self._dialect is SQLDialect.DB2 else "WITH RECURSIVE"
        body = "\n  UNION ALL\n".join(branches)
        return (
            f"{with_kw} r ({F}, {T}, {V}, TAG) AS (\n"
            f"  {init}\n"
            f"  UNION ALL\n"
            f"{body}\n"
            f")\n"
            f"SELECT DISTINCT {F}, {T}, {V}, TAG FROM r"
        )


def expression_to_sql(expr: RAExpr, dialect: SQLDialect = SQLDialect.GENERIC) -> str:
    """Render a single relational expression as a SELECT statement."""
    return _SQLRenderer(dialect).render(expr)


def program_to_sql(program: Program, dialect: SQLDialect = SQLDialect.GENERIC) -> str:
    """Render a program as a SQL script (one temp table per assignment).

    Each assignment becomes a ``CREATE TEMPORARY TABLE ... AS`` statement so
    the script mirrors the ``R_e <- e2s(e)`` sequence of Sect. 5.1; the
    result is the final SELECT.
    """
    renderer = _SQLRenderer(dialect)
    statements: List[str] = []
    for assignment in program.assignments:
        body = renderer.render(assignment.expression)
        statements.append(
            f"CREATE TEMPORARY TABLE {assignment.target} AS (\n{body}\n);"
        )
    statements.append(renderer.render(program.result) + ";")
    return "\n\n".join(statements)
