"""The queries used by the paper's examples and experiments.

* ``DEPT_QUERIES`` — Q1 and Q2 of Example 2.2 over the dept DTD.
* ``CROSS_QUERIES`` — Qa..Qd of Exp-1 over the cross-cycle DTD (Fig. 11a).
* ``SELECTIVE_QUERIES`` — Qe and Qf of Exp-2 (selections to be pushed into
  the LFP); the ``{value}`` placeholder is filled with the constant that
  selects the desired number of elements.
* ``BIOML_CASES`` — the seven cases of Table 4 over the Fig. 15 subgraphs.
* ``GEDML_QUERY`` — ``even//data`` of the GedML experiment (Fig. 17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.dtd.model import DTD
from repro.dtd import samples

__all__ = [
    "DEPT_QUERIES",
    "CROSS_QUERIES",
    "SELECTIVE_QUERIES",
    "BiomlCase",
    "BIOML_CASES",
    "GEDML_QUERY",
]

# Example 2.2 over the dept DTD of Fig. 1(a).
DEPT_QUERIES: Dict[str, str] = {
    "Q1": "dept//project",
    "Q2": (
        'dept/course[//prereq/course[cno = "cs66"] '
        "and not //project "
        'and not takenBy/student/qualified//course[cno = "cs66"]]'
    ),
}

# Exp-1 queries over the cross-cycle DTD of Fig. 11(a).
CROSS_QUERIES: Dict[str, str] = {
    "Qa": "a/b//c/d",
    "Qb": "a[//c]//d",
    "Qc": "a[not //c]",
    "Qd": "a[not //c or (b and //d)]",
}

# Exp-2 queries (push-selection study); format with the selective constant.
SELECTIVE_QUERIES: Dict[str, str] = {
    "Qe": 'a/b[text() = "{value}"]//c/d',
    "Qf": 'a/b//c/d[text() = "{value}"]',
}

# Exp-3 scalability query.
SCALABILITY_QUERY = "a//d"


@dataclass(frozen=True)
class BiomlCase:
    """One row of Table 4: a query over one extracted BIOML DTD."""

    name: str
    query: str
    cycles: int
    dtd_factory: Callable[[], DTD]

    def dtd(self) -> DTD:
        """Instantiate the DTD for this case."""
        return self.dtd_factory()


# Table 4: queries over the DTD graphs extracted from BIOML (Fig. 15 / 11b).
BIOML_CASES: List[BiomlCase] = [
    BiomlCase("2a", "gene//locus", 2, samples.bioml_subgraph_a),
    BiomlCase("2b", "gene//locus", 3, samples.bioml_subgraph_b),
    BiomlCase("2c", "gene//dna", 3, samples.bioml_subgraph_b),
    BiomlCase("3a", "gene//locus", 3, samples.bioml_subgraph_c),
    BiomlCase("3b", "gene//locus", 4, samples.bioml_subgraph_d),
    BiomlCase("4a", "gene//locus", 4, samples.bioml_dtd),
    BiomlCase("4b", "gene//dna", 4, samples.bioml_dtd),
]

# The GedML experiment query (Fig. 17).
GEDML_QUERY = "even//data"
