"""Columnar, operator-at-a-time execution of relational programs.

The tuple executor (:mod:`repro.relational.executor`) walks Python sets of
tuples one row at a time — the slow idiom for an interpreter, because every
row pays the full dispatch cost.  This module keeps the *algebra* (every
``algebra.py`` node type, with identical result sets and error behaviour)
but changes the *representation*:

* **Dictionary encoding** — every value (node ids, text values, tags) is
  interned once in a shared :class:`ValueDictionary`, so all columns are
  flat lists of small ints and equality on codes is equality on values.
* **Columnar relations** — a :class:`ColumnarRelation` stores parallel
  column arrays (one Python list of codes per column) and converts to/from
  a row-set representation lazily; both forms are cached, so an operator
  picks whichever is cheapest (index-vector passes over columns for
  selection/projection, set algebra over rows for union/difference).
* **Batched operators** — :class:`ColumnarExecutor` evaluates each
  operator over whole columns: selections narrow an index vector,
  projections gather + dedupe through one ``set(zip(...))`` call,
  composes/joins are hash joins over grouped column arrays, and the
  fixpoint operators run per-origin breadth-first search over an adjacency
  map built once per base relation (the semi-naive frontier collapses to
  int-set reachability).  Recursive unions batch the frontier per
  iteration, grouped by tag code.

The executor is selected with ``EngineConfig(executor="columnar")`` (the
default) or ``"tuple"`` (the original engine, kept as the differential
oracle's baseline arm); ``tests/properties/test_executor_equivalence.py``
asserts node-for-node equivalence between the two.
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref
from bisect import bisect_left, bisect_right
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro import obs
from repro.errors import ExecutionError, SchemaError
from repro.relational.algebra import (
    AntiJoin,
    Compose,
    Difference,
    EmptyRelation,
    EquiJoin,
    Fixpoint,
    IdentityRelation,
    Intersect,
    IntervalJoin,
    Program,
    Project,
    RAExpr,
    RecursiveUnion,
    Scan,
    Select,
    SemiJoin,
    TagProject,
    Union,
)
from repro.relational.database import Database
from repro.relational.executor import ExecutionStats
from repro.relational.relation import Relation
from repro.relational.schema import F, NODE_COLUMNS, PRE, SIZE, T, V

__all__ = [
    "EXECUTOR_NAMES",
    "DEFAULT_EXECUTOR",
    "COLUMNAR_MIN_ROWS",
    "ValueDictionary",
    "ColumnarRelation",
    "ColumnarDatabase",
    "ColumnarExecutor",
    "columnar_store",
    "executor_names",
]

#: Registered executor names, in preference order.  ``columnar`` is the
#: default engine; ``tuple`` is the original row-at-a-time executor, kept
#: as the oracle/baseline arm.
EXECUTOR_NAMES: Tuple[str, ...] = ("columnar", "tuple")
DEFAULT_EXECUTOR = "columnar"

#: Below this many total base-relation rows, dictionary-encoding a cold
#: store costs more than an entire tuple-executor run over the raw sets.
#: Callers that resolve ``executor="columnar"`` (the memory backend, the
#: pipeline) fall back to the tuple engine for such tiny cold documents
#: instead of paying the encoding just to throw it away.
COLUMNAR_MIN_ROWS = 64

_TAG_COLUMNS = (F, T, V, "TAG")


def executor_names() -> List[str]:
    """Names of all executors (sorted, for CLI choices)."""
    return sorted(EXECUTOR_NAMES)


class ValueDictionary:
    """A shared value-interning dictionary: value ⇄ dense int code.

    Shredded databases mix ints (node ids) and strings (text values, tags,
    the ``'_'`` sentinels); encoding everything through one dictionary makes
    every column a flat list of ints where code equality is value equality.
    The dictionary is append-only: reads are lock-free (safe under the GIL),
    writes take a lock so concurrent backends sharing one store cannot hand
    two values the same code.
    """

    __slots__ = ("_codes", "_values", "_lock")

    def __init__(self) -> None:
        self._codes: Dict[object, int] = {}
        self._values: List[object] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._values)

    def encode(self, value: object) -> int:
        """Intern ``value`` and return its code (stable for the dictionary's life)."""
        code = self._codes.get(value)
        if code is not None:
            return code
        with self._lock:
            code = self._codes.get(value)
            if code is None:
                code = len(self._values)
                self._values.append(value)
                self._codes[value] = code
            return code

    def encode_column(self, values: Iterable[object]) -> List[int]:
        """Encode a whole column (one lookup per value, interning misses)."""
        get = self._codes.get
        encode = self.encode
        out: List[int] = []
        append = out.append
        for value in values:
            code = get(value)
            append(code if code is not None else encode(value))
        return out

    def decode(self, code: int) -> object:
        """The value behind ``code``."""
        return self._values[code]

    def decode_rows(self, rows: Iterable[Tuple[int, ...]]) -> Set[Tuple]:
        """Decode a set of code rows back into value rows."""
        values = self._values
        return {tuple(map(values.__getitem__, row)) for row in rows}


class ColumnarRelation:
    """A relation stored as parallel column arrays of dictionary codes.

    Either representation — a tuple of per-column code lists (``cols``) or a
    set of code-tuple rows (``rows``) — can seed the relation; the other is
    derived lazily (one C-level ``zip`` transpose) and cached, so operators
    use whichever form fits.  Relations are immutable once built; the
    constructors take ownership of the containers they are handed.

    ``memo`` attaches derived structures (hash-join groupings, fixpoint
    adjacency maps) to the relation they describe.  On base relations those
    memos live as long as the :class:`ColumnarDatabase`, so repeated queries
    over one store reuse them; on temporaries they die with the program run.
    """

    __slots__ = ("columns", "name", "_cols", "_rows", "_memo")

    def __init__(
        self,
        columns: Sequence[str],
        cols: Optional[Sequence[List[int]]] = None,
        rows: Optional[Set[Tuple[int, ...]]] = None,
        name: str = "",
    ) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self.name = name
        if cols is None and rows is None:
            rows = set()
        if cols is not None and len(cols) != len(self.columns):
            raise SchemaError(
                f"relation {name or '<anonymous>'} has {len(self.columns)} "
                f"columns but got {len(cols)} column arrays"
            )
        self._cols: Optional[Tuple[List[int], ...]] = (
            None if cols is None else tuple(cols)
        )
        self._rows: Optional[Set[Tuple[int, ...]]] = rows
        self._memo: Dict[object, object] = {}

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        cols = self._cols
        return len(cols[0]) if cols else 0

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"ColumnarRelation{label}(columns={list(self.columns)}, rows={len(self)})"
        )

    def column_index(self, column: str) -> int:
        """Position of ``column``; raises :class:`SchemaError` if absent."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise SchemaError(
                f"relation {self.name or '<anonymous>'} has no column {column!r} "
                f"(columns: {list(self.columns)})"
            ) from None

    def cols(self) -> Tuple[List[int], ...]:
        """The column arrays (derived from the row set on first use)."""
        if self._cols is None:
            rows = self._rows
            if rows:
                self._cols = tuple(map(list, zip(*rows)))
            else:
                self._cols = tuple([] for _ in self.columns)
        return self._cols

    def rows(self) -> Set[Tuple[int, ...]]:
        """The row set (derived from the column arrays on first use).

        The returned set is the relation's own cache — treat it as
        read-only.
        """
        if self._rows is None:
            cols = self._cols or ()
            self._rows = set(zip(*cols)) if cols and cols[0] else set()
        return self._rows

    def memo(self, key: object, build: Callable[[], object]) -> object:
        """Return the cached structure under ``key``, building it on a miss."""
        value = self._memo.get(key)
        if value is None:
            value = build()
            self._memo[key] = value
        return value


class ColumnarDatabase:
    """A :class:`~repro.relational.database.Database` encoded columnarly.

    Every base relation is dictionary-encoded once (all relations share one
    :class:`ValueDictionary`), and the identity relation ``R_id`` is built
    once and cached — the tuple executor rebuilds it per executor instance.
    The store snapshots the database's version counter; :func:`columnar_store`
    rebuilds stale stores after ``set_relation`` mutations.

    The store also keeps, per prepared :class:`~repro.relational.algebra.Program`,
    the temporaries that program materialized against this (immutable)
    encoding — see :meth:`temps_for`.  That is the columnar engine's
    warm-plan fast path: a plan cached by the service re-executes by
    resolving its already-materialized temporaries instead of re-running
    every join, and only the result expression plus decoding is paid per
    call.  Entries are evicted when the program is garbage-collected (its
    lifetime is the plan cache's), and the whole cache dies with the store
    when the database version moves.
    """

    def __init__(self, database: Database) -> None:
        self._database = database
        self._version = database.version
        self._dictionary = ValueDictionary()
        self._relations: Dict[str, ColumnarRelation] = {}
        self._identity: Optional[ColumnarRelation] = None
        self._program_temps: Dict[
            int, Tuple[weakref.ref, Dict[str, ColumnarRelation]]
        ] = {}
        encode = self._dictionary.encode_column
        for name in database:
            relation = database.relation(name)
            if relation.rows:
                raw = list(zip(*relation.rows))
            else:
                raw = [() for _ in relation.columns]
            cols = tuple(encode(column) for column in raw)
            self._relations[name] = ColumnarRelation(
                relation.columns, cols=cols, name=name
            )

    @property
    def database(self) -> Database:
        """The underlying row database this store encodes."""
        return self._database

    @property
    def version(self) -> int:
        """The database version this store was encoded from."""
        return self._version

    @property
    def dictionary(self) -> ValueDictionary:
        """The shared value dictionary."""
        return self._dictionary

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation(self, name: str) -> ColumnarRelation:
        """The encoded base relation named ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def identity(self) -> ColumnarRelation:
        """The identity relation ``R_id`` (built once, cached).

        One ``(v, v, v.val)`` triple per node, assembled from the schema's
        node relations with a C-level ``zip`` over the T/V columns.
        """
        if self._identity is None:
            rows: Set[Tuple[int, ...]] = set()
            for name in self._database.schema.node_relations:
                relation = self._relations.get(name)
                if relation is None:
                    continue
                cols = relation.cols()
                t_col = cols[relation.column_index(T)]
                v_col = cols[relation.column_index(V)]
                rows.update(zip(t_col, t_col, v_col))
            self._identity = ColumnarRelation(NODE_COLUMNS, rows=rows, name="R_id")
        return self._identity

    def apply_delta(self, delta: object, version: int) -> None:
        """Patch the encoding in place from a live-update row delta.

        ``delta`` is duck-typed (:class:`repro.live.delta.ShredDelta`): two
        mappings ``deletes`` / ``inserts`` from relation name to sets of
        value rows.  Only the touched relations are re-materialized — the
        shared dictionary is append-only so every existing code stays valid,
        and untouched relations keep their encodings *and* their memoized
        join structures.  The identity relation is rebuilt only when a node
        relation changed, and the per-program temporaries are dropped
        wholesale (they may read any relation).  ``version`` is the database
        version counter after the delta was applied to the row store;
        adopting it keeps :func:`columnar_store` returning this patched
        store instead of re-encoding from scratch.

        Relations where the delta is as large as the relation itself (the
        common case for ``DOC_ORDER``, whose pre/post numbers shift globally
        on any structural edit) are re-encoded wholesale from the row store
        — encoding ``n`` final rows beats encoding ``2n`` delta rows on top
        of a full set copy.
        """
        encode = self._dictionary.encode
        deletes: Mapping[str, Iterable[Tuple]] = delta.deletes  # type: ignore[attr-defined]
        inserts: Mapping[str, Iterable[Tuple]] = delta.inserts  # type: ignore[attr-defined]
        node_relations = set(self._database.schema.node_relations)
        for name in set(deletes) | set(inserts):
            old = self._relations.get(name)
            if old is None:
                continue
            delete_rows = deletes.get(name, ())
            insert_rows = inserts.get(name, ())
            if len(delete_rows) + len(insert_rows) >= len(old):
                current = self._database.relation(name)
                rows = {tuple(map(encode, row)) for row in current.rows}
            else:
                rows = set(old.rows())
                for row in delete_rows:
                    rows.discard(tuple(map(encode, row)))
                for row in insert_rows:
                    rows.add(tuple(map(encode, row)))
            self._relations[name] = ColumnarRelation(old.columns, rows=rows, name=name)
            if name in node_relations:
                self._identity = None
        self._program_temps.clear()
        self._version = version

    def temps_for(self, program: Program) -> Dict[str, ColumnarRelation]:
        """The materialized-temporary namespace for ``program`` on this store.

        The store encodes an immutable snapshot of the database and a
        prepared :class:`~repro.relational.algebra.Program` is itself
        immutable, so any temporary the program materializes against this
        store is valid for as long as both live.  Executing a cached plan a
        second time therefore resolves its temporaries from this dict
        instead of re-running every join — the warm-plan steady state pays
        only the result expression and decoding.  The entry is dropped when
        the program is garbage-collected (i.e. when the plan cache evicts
        it), and the whole table dies with the store when the database
        version moves.
        """
        key = id(program)
        entry = self._program_temps.get(key)
        if entry is not None:
            ref, temps = entry
            if ref() is program:
                return temps
        temps = {}
        store = self._program_temps

        def evict(_ref: weakref.ref, _key: int = key) -> None:
            store.pop(_key, None)

        store[key] = (weakref.ref(program, evict), temps)
        return temps


def columnar_store(database: Database) -> ColumnarDatabase:
    """The (cached) columnar encoding of ``database``.

    The store is stashed on the database object and rebuilt whenever the
    database's version counter moved (``set_relation`` bumps it), so callers
    sharing one shredded document — the memory backend, the pipeline, every
    fuzz-grid arm — share one encoding and its warm caches.
    """
    store = getattr(database, "_columnar_store", None)
    if (
        not isinstance(store, ColumnarDatabase)
        or store.database is not database
        or store.version != database.version
    ):
        store = ColumnarDatabase(database)
        database._columnar_store = store  # type: ignore[attr-defined]
    return store


class ColumnarExecutor:
    """Evaluate relational-algebra programs operator-at-a-time over columns.

    Mirrors :class:`~repro.relational.executor.Executor`'s public surface —
    ``run``/``evaluate``/``stats``, lazy (top-down) or eager assignment
    evaluation, identical :class:`~repro.errors.ExecutionError`/
    :class:`~repro.errors.SchemaError` behaviour — but executes each
    operator as a batched pass over encoded columns.  ``run`` returns a
    decoded :class:`~repro.relational.relation.Relation`, so callers cannot
    tell the executors apart except by speed.

    ``stats`` is an :class:`~repro.relational.executor.ExecutionStats` and
    is reset at the start of every ``run`` (per-run numbers).  Each operator
    evaluation is wrapped in an ``op.<type>`` obs span and feeds the
    ``executor.batch_rows`` histogram with its output batch size.
    """

    def __init__(self, database: "Database | ColumnarDatabase", lazy: bool = True) -> None:
        if isinstance(database, ColumnarDatabase):
            self._store = database
        else:
            self._store = columnar_store(database)
        self._lazy = lazy
        self.stats = ExecutionStats()
        self._batch_rows = obs.registry().histogram("executor.batch_rows")

    # -- public API -------------------------------------------------------------

    def run(self, program: Program) -> Relation:
        """Execute a program and return the (decoded) result relation.

        Temporaries are materialized into the store's per-program namespace
        (:meth:`ColumnarDatabase.temps_for`), so re-running a cached plan
        against the same store skips straight to the result expression —
        ``stats.temporaries_evaluated`` is 0 on such warm runs.
        """
        self.stats.reset()
        start = time.perf_counter()
        temps = self._store.temps_for(program)
        if self._lazy:
            result = self._evaluate(program.result, temps, program)
        else:
            for assignment in program.assignments:
                if assignment.target not in temps:
                    temps[assignment.target] = self._evaluate(
                        assignment.expression, temps, program
                    )
                    self.stats.temporaries_evaluated += 1
            result = self._evaluate(program.result, temps, program)
        decoded = self._decode(result)
        self.stats.elapsed_seconds += time.perf_counter() - start
        return decoded

    def evaluate(self, expr: RAExpr) -> Relation:
        """Evaluate a standalone expression (no temporaries in scope)."""
        return self._decode(self._evaluate(expr, {}, None))

    # -- internals --------------------------------------------------------------

    def _decode(self, relation: ColumnarRelation) -> Relation:
        rows = self._store.dictionary.decode_rows(relation.rows())
        return Relation._from_parts(relation.columns, rows, name=relation.name)

    def _resolve_scan(
        self,
        name: str,
        temps: Dict[str, ColumnarRelation],
        program: Optional[Program],
    ) -> ColumnarRelation:
        if name in temps:
            return temps[name]
        if name in self._store:
            return self._store.relation(name)
        if program is not None and self._lazy:
            try:
                expression = program.expression_for(name)
            except KeyError:
                raise ExecutionError(f"unknown relation {name!r}") from None
            relation = self._evaluate(expression, temps, program)
            temps[name] = relation
            self.stats.temporaries_evaluated += 1
            return relation
        raise ExecutionError(f"unknown relation {name!r}")

    def _evaluate(
        self,
        expr: RAExpr,
        temps: Dict[str, ColumnarRelation],
        program: Optional[Program],
    ) -> ColumnarRelation:
        if isinstance(expr, Scan):
            return self._resolve_scan(expr.name, temps, program)
        handler = self._HANDLERS.get(type(expr))
        if handler is None:
            raise ExecutionError(f"unknown relational expression {expr!r}")
        with obs.span(self._SPAN_NAMES[type(expr)]) as sp:
            relation = handler(self, expr, temps, program)
            if sp:
                sp.set(rows=len(relation))
        self._batch_rows.observe(len(relation))
        return relation

    # -- operators ---------------------------------------------------------------

    def _identity(self, expr, temps, program) -> ColumnarRelation:
        return self._store.identity()

    def _empty(self, expr, temps, program) -> ColumnarRelation:
        return ColumnarRelation(NODE_COLUMNS)

    def _select(self, expr: Select, temps, program) -> ColumnarRelation:
        relation = self._evaluate(expr.input, temps, program)
        cols = relation.cols()
        encode = self._store.dictionary.encode
        keep: Optional[List[int]] = None
        for condition in expr.conditions:
            column = cols[relation.column_index(condition.column)]
            code = encode(condition.value)
            if condition.op == "=":
                if keep is None:
                    keep = [i for i, c in enumerate(column) if c == code]
                else:
                    keep = [i for i in keep if column[i] == code]
            elif condition.op == "!=":
                if keep is None:
                    keep = [i for i, c in enumerate(column) if c != code]
                else:
                    keep = [i for i in keep if column[i] != code]
            else:
                raise ExecutionError(f"unsupported condition operator {condition.op!r}")
        if keep is None:
            return relation
        gathered = tuple([column[i] for i in keep] for column in cols)
        return ColumnarRelation(relation.columns, cols=gathered)

    def _project(self, expr: Project, temps, program) -> ColumnarRelation:
        relation = self._evaluate(expr.input, temps, program)
        indexes = [relation.column_index(c) for c in expr.columns]
        out_columns = expr.aliases if expr.aliases else expr.columns
        if len(out_columns) != len(expr.columns):
            raise SchemaError("projection aliases must match projected columns")
        cols = relation.cols()
        if indexes:
            rows = set(zip(*(cols[i] for i in indexes)))
        else:
            rows = {()} if len(relation) else set()
        self.stats.tuples_materialized += len(rows)
        return ColumnarRelation(out_columns, rows=rows)

    def _tag_project(self, expr: TagProject, temps, program) -> ColumnarRelation:
        relation = self._evaluate(expr.input, temps, program)
        fi, ti, vi = (relation.column_index(c) for c in (F, T, V))
        tag_code = self._store.dictionary.encode(expr.tag)
        cols = relation.cols()
        rows = set(
            zip(cols[fi], cols[ti], cols[vi], itertools.repeat(tag_code, len(relation)))
        )
        return ColumnarRelation(_TAG_COLUMNS, rows=rows)

    @staticmethod
    def _group_pairs(
        relation: ColumnarRelation, key_index: int, a_index: int, b_index: int
    ) -> Dict[int, List[Tuple[int, int]]]:
        """Group ``(col_a, col_b)`` pairs by the key column's code.

        Callers always group a three-column relation by all three of its
        columns, and relations hold distinct rows by construction, so the
        per-key pair lists are distinct without any dedup pass.
        """

        def build() -> Dict[int, List[Tuple[int, int]]]:
            groups: Dict[int, List[Tuple[int, int]]] = {}
            cols = relation.cols()
            for key, a, b in zip(cols[key_index], cols[a_index], cols[b_index]):
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = bucket = []
                bucket.append((a, b))
            return groups

        return relation.memo(("pairs", key_index, a_index, b_index), build)  # type: ignore[return-value]

    def _compose(self, expr: Compose, temps, program) -> ColumnarRelation:
        left = self._evaluate(expr.left, temps, program)
        if not len(left):
            return ColumnarRelation(NODE_COLUMNS)
        right = self._evaluate(expr.right, temps, program)
        if not len(right):
            return ColumnarRelation(NODE_COLUMNS)
        lf, lt = left.column_index(F), left.column_index(T)
        rf, rt, rv = (right.column_index(c) for c in (F, T, V))

        def build_left() -> Dict[int, Set[int]]:
            groups: Dict[int, Set[int]] = {}
            cols = left.cols()
            for origin, key in zip(cols[lf], cols[lt]):
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = bucket = set()
                bucket.add(origin)
            return groups

        left_groups = left.memo(("origins", lt, lf), build_left)
        right_pairs = self._group_pairs(right, rf, rt, rv)
        rows: Set[Tuple[int, ...]] = set()
        update = rows.update
        get_pairs = right_pairs.get
        for key, origins in left_groups.items():  # type: ignore[union-attr]
            pairs = get_pairs(key)
            if pairs:
                update(
                    (origin, target, value)
                    for origin in origins
                    for target, value in pairs
                )
        self.stats.join_output_rows += len(rows)
        return ColumnarRelation(NODE_COLUMNS, rows=rows)

    def _equijoin(self, expr: EquiJoin, temps, program) -> ColumnarRelation:
        left = self._evaluate(expr.left, temps, program)
        right = self._evaluate(expr.right, temps, program)
        left_idx = left.column_index(expr.left_column)
        right_idx = right.column_index(expr.right_column)
        out_columns = tuple(alias for _, _, alias in expr.output)
        pickers = [
            (side == "L", (left if side == "L" else right).column_index(column))
            for side, column, _ in expr.output
        ]
        index: Dict[int, List[Tuple[int, ...]]] = {}
        for match in right.rows():
            index.setdefault(match[right_idx], []).append(match)
        rows: Set[Tuple[int, ...]] = set()
        add = rows.add
        get = index.get
        for row in left.rows():
            matches = get(row[left_idx])
            if matches:
                for match in matches:
                    add(
                        tuple(
                            row[i] if is_left else match[i] for is_left, i in pickers
                        )
                    )
        self.stats.join_output_rows += len(rows)
        return ColumnarRelation(out_columns, rows=rows)

    def _semijoin(self, expr, temps, program, keep_matching: bool) -> ColumnarRelation:
        left = self._evaluate(expr.left, temps, program)
        if not len(left):
            return ColumnarRelation(left.columns)
        right = self._evaluate(expr.right, temps, program)
        keys = set(right.cols()[right.column_index(expr.right_column)])
        cols = left.cols()
        column = cols[left.column_index(expr.left_column)]
        if keep_matching:
            keep = [i for i, c in enumerate(column) if c in keys]
        else:
            keep = [i for i, c in enumerate(column) if c not in keys]
        gathered = tuple([col[i] for i in keep] for col in cols)
        return ColumnarRelation(left.columns, cols=gathered)

    def _semi(self, expr: SemiJoin, temps, program) -> ColumnarRelation:
        return self._semijoin(expr, temps, program, keep_matching=True)

    def _anti(self, expr: AntiJoin, temps, program) -> ColumnarRelation:
        return self._semijoin(expr, temps, program, keep_matching=False)

    def _union(self, expr: Union, temps, program) -> ColumnarRelation:
        relations = [self._evaluate(child, temps, program) for child in expr.inputs]
        non_empty = [rel for rel in relations if rel.columns]
        if not non_empty:
            return ColumnarRelation(NODE_COLUMNS)
        columns = non_empty[0].columns
        rows: Set[Tuple[int, ...]] = set()
        for rel in non_empty:
            if rel.columns != columns:
                raise SchemaError(
                    f"union over mismatched columns {rel.columns} vs {columns}"
                )
            rows |= rel.rows()
        self.stats.union_output_rows += len(rows)
        return ColumnarRelation(columns, rows=rows)

    def _difference(self, expr: Difference, temps, program) -> ColumnarRelation:
        left = self._evaluate(expr.left, temps, program)
        right = self._evaluate(expr.right, temps, program)
        return ColumnarRelation(left.columns, rows=left.rows() - right.rows())

    def _intersect(self, expr: Intersect, temps, program) -> ColumnarRelation:
        left = self._evaluate(expr.left, temps, program)
        right = self._evaluate(expr.right, temps, program)
        return ColumnarRelation(left.columns, rows=left.rows() & right.rows())

    # -- fixpoints ---------------------------------------------------------------
    #
    # The tuple executor iterates a pair frontier: each round extends every
    # (origin, node, value) tuple along the edges.  Over codes the same
    # fixpoint factors into per-origin reachability — reach(a) over the
    # F→T adjacency of the base, emitting (a, t, v) for every base row
    # (b, t, v) with b ∈ reach(a) — which visits each (origin, node) pair
    # once instead of once per extension path.

    @staticmethod
    def _adjacency(
        relation: ColumnarRelation, from_index: int, to_index: int, tag: str
    ) -> Dict[int, List[int]]:
        def build() -> Dict[int, List[int]]:
            adjacency: Dict[int, Set[int]] = {}
            cols = relation.cols()
            for source, target in zip(cols[from_index], cols[to_index]):
                bucket = adjacency.get(source)
                if bucket is None:
                    adjacency[source] = bucket = set()
                bucket.add(target)
            return {source: list(bucket) for source, bucket in adjacency.items()}

        return relation.memo((tag, from_index, to_index), build)  # type: ignore[return-value]

    @staticmethod
    def _reach(start: int, adjacency: Dict[int, List[int]]) -> Set[int]:
        """All codes reachable from ``start`` (inclusive) over ``adjacency``."""
        seen = {start}
        stack = [start]
        pop = stack.pop
        push = stack.append
        get = adjacency.get
        while stack:
            node = pop()
            targets = get(node)
            if targets:
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        push(target)
        return seen

    def _fixpoint(self, expr: Fixpoint, temps, program) -> ColumnarRelation:
        base = self._evaluate(expr.base, temps, program)
        fi, ti, vi = (base.column_index(c) for c in (F, T, V))
        if expr.target_anchor is not None and expr.source_anchor is None:
            return self._fixpoint_backward(expr, base, fi, ti, vi, temps, program)

        adjacency = self._adjacency(base, fi, ti, "fp-adj")
        out_pairs = self._group_pairs(base, fi, ti, vi)
        if expr.source_anchor is not None:
            anchor = self._evaluate(expr.source_anchor, temps, program)
            allowed = set(anchor.cols()[anchor.column_index(T)])
            origins = [origin for origin in out_pairs if origin in allowed]
        else:
            origins = list(out_pairs)

        result: Set[Tuple[int, ...]] = set()
        update = result.update
        get_pairs = out_pairs.get
        for origin in origins:
            self.stats.fixpoint_iterations += 1
            for node in self._reach(origin, adjacency):
                pairs = get_pairs(node)
                if pairs:
                    update((origin, target, value) for target, value in pairs)
        self.stats.tuples_materialized += len(result)
        return ColumnarRelation(NODE_COLUMNS, rows=result)

    def _fixpoint_backward(
        self, expr: Fixpoint, base: ColumnarRelation, fi, ti, vi, temps, program
    ) -> ColumnarRelation:
        anchor = self._evaluate(expr.target_anchor, temps, program)
        allowed = set(anchor.cols()[anchor.column_index(F)])
        reverse = self._adjacency(base, ti, fi, "fp-radj")

        # Seed rows are the base rows whose T lands in the anchor; group
        # their (t, v) payloads by source so each distinct source runs one
        # ancestor search.
        cols = base.cols()
        seeds: Dict[int, Set[Tuple[int, int]]] = {}
        for source, target, value in zip(cols[fi], cols[ti], cols[vi]):
            if target in allowed:
                bucket = seeds.get(source)
                if bucket is None:
                    seeds[source] = bucket = set()
                bucket.add((target, value))

        result: Set[Tuple[int, ...]] = set()
        update = result.update
        for source, payload in seeds.items():
            self.stats.fixpoint_iterations += 1
            ancestors = self._reach(source, reverse)
            for ancestor in ancestors:
                update((ancestor, target, value) for target, value in payload)
        self.stats.tuples_materialized += len(result)
        return ColumnarRelation(NODE_COLUMNS, rows=result)

    def _interval_join(self, expr: IntervalJoin, temps, program) -> ColumnarRelation:
        left = self._evaluate(expr.left, temps, program)
        if not len(left):
            return ColumnarRelation(NODE_COLUMNS)
        right = self._evaluate(expr.right, temps, program)
        if not len(right):
            return ColumnarRelation(NODE_COLUMNS)
        order = self._evaluate(expr.order, temps, program)
        decode = self._store.dictionary.decode

        def build_intervals() -> Dict[int, Tuple[int, int]]:
            # Node code -> (pre, size), decoded once: the window arithmetic
            # needs the integer ranks, not their dictionary codes.
            cols = order.cols()
            t_col = cols[order.column_index(T)]
            pre_col = cols[order.column_index(PRE)]
            size_col = cols[order.column_index(SIZE)]
            return {
                t: (int(decode(p)), int(decode(s)))
                for t, p, s in zip(t_col, pre_col, size_col)
            }

        interval = order.memo("ivj-intervals", build_intervals)

        def build_targets() -> Tuple[List[int], List[Tuple[int, int, int]]]:
            cols = right.cols()
            t_col = cols[right.column_index(T)]
            v_col = cols[right.column_index(V)]
            ordered = sorted(
                (interval[t][0], t, v) for t, v in zip(t_col, v_col) if t in interval
            )
            return [pre for pre, _, _ in ordered], ordered

        pres, targets = right.memo(("ivj-targets", order.name), build_targets)
        lt_col = left.cols()[left.column_index(T)]
        rows: Set[Tuple[int, ...]] = set()
        add = rows.add
        get = interval.get
        for ancestor in set(lt_col):
            window = get(ancestor)
            if window is None:
                continue
            pre, size = window
            lo = bisect_right(pres, pre)
            hi = bisect_left(pres, pre + size + 1)
            for _, node, value in targets[lo:hi]:
                add((ancestor, node, value))
        self.stats.join_output_rows += len(rows)
        return ColumnarRelation(NODE_COLUMNS, rows=rows)

    def _recursive_union(self, expr: RecursiveUnion, temps, program) -> ColumnarRelation:
        init = self._evaluate(expr.init, temps, program)
        if tuple(init.columns) != _TAG_COLUMNS:
            raise SchemaError(
                f"recursive union init must have columns {_TAG_COLUMNS}, "
                f"got {init.columns}"
            )
        encode = self._store.dictionary.encode
        steps = []
        for step in expr.steps:
            relation = self._evaluate(step.relation, temps, program)
            rf, rt, rv = (relation.column_index(c) for c in (F, T, V))
            pairs = self._group_pairs(relation, rf, rt, rv)
            steps.append((encode(step.parent_tag), encode(step.child_tag), pairs))

        # Semi-naive: each iteration extends only the tuples discovered in
        # the previous one, with the frontier batched per parent tag.  (The
        # tuple executor deliberately re-scans the whole accumulated
        # relation each round — the SQL'99 cost model; the fixpoint is the
        # same set either way.)
        result: Set[Tuple[int, ...]] = set(init.rows())
        frontier = result
        while frontier:
            self.stats.recursive_union_iterations += 1
            by_tag: Dict[int, List[Tuple[int, int]]] = {}
            for origin, node, _value, tag in frontier:
                by_tag.setdefault(tag, []).append((origin, node))
            new: Set[Tuple[int, ...]] = set()
            add = new.add
            for parent_tag, child_tag, pairs in steps:
                frontier_rows = by_tag.get(parent_tag)
                if not frontier_rows:
                    continue
                produced = 0
                get_pairs = pairs.get
                for origin, node in frontier_rows:
                    extensions = get_pairs(node)
                    if extensions:
                        for target, value in extensions:
                            candidate = (origin, target, value, child_tag)
                            if candidate not in result:
                                add(candidate)
                                produced += 1
                self.stats.join_output_rows += produced
            result |= new
            frontier = new
        self.stats.tuples_materialized += len(result)
        return ColumnarRelation(_TAG_COLUMNS, rows=result)

    #: Operator dispatch (Scan is resolved before dispatch; see _evaluate).
    _HANDLERS: Dict[type, Callable] = {
        IdentityRelation: _identity,
        EmptyRelation: _empty,
        Select: _select,
        Project: _project,
        TagProject: _tag_project,
        Compose: _compose,
        EquiJoin: _equijoin,
        SemiJoin: _semi,
        AntiJoin: _anti,
        Union: _union,
        Difference: _difference,
        Intersect: _intersect,
        Fixpoint: _fixpoint,
        RecursiveUnion: _recursive_union,
        IntervalJoin: _interval_join,
    }

    _SPAN_NAMES: Dict[type, str] = {
        node_type: f"op.{node_type.__name__.lower()}" for node_type in _HANDLERS
    }
