"""Facade equivalence: ``Engine``/``Session`` answers == the layers below.

The Issue 5 acceptance property: for every sample DTD, on both execution
backends, at optimizer levels 0 and 2, the public facade answers every
query with exactly the node set of (a) a direct
:class:`~repro.service.QueryService` and (b) a bare
:class:`~repro.core.pipeline.XPathToSQLTranslator` over the same shredded
document — i.e. the facade adds no semantics, only the narrowed surface.
"""

from __future__ import annotations

import pytest

from repro.api import Engine, EngineConfig
from repro.core.pipeline import XPathToSQLTranslator
from repro.dtd import samples
from repro.fuzz.xpath_gen import RandomXPathGenerator, XPathGenConfig
from repro.service import QueryService
from repro.xmltree.generator import generate_document

ALL_SAMPLE_DTDS = sorted(samples.paper_dtds())
BACKENDS = ("memory", "sqlite")
LEVELS = (0, 2)
QUERIES_PER_DTD = 4


@pytest.fixture(scope="module")
def sample_documents():
    documents = {}
    for name, dtd in samples.paper_dtds().items():
        documents[name] = (
            dtd,
            generate_document(
                dtd, x_l=7, x_r=3, seed=31, max_elements=220, distinct_values=4
            ),
        )
    return documents


class TestFacadeMatchesUnderlyingLayers:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
    def test_engine_session_equals_service_and_translator(
        self, sample_documents, dtd_name, backend, level
    ):
        dtd, tree = sample_documents[dtd_name]
        queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=37)).queries(
            QUERIES_PER_DTD
        )
        config = EngineConfig(backend=backend, optimize_level=level)

        engine = Engine.from_dtd(dtd, config)
        translator = XPathToSQLTranslator(dtd, config=config)
        shredded = translator.shred(tree)
        with engine.open_session(tree) as session, QueryService(
            dtd, config=config
        ) as service:
            service.register_document("doc", tree)
            for query in queries:
                via_facade = {node.node_id for node in session.answer(query)}
                via_service = {node.node_id for node in service.answer(query)}
                via_translator = {
                    node.node_id for node in translator.answer(query, shredded)
                }
                assert via_facade == via_service, (dtd_name, backend, level, query)
                assert via_facade == via_translator, (dtd_name, backend, level, query)

    @pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
    def test_facade_warm_answers_stay_identical(self, sample_documents, dtd_name):
        """Repeat answering through every cache layer changes nothing."""
        dtd, tree = sample_documents[dtd_name]
        query = RandomXPathGenerator(dtd, XPathGenConfig(seed=41)).generate()
        with Engine.from_dtd(dtd).open_session(tree) as session:
            cold = session.answer(query).node_ids()
            for _ in range(3):
                assert session.answer(query).node_ids() == cold, (dtd_name, query)
