"""Unit tests for the Relation class."""

import pytest

from repro.errors import SchemaError
from repro.relational.relation import Relation


@pytest.fixture()
def edges():
    return Relation(("F", "T", "V"), {("a", "b", "_"), ("b", "c", "x"), ("a", "d", "_")}, name="edges")


class TestConstruction:
    def test_rows_and_columns(self, edges):
        assert edges.columns == ("F", "T", "V")
        assert len(edges) == 3
        assert ("a", "b", "_") in edges

    def test_duplicate_rows_collapse(self):
        relation = Relation(("a",), [(1,), (1,), (2,)])
        assert len(relation) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("a", "b"), [(1,)])

    def test_add_checks_arity(self, edges):
        edges.add(("c", "e", "_"))
        assert len(edges) == 4
        with pytest.raises(SchemaError):
            edges.add(("too", "few"))

    def test_equality_is_structural(self):
        first = Relation(("a",), [(1,), (2,)])
        second = Relation(("a",), [(2,), (1,)])
        assert first == second
        assert first != Relation(("a",), [(1,)])
        assert first != Relation(("b",), [(1,), (2,)])

    def test_not_hashable(self, edges):
        with pytest.raises(TypeError):
            hash(edges)


class TestOperations:
    def test_column_index_and_unknown_column(self, edges):
        assert edges.column_index("T") == 1
        with pytest.raises(SchemaError):
            edges.column_index("missing")

    def test_column_values(self, edges):
        assert edges.column_values("F") == {"a", "b"}

    def test_project(self, edges):
        projected = edges.project(("F",))
        assert projected.columns == ("F",)
        assert projected.rows == {("a",), ("b",)}

    def test_project_duplicate_column(self, edges):
        projected = edges.project(("T", "T"))
        assert ("b", "b") in projected.rows

    def test_restrict(self, edges):
        restricted = edges.restrict("F", "a")
        assert len(restricted) == 2

    def test_index_on(self, edges):
        index = edges.index_on("F")
        assert len(index["a"]) == 2
        assert len(index["b"]) == 1

    def test_copy_is_independent(self, edges):
        clone = edges.copy(name="clone")
        clone.add(("z", "z", "z"))
        assert len(edges) == 3
        assert clone.name == "clone"

    def test_sorted_rows_deterministic(self, edges):
        assert edges.sorted_rows() == sorted(edges.rows, key=lambda r: tuple(str(v) for v in r))


class TestIssue8Regressions:
    """The Issue 8 executor-correctness satellites, pinned."""

    def test_project_no_longer_takes_a_distinct_flag(self, edges):
        # The old ``distinct=False`` parameter was dead code: the projection
        # always deduplicated (sets all the way down).  The parameter is
        # gone, so passing it is a loud TypeError instead of a silent lie.
        with pytest.raises(TypeError):
            edges.project(("F",), distinct=False)
        with pytest.raises(TypeError):
            edges.project(("F",), True)

    def test_project_is_always_distinct(self, edges):
        projected = edges.project(("F",))
        assert len(projected) == 2  # three edges, two distinct origins

    def test_sorted_rows_orders_node_ids_numerically(self):
        relation = Relation(("T",), {(2,), (10,), (1,)})
        assert relation.sorted_rows() == [(1,), (2,), (10,)]
        # The old key sorted by str(), which put ("10",) before ("2",).
        assert relation.sorted_rows() != sorted(
            relation.rows, key=lambda r: tuple(str(v) for v in r)
        )

    def test_sorted_rows_mixed_types_do_not_raise(self):
        # Shredded relations mix int node ids with string values and "_"
        # sentinels; Python cannot order int < str natively.
        relation = Relation(("F", "T"), {("_", 10), (3, 2), (None, 1), (2.5, 0)})
        rows = relation.sorted_rows()
        assert rows == [(None, 1), (2.5, 0), (3, 2), ("_", 10)]

    def test_sorted_rows_numbers_before_strings(self):
        relation = Relation(("V",), {("a-1",), (7,), ("_",), (0,)})
        assert relation.sorted_rows() == [(0,), (7,), ("_",), ("a-1",)]
