"""Command-line interface: translate queries, inspect DTDs, run workloads.

Installed as ``python -m repro`` (see ``repro.__main__``).  Subcommands:

``describe``
    Print the structural summary and productions of a named paper DTD or of
    a DTD file in the grammar syntax of :func:`repro.dtd.parser.parse_dtd`.

``translate``
    Translate an XPath query over a DTD into extended XPath, the relational
    program and SQL text (choose the dialect and the descendant strategy).

``answer``
    Generate (or load nothing — generation is always synthetic here), shred
    and answer a query, printing the matching node paths; handy for quickly
    checking what a translated query returns.  ``--backend sqlite`` runs
    the translated SQL for real on SQLite instead of the in-memory engine.

``experiment``
    Run one of the paper's experiments (exp1..exp5) with ``--quick`` sweeps
    and an optional ``--backend`` axis.

``diff``
    Run the differential suite: every workload query on every backend,
    asserting identical answer sets.

Examples
--------
::

    python -m repro describe dept
    python -m repro translate dept "dept//project" --dialect db2
    python -m repro translate cross "a/b//c/d" --strategy recursive-union
    python -m repro translate cross "a//d" --dialect sqlite
    python -m repro answer cross "a//d" --elements 2000 --seed 7
    python -m repro answer cross "a//d" --backend sqlite
    python -m repro experiment exp5
    python -m repro experiment exp3 --quick --backend sqlite
    python -m repro diff --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.backends import backend_names, create_backend
from repro.core.optimize import push_selection_options, standard_options
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.dtd import samples
from repro.relational.sqlgen import SQLDialect
from repro.xmltree.generator import generate_document

__all__ = ["main", "build_parser"]

_STRATEGIES = {
    "cycleex": DescendantStrategy.CYCLEEX,
    "cyclee": DescendantStrategy.CYCLEE,
    "recursive-union": DescendantStrategy.RECURSIVE_UNION,
}

_DIALECTS = {
    "generic": SQLDialect.GENERIC,
    "db2": SQLDialect.DB2,
    "oracle": SQLDialect.ORACLE,
    "sqlite": SQLDialect.SQLITE,
}


def _load_dtd(name_or_path: str) -> DTD:
    """Resolve a DTD argument: a paper DTD name or a path to a grammar file."""
    named = samples.paper_dtds()
    if name_or_path in named:
        return named[name_or_path]
    try:
        with open(name_or_path, "r", encoding="utf-8") as handle:
            return parse_dtd(handle.read(), name=name_or_path)
    except FileNotFoundError:
        known = ", ".join(sorted(named))
        raise SystemExit(
            f"unknown DTD {name_or_path!r}: pass one of [{known}] or a DTD file path"
        )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XPath-to-SQL translation over recursive DTDs (Fan et al., VLDB 2005)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    describe = commands.add_parser("describe", help="print a DTD and its graph summary")
    describe.add_argument("dtd", help="paper DTD name (e.g. dept, cross, gedml) or file path")

    translate = commands.add_parser("translate", help="translate an XPath query to SQL")
    translate.add_argument("dtd", help="paper DTD name or file path")
    translate.add_argument("query", help="XPath query, e.g. 'dept//project'")
    translate.add_argument(
        "--strategy", choices=sorted(_STRATEGIES), default="cycleex",
        help="descendant-axis expansion (default: cycleex)",
    )
    translate.add_argument(
        "--dialect", choices=sorted(_DIALECTS), default="generic",
        help="SQL dialect to emit (default: generic)",
    )
    translate.add_argument(
        "--push-selections", action="store_true",
        help="apply the Sect. 5.2 push-selection optimisation",
    )
    translate.add_argument(
        "--show", choices=["extended", "program", "sql", "all"], default="all",
        help="which artifact(s) to print",
    )

    answer = commands.add_parser("answer", help="generate a document, shred it and answer a query")
    answer.add_argument("dtd", help="paper DTD name or file path")
    answer.add_argument("query", help="XPath query to answer")
    answer.add_argument("--elements", type=int, default=2000, help="approximate document size")
    answer.add_argument("--seed", type=int, default=0, help="generator seed")
    answer.add_argument("--x-l", type=int, default=10, help="maximum levels (X_L)")
    answer.add_argument("--x-r", type=int, default=4, help="maximum repetition (X_R)")
    answer.add_argument("--limit", type=int, default=20, help="print at most this many matches")
    answer.add_argument(
        "--strategy", choices=sorted(_STRATEGIES), default="cycleex",
        help="descendant-axis expansion (default: cycleex)",
    )
    answer.add_argument(
        "--backend", choices=backend_names(), default="memory",
        help="execution backend (default: memory)",
    )

    experiment = commands.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("name", choices=["exp1", "exp2", "exp3", "exp4", "exp5"])
    experiment.add_argument("--quick", action="store_true", help="reduced sweep")
    experiment.add_argument(
        "--backend", choices=backend_names(), default="memory",
        help="execution backend for exp1-exp4 (default: memory)",
    )

    diff = commands.add_parser(
        "diff", help="differentially validate all backends on the workload queries"
    )
    diff.add_argument("--quick", action="store_true", help="smaller documents")

    return parser


def _cmd_describe(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd)
    print(samples.describe(dtd))
    print()
    print(dtd.to_text())
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd)
    options = push_selection_options() if args.push_selections else standard_options()
    translator = XPathToSQLTranslator(dtd, strategy=_STRATEGIES[args.strategy], options=options)
    result = translator.translate(args.query)
    if args.show in ("extended", "all"):
        print("-- extended XPath --")
        print(result.extended)
        print()
    if args.show in ("program", "all"):
        print("-- relational program --")
        print(result.program)
        print()
    if args.show in ("sql", "all"):
        print(f"-- SQL ({args.dialect}) --")
        print(result.sql(_DIALECTS[args.dialect]))
    profile = result.operator_profile()
    print()
    print(
        f"-- profile: {profile.joins} joins, {profile.unions} unions, "
        f"{profile.lfps} LFPs, {profile.recursive_unions} SQL'99 recursions"
    )
    return 0


def _cmd_answer(args: argparse.Namespace) -> int:
    dtd = _load_dtd(args.dtd)
    document = generate_document(
        dtd, x_l=args.x_l, x_r=args.x_r, seed=args.seed, max_elements=args.elements
    )
    translator = XPathToSQLTranslator(dtd, strategy=_STRATEGIES[args.strategy])
    shredded = translator.shred(document)
    program = translator.translate(args.query).program
    backend = create_backend(args.backend, shredded.database)
    try:
        executed = backend.execute(program)
    finally:
        backend.close()
    matches = shredded.nodes_for_ids(executed.node_ids())
    print(
        f"document: {document.size()} elements; matches: {len(matches)} "
        f"(backend: {executed.backend}, {executed.stats['elapsed_seconds']:.3f}s)"
    )
    for node in matches[: args.limit]:
        path = "/".join(node.path_from_root())
        value = f" = {node.value!r}" if node.value is not None else ""
        print(f"  node {node.node_id}: {path}{value}")
    if len(matches) > args.limit:
        print(f"  ... and {len(matches) - args.limit} more")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import exp1, exp2, exp3, exp4, exp5

    modules = {"exp1": exp1, "exp2": exp2, "exp3": exp3, "exp4": exp4, "exp5": exp5}
    module = modules[args.name]
    argv: List[str] = ["--quick"] if args.quick else []
    if args.backend != "memory":
        if args.name == "exp5":
            # Exp-5 reports static operator counts; nothing executes.
            print("note: exp5 is translation-only, --backend has no effect")
        else:
            argv.append(f"--backend={args.backend}")
    return module.main(argv)


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.backends import differential

    return differential.main(["--quick"] if args.quick else [])


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "describe": _cmd_describe,
        "translate": _cmd_translate,
        "answer": _cmd_answer,
        "experiment": _cmd_experiment,
        "diff": _cmd_diff,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via repro.__main__
    sys.exit(main())
