"""Structured JSON-lines logs: sinks, event shape, the off-by-default path."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _logs_off_afterwards():
    yield
    obs.disable_logs()


def _lines(buffer: io.StringIO):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestEmission:
    def test_off_by_default_and_emit_is_a_no_op(self):
        assert not obs.logs_enabled()
        obs.emit("ignored", detail=1)  # must not raise

    def test_emit_writes_one_json_object_per_line(self):
        buffer = io.StringIO()
        obs.configure_logs(buffer)
        assert obs.logs_enabled()
        obs.emit("query", document="doc", rows=3)
        obs.emit("query", document="doc", rows=5)
        records = _lines(buffer)
        assert len(records) == 2
        assert records[0]["event"] == "query"
        assert records[0]["rows"] == 3
        assert isinstance(records[0]["ts"], float)

    def test_non_json_values_are_stringified_not_raised(self):
        buffer = io.StringIO()
        obs.configure_logs(buffer)
        obs.emit("odd", payload={1, 2})  # a set is not JSON-representable
        (record,) = _lines(buffer)
        assert isinstance(record["payload"], str)

    def test_disable_stops_emission(self):
        buffer = io.StringIO()
        obs.configure_logs(buffer)
        obs.disable_logs()
        assert not obs.logs_enabled()
        obs.emit("after", x=1)
        assert buffer.getvalue() == ""

    def test_path_sink_appends_and_is_closed_on_disable(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs.configure_logs(str(path))
        obs.emit("first")
        obs.disable_logs()
        obs.configure_logs(str(path))  # append mode: the first line survives
        obs.emit("second")
        obs.disable_logs()
        events = [json.loads(line)["event"] for line in path.read_text().splitlines()]
        assert events == ["first", "second"]


class TestEmitSpan:
    def test_finished_trace_travels_as_one_trace_event(self):
        buffer = io.StringIO()
        obs.configure_logs(buffer)
        with obs.trace("root") as root:
            with obs.span("child"):
                pass
        obs.emit_span(root, query="a//b")
        (record,) = _lines(buffer)
        assert record["event"] == "trace"
        assert record["query"] == "a//b"
        rebuilt = obs.Span.from_dict(record["span"])
        assert rebuilt.children[0].name == "child"

    def test_emit_span_without_sink_is_a_no_op(self):
        with obs.trace("root") as root:
            pass
        obs.emit_span(root)  # must not raise
