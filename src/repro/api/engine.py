"""The :class:`Engine`/:class:`Session` facade — answer XPath over one DTD.

This is the top-down contract over every layer built underneath: an
:class:`Engine` owns one DTD plus one frozen
:class:`~repro.api.config.EngineConfig` (and the shared translation-plan
cache), a :class:`Session` owns registered documents (shredded once,
backend kept warm, results memoized) and answers queries as typed
:class:`QueryResult` objects.  Both are context managers; everything they
raise is rooted at :class:`~repro.errors.ReproError`.

Compared to driving :class:`~repro.core.pipeline.XPathToSQLTranslator` or
:class:`~repro.service.QueryService` directly, the facade adds no
semantics — the property suite pins ``Engine``/``Session`` answers to the
underlying layers node-for-node — it only removes the kwarg threading:
every knob enters exactly once, through the config.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import (
    Callable,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.api.config import EngineConfig
from repro.backends.base import BackendResult
from repro.core.pipeline import QueryLike, TranslationResult, XPathToSQLTranslator
from repro.core.plancache import PlanCache
from repro.dtd.model import DTD
from repro.errors import ConfigError, SessionClosedError
from repro.relational.sqlgen import SQLDialect
from repro.service import QueryService
from repro.shredding.shredder import ShreddedDocument
from repro.xmltree.tree import XMLNode, XMLTree

__all__ = ["Engine", "Session", "QueryResult"]

DocumentsLike = Union[XMLTree, Mapping[str, XMLTree], Sequence[XMLTree]]

DEFAULT_DOCUMENT_ID = "doc"


def _named_documents(documents: DocumentsLike) -> List[Tuple[str, XMLTree]]:
    """Normalize the accepted document shapes to ``(id, tree)`` pairs.

    A bare tree gets the id ``"doc"``; a sequence always gets ``doc0``,
    ``doc1``, ... (also for one element, so ids never shift with length).
    """
    if isinstance(documents, XMLTree):
        named = [(DEFAULT_DOCUMENT_ID, documents)]
    elif isinstance(documents, Mapping):
        named = list(documents.items())
    elif isinstance(documents, Sequence):
        named = [
            (f"{DEFAULT_DOCUMENT_ID}{index}", tree)
            for index, tree in enumerate(documents)
        ]
    else:
        raise ConfigError(
            f"open_session expects an XMLTree, a mapping or a sequence, "
            f"got {type(documents).__name__}"
        )
    for document_id, tree in named:
        if not isinstance(tree, XMLTree):
            raise ConfigError(
                f"document {document_id!r} is not an XMLTree "
                f"(got {type(tree).__name__})"
            )
    return named


class QueryResult:
    """The typed answer to one query: plan metadata plus lazy nodes.

    The backend's raw result (normalized rows, execution stats) is attached
    eagerly; the translation plan and the mapping from node ids back to
    :class:`~repro.xmltree.tree.XMLNode` objects are both deferred — the
    plan until :attr:`plan` is read (a plan-cache lookup when caching is
    on; only then a re-translation when it is off), the nodes until the
    result is iterated (or :meth:`nodes` is called) — so callers that only
    need counts or row sets pay for neither.
    """

    def __init__(
        self,
        query: str,
        document_id: str,
        plan_factory: "Callable[[], TranslationResult]",
        raw: BackendResult,
        shredded: ShreddedDocument,
        trace: Optional[obs.Span] = None,
    ) -> None:
        self._query = query
        self._document_id = document_id
        self._plan_factory = plan_factory
        self._plan: Optional[TranslationResult] = None
        self._raw = raw
        self._shredded = shredded
        self._nodes: Optional[List[XMLNode]] = None
        self._trace = trace

    # -- plan metadata ----------------------------------------------------------

    @property
    def query(self) -> str:
        """The query text answered."""
        return self._query

    @property
    def document_id(self) -> str:
        """Id of the document the query ran over."""
        return self._document_id

    @property
    def plan(self) -> TranslationResult:
        """The translation plan the answer was computed with (lazy)."""
        if self._plan is None:
            self._plan = self._plan_factory()
        return self._plan

    @property
    def backend(self) -> str:
        """Name of the backend that executed the plan."""
        return self._raw.backend

    @property
    def trace(self) -> Optional[obs.Span]:
        """The span tree recorded while answering (``None`` unless the
        engine was configured with ``observability=True``).

        The tree covers the whole path — plan-cache lookup, translation
        with its optimizer passes on a cold plan, prepare and execute —
        and serializes exactly via :meth:`repro.obs.Span.to_dict`.
        """
        return self._trace

    @property
    def stats(self) -> Mapping[str, float]:
        """Backend execution counters (at least ``rows``/``elapsed_seconds``)."""
        return self._raw.stats

    @property
    def rows(self) -> FrozenSet[Tuple[str, ...]]:
        """The normalized result rows (set semantics, values as strings)."""
        return self._raw.rows

    @property
    def row_count(self) -> int:
        """Number of distinct result rows."""
        return self._raw.row_count

    def node_ids(self) -> FrozenSet[str]:
        """The answer set: matched node ids (normalized to strings)."""
        return frozenset(self._raw.node_ids())

    # -- lazy node materialization ----------------------------------------------

    def nodes(self) -> List[XMLNode]:
        """The matching XML nodes in document order (materialized once)."""
        if self._nodes is None:
            self._nodes = self._shredded.nodes_for_ids(self._raw.node_ids())
        return self._nodes

    def values(self) -> List[Optional[str]]:
        """Text values of the matching nodes, in document order."""
        return [node.value for node in self.nodes()]

    def __iter__(self) -> Iterator[XMLNode]:
        return iter(self.nodes())

    def __len__(self) -> int:
        return len(self.nodes())

    def __bool__(self) -> bool:
        return self.row_count > 0

    def __repr__(self) -> str:
        return (
            f"QueryResult(query={self._query!r}, document={self._document_id!r}, "
            f"backend={self.backend!r}, rows={self.row_count})"
        )


class Session:
    """Registered documents under one engine; context-managed answering.

    Created with :meth:`Engine.open_session`; not constructed directly.
    The session shares its engine's translation-plan cache (translating a
    query in any session of an engine warms them all) and keeps each
    registered document's execution backend loaded for its lifetime.
    """

    def __init__(self, engine: "Engine", service: QueryService) -> None:
        self._engine = engine
        self._service = service
        self._closed = False

    # -- registry ---------------------------------------------------------------

    @property
    def engine(self) -> "Engine":
        """The engine this session answers under."""
        return self._engine

    @property
    def config(self) -> EngineConfig:
        """The engine configuration (shared with the engine, frozen)."""
        return self._engine.config

    def document_ids(self) -> List[str]:
        """Ids of this session's documents, in registration order."""
        return self._service.document_ids()

    def add_document(self, document_id: str, tree: XMLTree) -> None:
        """Shred and register one more document under ``document_id``."""
        self._check_open()
        self._service.register_document(document_id, tree)

    # -- answering --------------------------------------------------------------

    def answer(
        self, query: QueryLike, document_id: Optional[str] = None
    ) -> QueryResult:
        """Answer ``query`` over one document (the sole one by default).

        Returns a :class:`QueryResult`; iterate it for the matching nodes,
        read ``.plan``/``.stats`` for how the answer was computed, and —
        with ``observability=True`` in the config — ``.trace`` for the
        span tree of this very call.
        """
        self._check_open()
        store = self._service.store(document_id)
        trace_root: Optional[obs.Span] = None
        if self._engine.config.observability:
            obs.start_trace(
                "session.answer", query=str(query), document=store.document_id
            )
            try:
                raw = self._service.execute(query, store.document_id)
            finally:
                trace_root = obs.end_trace()
        else:
            raw = self._service.execute(query, store.document_id)
        # The factory binds the (stateless, plan-cache-backed) translator,
        # not the service, so a returned result stays fully usable after
        # the session closes.  A plan-cache hit when caching is on; with
        # caching off the translation only re-runs if the plan is read.
        translator = self._service.translator
        return QueryResult(
            query=str(query),
            document_id=store.document_id,
            plan_factory=lambda: translator.translate(query),
            raw=raw,
            shredded=store.shredded,
            trace=trace_root,
        )

    def answer_batch(
        self,
        queries: Sequence[QueryLike],
        document_id: Optional[str] = None,
        threads: int = 1,
    ) -> List[QueryResult]:
        """Answer many queries over one document, optionally on a thread pool.

        Results come back in input order regardless of ``threads``.
        """
        if threads < 1:
            raise ConfigError(f"threads must be >= 1, got {threads}")
        self._check_open()
        store = self._service.store(document_id)
        # With an outer trace active (e.g. the CLI's), pool workers adopt
        # the dispatching thread's span so per-query trees nest under it.
        parent = obs.current_span()

        def one(query: QueryLike) -> QueryResult:
            with obs.attach(parent):
                return self.answer(query, store.document_id)

        if threads == 1 or len(queries) <= 1:
            return [one(query) for query in queries]
        with ThreadPoolExecutor(max_workers=threads) as pool:
            return list(pool.map(one, queries))

    def stream(
        self, query: QueryLike, document_id: Optional[str] = None
    ) -> Iterator[XMLNode]:
        """Answer ``query`` and iterate the matching nodes in document order."""
        return iter(self.answer(query, document_id))

    def explain(self, query: QueryLike, timing: bool = False) -> str:
        """The engine's plan explanation for ``query`` (see :meth:`Engine.explain`)."""
        self._check_open()
        return self._engine.explain(query, timing=timing)

    def sql(self, query: QueryLike, dialect: Optional[SQLDialect] = None) -> str:
        """The SQL text ``query`` translates to (session's dialect by default)."""
        self._check_open()
        return self._engine.sql(query, dialect)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Release every document store's backend; idempotent."""
        if not self._closed:
            self._closed = True
            self._service.close()
            self._engine._forget_session(self)

    @property
    def closed(self) -> bool:
        """True once the session has been closed."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("session is closed")

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Session(documents={self.document_ids() if not self._closed else []}, "
            f"backend={self.config.backend!r}, {state})"
        )


class Engine:
    """A query engine: one DTD, one frozen config, shared plan cache.

    Build one with :meth:`from_dtd` (accepts a :class:`~repro.dtd.model.DTD`,
    a paper-sample name like ``"dept"``, or DTD grammar text), translate
    and inspect queries directly (:meth:`translate`, :meth:`sql`,
    :meth:`explain`), and open :class:`Session` objects over documents to
    answer them.  Engines are context managers; closing an engine closes
    every session it opened.

    Example
    -------
    >>> from repro.api import Engine
    >>> from repro.xmltree.generator import generate_document
    >>> engine = Engine.from_dtd("dept", optimize_level=2)
    >>> document = generate_document(engine.dtd, seed=1)
    >>> with engine.open_session(document) as session:
    ...     count = len(session.answer("dept//project"))
    """

    def __init__(self, dtd: DTD, config: Optional[EngineConfig] = None) -> None:
        self._dtd = dtd
        self._config = config or EngineConfig()
        self._plan_cache = (
            PlanCache(self._config.plan_cache_size)
            if self._config.plan_cache_size > 0
            else None
        )
        self._translator = XPathToSQLTranslator(
            dtd, plan_cache=self._plan_cache, config=self._config
        )
        self._sessions: List[Session] = []
        self._closed = False

    @classmethod
    def from_dtd(
        cls,
        source: Union[DTD, str],
        config: Optional[EngineConfig] = None,
        **knobs: object,
    ) -> "Engine":
        """Build an engine from a DTD object, a sample name or grammar text.

        ``config`` carries the engine knobs; any extra keyword arguments
        are applied on top via :meth:`EngineConfig.with_` (so
        ``Engine.from_dtd("dept", optimize_level=0)`` works without
        spelling out a config).
        """
        from repro.dtd import samples
        from repro.dtd.parser import parse_dtd

        resolved = (config or EngineConfig()).with_(**knobs) if knobs else (
            config or EngineConfig()
        )
        if isinstance(source, DTD):
            return cls(source, resolved)
        if not isinstance(source, str):
            raise ConfigError(
                f"from_dtd expects a DTD, a sample name or grammar text, "
                f"got {type(source).__name__}"
            )
        named = samples.paper_dtds()
        if source in named:
            return cls(named[source], resolved)
        # Only strings that can actually be grammar text fall through to
        # the parser; a bare word is a mistyped sample name and deserves a
        # name error, not a confusing grammar-syntax one.
        if "\n" not in source and "->" not in source:
            raise ConfigError(
                f"unknown sample DTD {source!r} "
                f"(known: {', '.join(sorted(named))}; "
                "pass a DTD object or grammar text otherwise)"
            )
        return cls(parse_dtd(source), resolved)

    # -- accessors --------------------------------------------------------------

    @property
    def dtd(self) -> DTD:
        """The DTD this engine translates and answers queries over."""
        return self._dtd

    @property
    def config(self) -> EngineConfig:
        """The engine's frozen configuration."""
        return self._config

    @property
    def plan_cache(self) -> Optional[PlanCache]:
        """The shared translation-plan cache (``None`` when disabled)."""
        return self._plan_cache

    # -- translation ------------------------------------------------------------

    def translate(self, query: QueryLike) -> TranslationResult:
        """Translate ``query`` (through the shared plan cache)."""
        self._check_open()
        return self._translator.translate(query)

    def sql(self, query: QueryLike, dialect: Optional[SQLDialect] = None) -> str:
        """The SQL text ``query`` translates to.

        ``dialect`` defaults to the config's resolved dialect (the
        backend's native one unless pinned); a config with
        ``emission="single"`` renders the whole program as one fused
        ``WITH [RECURSIVE]`` statement.
        """
        return self.translate(query).sql(
            dialect or self._config.resolved_dialect(),
            emission=self._config.emission,
        )

    def explain(self, query: QueryLike, timing: bool = False) -> str:
        """A human-readable plan summary: strategy, level, operator profile.

        With ``timing=True`` the query is additionally translated fresh
        (bypassing the plan cache) under a trace, and the summary ends
        with the per-phase span tree — where translation time actually
        went.

        On the ``sqlite`` backend the summary also includes SQLite's
        ``EXPLAIN QUERY PLAN`` of the whole query in its fused
        single-statement form — the one place the complete join/recursion
        plan is visible as one tree rather than per temp-table statements.
        """
        self._check_open()
        timing_root: Optional[obs.Span] = None
        if timing:
            obs.start_trace("explain", query=str(query))
            try:
                result = self._translator.translate_uncached(query)
            finally:
                timing_root = obs.end_trace()
        else:
            result = self.translate(query)
        profile = result.operator_profile()
        strategy = result.strategy.value if result.strategy else self._config.strategy.value
        lines = [
            f"query:     {query}",
            f"strategy:  {self._config.strategy.value}"
            + (f" -> {strategy}" if self._config.strategy.value != strategy else ""),
            f"optimizer: level {result.optimize_level}",
            f"dialect:   {self._config.resolved_dialect().value}",
            f"profile:   {profile.joins} joins, {profile.unions} unions, "
            f"{profile.lfps} LFPs, {profile.recursive_unions} SQL'99 recursions",
            "program:",
        ]
        lines.extend(f"  {line}" for line in str(result.program).splitlines())
        if self._config.backend == "sqlite":
            lines.append("sqlite plan (single statement):")
            lines.extend(f"  {line}" for line in self._sqlite_plan(result.program))
        if timing_root is not None:
            lines.append("timing:")
            lines.extend(
                f"  {line}" for line in obs.render_span_tree(timing_root).splitlines()
            )
        return "\n".join(lines)

    def _sqlite_plan(self, program) -> List[str]:
        """SQLite's ``EXPLAIN QUERY PLAN`` rows for the fused program.

        Runs against an empty database with this DTD's schema — plan
        shapes (scans, index use, recursion) are visible without any
        document loaded.
        """
        from repro.backends.sqlite import SqliteBackend
        from repro.errors import ExecutionError
        from repro.relational.database import Database
        from repro.shredding.inlining import SimpleMapping

        backend = SqliteBackend(Database(SimpleMapping(self._dtd).database_schema()))
        try:
            return backend.explain_single(program)
        except ExecutionError as exc:
            return [f"unavailable: {exc}"]
        finally:
            backend.close()

    # -- sessions ---------------------------------------------------------------

    def open_session(self, documents: DocumentsLike) -> Session:
        """Shred and register ``documents``; return a :class:`Session`.

        ``documents`` is one :class:`~repro.xmltree.tree.XMLTree` (id
        ``"doc"``), a mapping of id -> tree, or a sequence of trees (ids
        ``doc0``, ``doc1``, ...).
        """
        self._check_open()
        named = _named_documents(documents)
        service = QueryService(
            self._dtd, plan_cache=self._plan_cache, config=self._config
        )
        try:
            for document_id, tree in named:
                service.register_document(document_id, tree)
        except Exception:
            service.close()
            raise
        session = Session(self, service)
        self._sessions.append(session)
        return session

    def _forget_session(self, session: Session) -> None:
        if session in self._sessions:
            self._sessions.remove(session)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Close the engine and every session it opened; idempotent."""
        if not self._closed:
            self._closed = True
            for session in list(self._sessions):
                session.close()

    @property
    def closed(self) -> bool:
        """True once the engine has been closed."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("engine is closed")

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"sessions={len(self._sessions)}"
        return f"Engine(dtd={self._dtd.name!r}, config={self._config.describe()}, {state})"
