"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures on a reduced
dataset (see EXPERIMENTS.md for the scaling rationale and for how to run the
figure-scale sweeps from ``python -m repro.experiments.expN``).  Datasets are
built once per session and shared across benchmarks.
"""

from __future__ import annotations

import pytest

from repro.dtd import samples
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document

# Benchmark dataset sizes (elements); deliberately small so the whole
# benchmark suite runs in minutes on the pure-Python engine.
CROSS_ELEMENTS = 3000
BIOML_ELEMENTS = 3000
GEDML_ELEMENTS = 2500


@pytest.fixture(scope="session")
def cross_dataset():
    """Cross-cycle DTD dataset used by the Fig. 12/13/14 benchmarks."""
    dtd = samples.cross_dtd()
    tree = generate_document(dtd, x_l=12, x_r=4, seed=11, max_elements=CROSS_ELEMENTS,
                             distinct_values=20)
    return dtd, tree, shred_document(tree, dtd)


@pytest.fixture(scope="session")
def bioml_dataset():
    """4-cycle BIOML dataset used by the Fig. 16 benchmarks."""
    dtd = samples.bioml_dtd()
    tree = generate_document(dtd, x_l=12, x_r=4, seed=31, max_elements=BIOML_ELEMENTS)
    return dtd, tree, shred_document(tree, dtd)


@pytest.fixture(scope="session")
def gedml_dataset():
    """9-cycle GedML dataset used by the Fig. 17 benchmarks."""
    dtd = samples.gedml_dtd()
    tree = generate_document(dtd, x_l=10, x_r=4, seed=37, max_elements=GEDML_ELEMENTS)
    return dtd, tree, shred_document(tree, dtd)
