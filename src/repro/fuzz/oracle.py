"""The cross-engine differential oracle.

For one :class:`~repro.fuzz.cases.FuzzCase` the oracle computes the answer
set of the query on every configured *engine* and compares each against the
reference — the direct XPath evaluator over the XML tree, which implements
the paper's ``Q(T)`` semantics directly.  An engine is one point on the
(backend × descendant strategy × optimisation) grid:

* ``memory`` engines run the translated program on the in-memory
  relational engine, under CycleEX, CycleE or SQLGen-R, each with the
  optimisations off (``baseline``) or fully on (selection pushing +
  small seeds, ``opt``);
* ``sqlite`` engines render the same programs in the SQLITE dialect and
  run them for real (``WITH RECURSIVE`` and all).

Every engine must produce exactly the evaluator's node set — any missing
or extra node id (or an engine crash) is a disagreement, and the case is a
bug repro.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro import obs
from repro.api.config import EngineConfig
from repro.backends import create_backend
from repro.relational.columnar import DEFAULT_EXECUTOR
from repro.core.expath_to_sql import TranslationOptions
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.fuzz.cases import FuzzCase
from repro.shredding.shredder import shred_document
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath

__all__ = [
    "EngineSpec",
    "EngineDisagreement",
    "CaseOutcome",
    "DifferentialOracle",
    "default_engines",
]

REFERENCE_ENGINE = "evaluator"


class EngineSpec:
    """One engine of the oracle — a thin, named view over :class:`EngineConfig`.

    Historically this dataclass carried its own copy of the engine knobs;
    it is now a wrapper so that a knob added to
    :class:`~repro.api.EngineConfig` is automatically part of the fuzz grid
    identity, serialization and program-sharing key with no oracle change.
    The legacy constructor shape (``backend``, ``strategy``, ``optimized``,
    ``optimize_level``) still works: ``optimized`` maps onto the config's
    lowering options (``True`` = small seeds + pushed selections, the
    Sect. 5.2 "opt" setting; ``False`` = the full-seed baseline), and
    ``optimize_level`` is the *program-optimizer* level (PR 4's pass
    pipeline; ``None`` means the pipeline default).
    """

    __slots__ = ("_config",)

    def __init__(
        self,
        backend: Optional[str] = None,
        strategy: Optional[DescendantStrategy] = None,
        optimized: bool = True,
        optimize_level: Optional[int] = None,
        executor: Optional[str] = None,
        emission: Optional[str] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        if config is None:
            if backend is None or strategy is None:
                raise ValueError("EngineSpec needs backend+strategy or config=")
            config = EngineConfig(
                backend=backend,
                strategy=strategy,
                optimize_level=optimize_level,
                executor=DEFAULT_EXECUTOR if executor is None else executor,
                emission="multi" if emission is None else emission,
                use_small_seed=bool(optimized),
                push_selections=bool(optimized),
            )
        elif (
            backend is not None
            or strategy is not None
            or executor is not None
            or emission is not None
        ):
            raise ValueError("pass either config= or backend/strategy, not both")
        object.__setattr__(self, "_config", config)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("EngineSpec is immutable")

    @property
    def config(self) -> EngineConfig:
        """The full engine configuration this spec denotes."""
        return self._config

    @property
    def backend(self) -> str:
        """Execution-backend name."""
        return self._config.backend

    @property
    def strategy(self) -> DescendantStrategy:
        """Descendant-axis expansion strategy."""
        return self._config.strategy

    @property
    def optimized(self) -> bool:
        """True when the Sect. 5.2 lowering optimisations are on."""
        return self._config.push_selections

    @property
    def optimize_level(self) -> Optional[int]:
        """Pinned program-optimizer level (``None`` = pipeline default)."""
        return self._config.optimize_level

    @property
    def executor(self) -> str:
        """The in-memory executor this engine runs on."""
        return self._config.executor

    @property
    def emission(self) -> str:
        """The SQL statement shape (``multi`` or ``single``)."""
        return self._config.emission

    @property
    def name(self) -> str:
        """Display name, e.g. ``memory/cycleex/opt`` or ``memory/auto/opt/O0``.

        A non-default executor or emission shows up as a trailing segment
        (``memory/cycleex/opt/tuple``, ``sqlite/interval/opt/single``), so
        the historical grid names are unchanged.
        """
        level = "opt" if self.optimized else "baseline"
        suffix = "" if self.optimize_level is None else f"/O{self.optimize_level}"
        if self.executor != DEFAULT_EXECUTOR:
            suffix += f"/{self.executor}"
        if self.emission != "multi":
            suffix += f"/{self.emission}"
        return f"{self.backend}/{self.strategy.value}/{level}{suffix}"

    def options(self) -> TranslationOptions:
        """The lowering options this engine translates with."""
        return self._config.translation_options()

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (exactly the underlying config's)."""
        return self._config.to_dict()

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EngineSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(config=EngineConfig.from_dict(data))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EngineSpec) and self._config == other._config

    def __hash__(self) -> int:
        return hash(self._config)

    def __repr__(self) -> str:
        return f"EngineSpec(config={self._config!r})"


def default_engines(
    backends: Optional[Sequence[str]] = None,
    strategies: Optional[Sequence[DescendantStrategy]] = None,
    optimize_level: Optional[int] = None,
) -> List[EngineSpec]:
    """The default grid: memory × strategies × {baseline, opt}, plus SQLite.

    Every concrete strategy plus ``auto`` takes part, so the per-query
    strategy selector is fuzzed alongside the strategies it chooses from.
    The memory engines run on the (default) columnar executor; each
    strategy's ``opt`` point additionally runs on the tuple executor
    (``.../opt/tuple``), so the two in-memory engines differentially check
    each other on every case.  SQLite runs each strategy twice (optimised):
    once with the default per-statement emission and once with the whole
    program fused into a single ``WITH [RECURSIVE]`` statement
    (``.../opt/single``) — the dialect rendering, real ``WITH RECURSIVE``
    execution and the statement fuser are what it adds; the
    lowering-optimisation axis is already covered in memory.
    ``optimize_level`` pins the program-optimizer level of every engine
    (default: the pipeline default); the memory/cycleex pair additionally
    always runs at level 0, so optimizer rewrites are differentially
    checked against raw lowering output in every sweep.
    """
    backends = list(backends or ("memory", "sqlite"))
    strategies = list(strategies or DescendantStrategy)
    engines: List[EngineSpec] = []
    if "memory" in backends:
        for strategy in strategies:
            engines.append(
                EngineSpec("memory", strategy, optimized=False, optimize_level=optimize_level)
            )
            engines.append(
                EngineSpec("memory", strategy, optimized=True, optimize_level=optimize_level)
            )
            # The tuple-executor oracle arm: same plans, row-at-a-time
            # engine, so executor rewrites are cross-checked everywhere.
            engines.append(
                EngineSpec(
                    "memory",
                    strategy,
                    optimized=True,
                    optimize_level=optimize_level,
                    executor="tuple",
                )
            )
        if optimize_level != 0:
            # The unoptimized-program sentinel: raw lowering output.
            engines.append(
                EngineSpec(
                    "memory", DescendantStrategy.CYCLEEX, optimized=True, optimize_level=0
                )
            )
    for backend in backends:
        if backend == "memory":
            continue
        for strategy in strategies:
            engines.append(
                EngineSpec(backend, strategy, optimized=True, optimize_level=optimize_level)
            )
            if backend == "sqlite":
                # The single-statement oracle arm: same program, fused into
                # one WITH [RECURSIVE] statement, so the statement fuser is
                # cross-checked on every case.
                engines.append(
                    EngineSpec(
                        backend,
                        strategy,
                        optimized=True,
                        optimize_level=optimize_level,
                        emission="single",
                    )
                )
    return engines


@dataclass(frozen=True)
class EngineDisagreement:
    """One engine's deviation from the reference answer set."""

    engine: str
    missing: Tuple[int, ...] = ()
    extra: Tuple[int, ...] = ()
    error: Optional[str] = None

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.error is not None:
            return f"{self.engine}: ERROR {self.error}"
        return (
            f"{self.engine}: missing={list(self.missing)[:5]} "
            f"extra={list(self.extra)[:5]}"
        )


@dataclass
class CaseOutcome:
    """The oracle's verdict on one case."""

    case: FuzzCase
    expected: FrozenSet[int] = frozenset()
    engine_results: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    disagreements: List[EngineDisagreement] = field(default_factory=list)
    setup_error: Optional[str] = None
    # Wall seconds each engine spent on this case (translate — paid by the
    # first engine of a shared translation signature — plus execute).
    engine_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every engine matched the evaluator."""
        return not self.disagreements and self.setup_error is None

    def describe(self) -> str:
        """Multi-line summary naming every disagreeing engine."""
        if self.ok:
            return f"OK       {self.case.label}: {len(self.expected)} answer node(s)"
        lines = [f"MISMATCH {self.case.label}: query {self.case.query!r}"]
        if self.setup_error is not None:
            lines.append(f"  setup: ERROR {self.setup_error}")
        lines.extend(f"  {d.describe()}" for d in self.disagreements)
        return "\n".join(lines)


class DifferentialOracle:
    """Run cases through every engine and compare against the evaluator.

    Example
    -------
    >>> from repro.fuzz.cases import FuzzCase
    >>> from repro.dtd.samples import cross_dtd
    >>> case = FuzzCase("demo", cross_dtd().to_text(), "a//d")
    >>> DifferentialOracle().run(case).ok
    True
    """

    def __init__(self, engines: Optional[Sequence[EngineSpec]] = None) -> None:
        self._engines = list(engines or default_engines())

    @property
    def engines(self) -> List[EngineSpec]:
        """The engine grid this oracle compares."""
        return list(self._engines)

    def run(self, case: FuzzCase) -> CaseOutcome:
        """Answer ``case`` on every engine; collect disagreements."""
        outcome = CaseOutcome(case=case)
        if case.mutations:
            # Silently answering only the base document would report
            # "agree" without exercising the script the case exists for.
            outcome.setup_error = (
                "case carries a mutation script; replay it with the mutation "
                "oracle (repro fuzz --mutations --replay ...)"
            )
            return outcome
        try:
            dtd = case.dtd()
            tree = case.tree()
            query = parse_xpath(case.query)
            outcome.expected = frozenset(
                node.node_id for node in evaluate_xpath(tree, query)
            )
            shredded = shred_document(tree, dtd)
        except Exception:
            outcome.setup_error = traceback.format_exc(limit=3).strip()
            return outcome

        backends: Dict[Tuple[str, str], object] = {}
        # Engines whose configs share a translation signature run the very
        # same program (e.g. memory/opt and sqlite/opt), so translate each
        # point once.
        programs: Dict[Tuple[object, ...], object] = {}
        try:
            for engine in self._engines:
                timer = obs.Timer()
                try:
                    with timer:
                        backend_key = (engine.backend, engine.executor, engine.emission)
                        backend = backends.get(backend_key)
                        if backend is None:
                            backend = create_backend(engine.config, shredded.database)
                            backends[backend_key] = backend
                        program_key = engine.config.translation_signature()
                        program = programs.get(program_key)
                        if program is None:
                            translator = XPathToSQLTranslator(dtd, config=engine.config)
                            program = translator.translate(query).program
                            programs[program_key] = program
                        result = backend.execute(program)  # type: ignore[attr-defined]
                        actual = frozenset(
                            node.node_id
                            for node in shredded.nodes_for_ids(result.node_ids())
                        )
                except Exception:
                    outcome.engine_seconds[engine.name] = timer.seconds
                    outcome.disagreements.append(
                        EngineDisagreement(
                            engine=engine.name,
                            error=traceback.format_exc(limit=3).strip(),
                        )
                    )
                    continue
                outcome.engine_seconds[engine.name] = timer.seconds
                outcome.engine_results[engine.name] = actual
                if actual != outcome.expected:
                    outcome.disagreements.append(
                        EngineDisagreement(
                            engine=engine.name,
                            missing=tuple(sorted(outcome.expected - actual)),
                            extra=tuple(sorted(actual - outcome.expected)),
                        )
                    )
        finally:
            for backend in backends.values():
                backend.close()  # type: ignore[attr-defined]
        return outcome
