"""Cache-policy tests: LRU eviction, fingerprint invalidation, counters."""

from __future__ import annotations

import threading

import pytest

from repro.core.expath_to_sql import TranslationOptions
from repro.core.optimize import push_selection_options, standard_options
from repro.core.plancache import (
    CacheInfo,
    PlanCache,
    PlanKey,
    dtd_fingerprint,
    options_fingerprint,
    plan_key,
)
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd import samples
from repro.dtd.parser import parse_dtd
from repro.relational.sqlgen import SQLDialect


def _key(tag: str) -> PlanKey:
    return PlanKey(
        dtd="fp", query=tag, strategy="cycleex", options="o", dialect="generic",
        mapping="m",
    )


class TestLRUPolicy:
    def test_eviction_at_capacity_drops_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put(_key("q1"), "p1")
        cache.put(_key("q2"), "p2")
        assert cache.get(_key("q1")) == "p1"  # q1 is now most recently used
        cache.put(_key("q3"), "p3")  # evicts q2, not q1
        assert cache.get(_key("q1")) == "p1"
        assert cache.get(_key("q2")) is None
        assert cache.get(_key("q3")) == "p3"
        assert cache.cache_info().evictions == 1

    def test_put_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put(_key("q1"), "p1")
        cache.put(_key("q2"), "p2")
        cache.put(_key("q1"), "p1b")  # refresh, not insert
        cache.put(_key("q3"), "p3")  # evicts q2
        assert cache.get(_key("q1")) == "p1b"
        assert cache.get(_key("q2")) is None

    def test_zero_capacity_never_retains(self):
        cache = PlanCache(capacity=0)
        cache.put(_key("q1"), "p1")
        assert cache.get(_key("q1")) is None
        assert len(cache) == 0
        info = cache.cache_info()
        assert info.misses == 1 and info.hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            PlanCache(capacity=-1)

    def test_clear_resets_entries_and_counters(self):
        cache = PlanCache(capacity=4)
        cache.put(_key("q1"), "p1")
        cache.get(_key("q1"))
        cache.get(_key("nope"))
        cache.clear()
        assert len(cache) == 0
        assert cache.cache_info() == CacheInfo(
            hits=0, misses=0, evictions=0, size=0, capacity=4
        )


class TestCounters:
    def test_hit_and_miss_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.get(_key("q")) is None  # miss
        cache.put(_key("q"), "plan")
        assert cache.get(_key("q")) == "plan"  # hit
        assert cache.get(_key("q")) == "plan"  # hit
        info = cache.cache_info()
        assert (info.hits, info.misses, info.size) == (2, 1, 1)
        assert info.hit_rate == pytest.approx(2 / 3)

    def test_get_or_create_counts_one_miss_then_hits(self):
        cache = PlanCache(capacity=4)
        calls = []
        factory = lambda: calls.append(1) or "plan"
        assert cache.get_or_create(_key("q"), factory) == "plan"
        assert cache.get_or_create(_key("q"), factory) == "plan"
        assert len(calls) == 1
        info = cache.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_concurrent_misses_on_one_key_run_factory_once(self):
        # Regression: get_or_create used to run the factory outside the lock,
        # so N threads missing the same key each paid the (expensive)
        # translation and the later puts silently discarded duplicates.
        # Single-flight: one leader runs the factory, the rest wait for it.
        threads_n = 8
        cache = PlanCache(capacity=4)
        barrier = threading.Barrier(threads_n)
        release = threading.Event()
        calls = []
        results = []
        errors = []

        def factory():
            calls.append(threading.get_ident())
            release.wait(timeout=5)  # hold every concurrent caller in-flight
            return "plan"

        def worker():
            try:
                barrier.wait()
                results.append(cache.get_or_create(_key("q"), factory))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=worker) for _ in range(threads_n)]
        for thread in pool:
            thread.start()
        while not calls:  # leader is inside the factory; followers must wait
            pass
        release.set()
        for thread in pool:
            thread.join()
        assert not errors
        assert len(calls) == 1, "factory must run exactly once per key"
        assert results == ["plan"] * threads_n
        info = cache.cache_info()
        assert info.misses == 1
        assert info.hits == threads_n - 1

    def test_factory_error_propagates_to_all_waiters_and_is_not_cached(self):
        threads_n = 4
        cache = PlanCache(capacity=4)
        barrier = threading.Barrier(threads_n)
        calls = []
        errors = []

        def failing_factory():
            calls.append(1)
            raise RuntimeError("translation failed")

        def worker():
            barrier.wait()
            try:
                cache.get_or_create(_key("bad"), failing_factory)
            except RuntimeError as exc:
                errors.append(exc)

        pool = [threading.Thread(target=worker) for _ in range(threads_n)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        # Every caller saw the failure (leader's raise or a re-raise), and
        # nothing was cached, so a later call retries the factory.
        assert len(errors) == threads_n
        assert _key("bad") not in cache
        assert cache.get_or_create(_key("bad2"), lambda: "ok") == "ok"

    def test_distinct_keys_do_not_serialize_each_other(self):
        # Single-flight is per-key: a slow factory on one key must not block
        # a concurrent miss on a different key.
        cache = PlanCache(capacity=4)
        slow_started = threading.Event()
        slow_release = threading.Event()
        done = []

        def slow_factory():
            slow_started.set()
            slow_release.wait(timeout=5)
            return "slow"

        slow = threading.Thread(
            target=lambda: done.append(cache.get_or_create(_key("slow"), slow_factory))
        )
        slow.start()
        assert slow_started.wait(timeout=5)
        # While 'slow' is in flight, an unrelated key completes immediately.
        assert cache.get_or_create(_key("fast"), lambda: "fast") == "fast"
        slow_release.set()
        slow.join()
        assert done == ["slow"]

    def test_thread_safety_smoke(self):
        cache = PlanCache(capacity=8)
        errors = []

        def worker(tag):
            try:
                for i in range(200):
                    cache.get_or_create(_key(f"{tag}-{i % 12}"), lambda: i)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8

    def test_cache_info_consistent_under_concurrent_access(self):
        # 8 threads, each issuing a known mix of hits and misses against a
        # no-eviction cache: afterwards cache_info() must account for every
        # single lookup (no lost counter updates, no double counts).
        threads_n, lookups = 8, 500
        cache = PlanCache(capacity=threads_n * lookups)
        hot = _key("hot")
        cache.put(hot, "plan")
        barrier = threading.Barrier(threads_n)
        errors = []

        def worker(tag):
            try:
                barrier.wait()
                for i in range(lookups):
                    if i % 2:  # every odd lookup hits the shared hot entry
                        assert cache.get(hot) == "plan"
                    else:  # every even lookup misses a thread-unique key
                        assert cache.get(_key(f"cold-{tag}-{i}")) is None
                    # cache_info() snapshots mid-race must stay coherent.
                    info = cache.cache_info()
                    assert 0 <= info.hits <= threads_n * lookups
                    assert 0 <= info.misses <= threads_n * lookups
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=worker, args=(t,)) for t in range(threads_n)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors
        info = cache.cache_info()
        assert info.hits == threads_n * (lookups // 2)
        assert info.misses == threads_n * (lookups - lookups // 2)
        assert info.evictions == 0
        assert info.hit_rate == info.hits / (info.hits + info.misses)


class TestFingerprints:
    def test_dtd_fingerprint_is_content_based(self):
        assert dtd_fingerprint(samples.cross_dtd()) == dtd_fingerprint(
            samples.cross_dtd()
        )
        assert dtd_fingerprint(samples.cross_dtd()) != dtd_fingerprint(
            samples.dept_dtd()
        )

    def test_edited_dtd_changes_fingerprint(self):
        base = parse_dtd("root a\na -> b*\nb -> EMPTY #text\n", name="tiny")
        edited = parse_dtd(
            "root a\na -> b*\nb -> c*\nc -> EMPTY #text\n", name="tiny"
        )
        assert dtd_fingerprint(base) != dtd_fingerprint(edited)

    def test_options_fingerprint_distinguishes_settings(self):
        assert options_fingerprint(standard_options()) != options_fingerprint(
            push_selection_options()
        )
        assert options_fingerprint(TranslationOptions()) == options_fingerprint(
            TranslationOptions()
        )

    def test_plan_key_separates_every_axis(self):
        from repro.shredding.inlining import SimpleMapping

        dtd = samples.cross_dtd()
        base = plan_key(dtd, "a//d")
        assert plan_key(dtd, "a//d") == base
        assert plan_key(dtd, "a//c") != base
        assert plan_key(samples.dept_dtd(), "a//d") != base
        assert plan_key(dtd, "a//d", strategy=DescendantStrategy.CYCLEE) != base
        assert plan_key(dtd, "a//d", options=push_selection_options()) != base
        assert plan_key(dtd, "a//d", dialect=SQLDialect.SQLITE) != base
        assert plan_key(dtd, "a//d", mapping=SimpleMapping(dtd, prefix="S_")) != base

    def test_translators_with_different_mappings_never_alias(self):
        """Programs lowered against differently-named relations must not be
        served to each other from a shared cache."""
        from repro.shredding.inlining import SimpleMapping

        dtd = samples.cross_dtd()
        cache = PlanCache(capacity=8)
        default = XPathToSQLTranslator(dtd, plan_cache=cache)
        renamed = XPathToSQLTranslator(
            dtd, mapping=SimpleMapping(dtd, prefix="S_"), plan_cache=cache
        )
        assert default.plan_key("a//d") != renamed.plan_key("a//d")
        default.translate("a//d")
        program = renamed.translate("a//d").program
        # The renamed translator got its own plan, over its own relations.
        assert any("S_" in str(statement) for statement in program.assignments)


class TestTranslatorCacheHook:
    def test_translator_reuses_cached_plans(self):
        cache = PlanCache(capacity=8)
        translator = XPathToSQLTranslator(samples.cross_dtd(), plan_cache=cache)
        first = translator.translate("a//d")
        second = translator.translate("a//d")
        assert second is first  # the very same TranslationResult object
        info = cache.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_whitespace_variants_share_one_entry(self):
        cache = PlanCache(capacity=8)
        translator = XPathToSQLTranslator(samples.cross_dtd(), plan_cache=cache)
        # The key is the canonical rendering of the parsed path.
        assert translator.plan_key("a //d") == translator.plan_key("a//d")

    def test_different_dtds_never_alias_in_a_shared_cache(self):
        cache = PlanCache(capacity=8)
        cross = XPathToSQLTranslator(samples.cross_dtd(), plan_cache=cache)
        dept = XPathToSQLTranslator(samples.dept_dtd(), plan_cache=cache)
        cross.translate("a//d")
        # dept has no 'a' type: translating the same text must not hit the
        # cross entry (it would if keys ignored the DTD fingerprint).
        assert dept.plan_key("a//d") != cross.plan_key("a//d")

    def test_uncached_translator_unaffected(self):
        translator = XPathToSQLTranslator(samples.cross_dtd())
        assert translator.plan_cache is None
        first = translator.translate("a//d")
        second = translator.translate("a//d")
        assert first is not second
        assert first.program.result == second.program.result
