"""Unit tests for the DTD text parsers."""

import pytest

from repro.dtd.model import Choice, Empty, Optional, Plus, Sequence, Star, TypeRef
from repro.dtd.parser import parse_content_model, parse_dtd, parse_element_decls
from repro.errors import DTDParseError


class TestContentModelParser:
    def test_single_ref(self):
        assert parse_content_model("course") == TypeRef("course")

    def test_empty_keyword(self):
        assert parse_content_model("EMPTY") == Empty()
        assert parse_content_model("") == Empty()

    def test_sequence(self):
        model = parse_content_model("cno, title, prereq")
        assert isinstance(model, Sequence)
        assert [str(p) for p in model.parts] == ["cno", "title", "prereq"]

    def test_choice(self):
        model = parse_content_model("a | b | c")
        assert isinstance(model, Choice)
        assert len(model.parts) == 3

    def test_star_plus_optional(self):
        assert parse_content_model("a*") == Star(TypeRef("a"))
        assert parse_content_model("a+") == Plus(TypeRef("a"))
        assert parse_content_model("a?") == Optional(TypeRef("a"))

    def test_nested_groups(self):
        model = parse_content_model("(a | b)*, c")
        assert isinstance(model, Sequence)
        assert isinstance(model.parts[0], Star)
        assert isinstance(model.parts[0].inner, Choice)

    def test_missing_paren_rejected(self):
        with pytest.raises(DTDParseError):
            parse_content_model("(a | b")

    def test_trailing_junk_rejected(self):
        with pytest.raises(DTDParseError):
            parse_content_model("a b")


class TestGrammarSyntax:
    DEPT_TEXT = """
    root dept
    dept   -> course*
    course -> cno, title, prereq, takenBy, project*
    prereq -> course*
    takenBy -> student*
    student -> sno, name, qualified
    qualified -> course*
    project -> pno, ptitle, required
    required -> course*
    cno -> EMPTY #text
    title -> EMPTY #text
    """

    def test_parse_dept_like_dtd(self):
        dtd = parse_dtd(self.DEPT_TEXT, name="dept")
        assert dtd.root == "dept"
        assert "course" in dtd
        assert dtd.is_recursive()
        assert "cno" in dtd.text_types
        assert "sno" not in dtd.text_types  # not marked #text in this snippet

    def test_undeclared_leaves_become_empty(self):
        dtd = parse_dtd("root r\nr -> a, b*")
        assert dtd.children("a") == []
        assert dtd.children("b") == []

    def test_missing_root_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd("a -> b")

    def test_duplicate_root_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd("root a\nroot b\na -> b")

    def test_duplicate_production_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd("root a\na -> b\na -> c")

    def test_bad_line_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd("root a\nthis is not a production")

    def test_comment_lines_ignored(self):
        dtd = parse_dtd("# a comment\nroot a\na -> b*\n# another\n")
        assert dtd.root == "a"


class TestElementDeclSyntax:
    BIOML_LIKE = """
    <!ELEMENT gene (dna*)>
    <!ELEMENT dna (gene*, clone*)>
    <!ELEMENT clone (dna*, locus*)>
    <!ELEMENT locus (#PCDATA)>
    """

    def test_parse_element_decls(self):
        dtd = parse_element_decls(self.BIOML_LIKE, name="bioml-like")
        assert dtd.root == "gene"
        assert dtd.is_recursive()
        assert "locus" in dtd.text_types

    def test_explicit_root(self):
        dtd = parse_element_decls(self.BIOML_LIKE, root="dna")
        assert dtd.root == "dna"

    def test_unknown_root_rejected(self):
        with pytest.raises(DTDParseError):
            parse_element_decls(self.BIOML_LIKE, root="nope")

    def test_no_declarations_rejected(self):
        with pytest.raises(DTDParseError):
            parse_element_decls("<!ATTLIST a b CDATA #IMPLIED>")

    def test_empty_and_any_content(self):
        dtd = parse_element_decls("<!ELEMENT a (b)>\n<!ELEMENT b EMPTY>")
        assert dtd.children("b") == []
