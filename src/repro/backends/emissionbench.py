"""The emission benchmark: single-statement fusion and the interval strategy.

One harness feeds both ``repro bench-emission`` and
``benchmarks/test_bench_emission.py`` (which writes the repo's perf
baseline ``BENCH_7.json``), so the CLI smoke run in CI and the asserted
benchmark measure exactly the same scenarios:

``round_trip``
    Multi-statement vs single-statement emission on SQLite, warm-plan
    steady state: every paper workload query executes once per emission per
    repeat on a real SQLite connection.  ``statements`` records how many
    statements each emission sends per query — ``multi`` pays one
    ``CREATE TEMP TABLE`` round trip per program assignment, ``single``
    always sends exactly one fused ``WITH [RECURSIVE]`` statement — and
    ``statement_reduction`` is the headline multi/single ratio.

``interval``
    The descendant-strategy head-to-head on the recursive workloads (cross
    and gedml — the DTDs whose ``//`` steps need recursion): CycleEX,
    CycleE and the interval range-join strategy each run the workload's
    recursive queries on SQLite.  The interval strategy replaces fixpoint
    unfolding with one range-predicate join over the ``DOC_ORDER``
    pre/post/size table, so its program shape (and plan) is structurally
    different; the scenario records per-strategy seconds and the interval
    speedups against both baselines.

Every scenario cross-checks node-for-node that all compared configurations
returned identical answers (``results_match``) — a benchmark that got
faster by being wrong must fail loudly.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, FrozenSet, List, Optional

import json

from repro.api.config import EngineConfig
from repro.backends import create_backend
from repro.core.pipeline import XPathToSQLTranslator
from repro.relational.sqlgen import EMISSION_MODES, SQLDialect, program_statements
from repro.service.bench import ServiceBenchConfig, _workloads
from repro.shredding.shredder import shred_document

__all__ = [
    "EmissionBenchConfig",
    "describe_report",
    "run_emission_benchmark",
    "write_report",
]

BENCH_NAME = "single-statement-emission"
BENCH_ISSUE = 7

# The strategies of the head-to-head scenario; interval is the challenger.
_HEAD_TO_HEAD = ("cycleex", "cyclee", "interval")
# The recursive workloads (''//'' over a cyclic DTD region) — the only ones
# where the descendant strategies produce different programs.
_RECURSIVE_WORKLOADS = ("cross", "gedml")


@dataclass(frozen=True)
class EmissionBenchConfig:
    """Knobs of one benchmark run (the defaults are the committed baseline)."""

    elements: int = 1200
    repeats: int = 5
    seed: int = 11

    @classmethod
    def quick(cls) -> "EmissionBenchConfig":
        """A tiny-budget configuration for CI smoke runs."""
        return cls(elements=300, repeats=2)

    def _service_config(self) -> ServiceBenchConfig:
        """The BENCH_3 workload shapes this benchmark reuses."""
        return ServiceBenchConfig(elements=self.elements, seed=self.seed)


def _answer_ids(backend, program) -> FrozenSet[object]:
    return frozenset(backend.execute(program).node_ids())


def _bench_round_trip(config: EmissionBenchConfig) -> Dict[str, object]:
    """Multi vs single emission on SQLite, per workload."""
    workloads: Dict[str, object] = {}
    for label, dtd, queries, tree in _workloads(config._service_config()):
        shredded = shred_document(tree, dtd)
        translator = XPathToSQLTranslator(
            dtd, config=EngineConfig(backend="sqlite")
        )
        programs = {
            name: translator.translate(query).program
            for name, query in queries.items()
        }
        statements = {
            "multi": sum(
                len(program_statements(program, SQLDialect.SQLITE))
                for program in programs.values()
            ),
            "single": len(programs),  # one fused statement per query
        }
        seconds: Dict[str, float] = {}
        answers: Dict[str, Dict[str, FrozenSet[object]]] = {}
        for emission in EMISSION_MODES:
            backend = create_backend(
                EngineConfig(backend="sqlite", emission=emission),
                shredded.database,
            )
            try:
                # Warm pass records answers for the match check.
                answers[emission] = {
                    name: _answer_ids(backend, program)
                    for name, program in programs.items()
                }
                start = time.perf_counter()
                for _ in range(config.repeats):
                    for program in programs.values():
                        backend.execute(program)
                seconds[emission] = time.perf_counter() - start
            finally:
                backend.close()
        workloads[label] = {
            "queries": len(queries),
            "calls": len(queries) * config.repeats,
            "multi_statements": statements["multi"],
            "single_statements": statements["single"],
            "statement_reduction": (
                statements["multi"] / statements["single"]
                if statements["single"]
                else 0.0
            ),
            "multi_seconds": seconds["multi"],
            "single_seconds": seconds["single"],
            "speedup": (
                seconds["multi"] / seconds["single"] if seconds["single"] else 0.0
            ),
            "results_match": answers["multi"] == answers["single"],
        }
    return {
        "workloads": workloads,
        "results_match": all(w["results_match"] for w in workloads.values()),
    }


def _bench_interval(config: EmissionBenchConfig) -> Dict[str, object]:
    """Interval vs CycleEX/CycleE on the recursive workloads, on SQLite."""
    workloads: Dict[str, object] = {}
    for label, dtd, queries, tree in _workloads(config._service_config()):
        if label not in _RECURSIVE_WORKLOADS:
            continue
        recursive = {
            name: query for name, query in queries.items() if "//" in query
        }
        if not recursive:
            continue
        shredded = shred_document(tree, dtd)
        seconds: Dict[str, float] = {}
        answers: Dict[str, Dict[str, FrozenSet[object]]] = {}
        for strategy in _HEAD_TO_HEAD:
            engine_config = EngineConfig(backend="sqlite", strategy=strategy)
            translator = XPathToSQLTranslator(dtd, config=engine_config)
            programs = {
                name: translator.translate(query).program
                for name, query in recursive.items()
            }
            backend = create_backend(engine_config, shredded.database)
            try:
                answers[strategy] = {
                    name: _answer_ids(backend, program)
                    for name, program in programs.items()
                }
                start = time.perf_counter()
                for _ in range(config.repeats):
                    for program in programs.values():
                        backend.execute(program)
                seconds[strategy] = time.perf_counter() - start
            finally:
                backend.close()
        interval_seconds = seconds["interval"]
        workloads[label] = {
            "queries": len(recursive),
            "calls": len(recursive) * config.repeats,
            "seconds": seconds,
            "speedup_vs_cycleex": (
                seconds["cycleex"] / interval_seconds if interval_seconds else 0.0
            ),
            "speedup_vs_cyclee": (
                seconds["cyclee"] / interval_seconds if interval_seconds else 0.0
            ),
            "results_match": all(
                answers[strategy] == answers["cycleex"]
                for strategy in _HEAD_TO_HEAD
            ),
        }
    return {
        "workloads": workloads,
        "results_match": all(w["results_match"] for w in workloads.values()),
    }


def run_emission_benchmark(
    config: Optional[EmissionBenchConfig] = None,
) -> Dict[str, object]:
    """Run every scenario and return the (JSON-serializable) report."""
    config = config or EmissionBenchConfig()
    report: Dict[str, object] = {
        "bench": BENCH_NAME,
        "issue": BENCH_ISSUE,
        "created_unix": int(time.time()),
        "config": asdict(config),
        "scenarios": {
            "round_trip": _bench_round_trip(config),
            "interval": _bench_interval(config),
        },
    }
    scenarios = report["scenarios"]
    report["ok"] = bool(
        scenarios["round_trip"]["results_match"]
        and scenarios["interval"]["results_match"]
    )
    return report


def write_report(report: Dict[str, object], path: str) -> None:
    """Write a report as pretty-printed JSON (the ``BENCH_7.json`` format)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def describe_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a report (the CLI output)."""
    scenarios = report["scenarios"]
    round_trip = scenarios["round_trip"]
    interval = scenarios["interval"]
    lines: List[str] = [
        f"emission benchmark ({report['bench']}, "
        f"{report['config']['elements']} elements, "
        f"{report['config']['repeats']} warm passes)"
    ]
    for label, entry in round_trip["workloads"].items():
        lines.append(
            f"  round trip [{label}]: {entry['multi_statements']} stmts "
            f"-> {entry['single_statements']} stmts "
            f"({entry['statement_reduction']:.1f}x fewer), "
            f"multi {entry['multi_seconds']:.3f}s "
            f"-> single {entry['single_seconds']:.3f}s "
            f"({entry['speedup']:.1f}x, match={entry['results_match']})"
        )
    for label, entry in interval["workloads"].items():
        seconds = entry["seconds"]
        lines.append(
            f"  interval [{label}]: cycleex {seconds['cycleex']:.3f}s, "
            f"cyclee {seconds['cyclee']:.3f}s, "
            f"interval {seconds['interval']:.3f}s "
            f"({entry['speedup_vs_cycleex']:.1f}x vs cycleex, "
            f"{entry['speedup_vs_cyclee']:.1f}x vs cyclee, "
            f"match={entry['results_match']})"
        )
    lines.append(f"  ok={report['ok']}")
    return "\n".join(lines)
