"""Benchmark: Fig. 17 (Exp-4b) — even//data over the 9-cycle GedML DTD.

The paper varies the document shape (X_L and X_R); here two shapes are
benchmarked per approach.  Expected shape: CycleEX outperforms CycleE
clearly and tracks or beats SQLGen-R.
"""

import pytest

from repro.dtd.samples import gedml_dtd
from repro.experiments.harness import default_approaches
from repro.relational.executor import Executor
from repro.shredding.shredder import shred_document
from repro.workloads.queries import GEDML_QUERY
from repro.xmltree.generator import generate_document

APPROACHES = {approach.name: approach for approach in default_approaches()}
SHAPES = {"deep": (12, 3), "wide": (8, 6)}


@pytest.fixture(scope="module")
def gedml_shaped_datasets():
    dtd = gedml_dtd()
    datasets = {}
    for name, (x_l, x_r) in SHAPES.items():
        tree = generate_document(dtd, x_l=x_l, x_r=x_r, seed=37, max_elements=2500)
        datasets[name] = (tree, shred_document(tree, dtd))
    return dtd, datasets


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("approach_name", ["R", "E", "X"])
def test_fig17_gedml(benchmark, gedml_shaped_datasets, shape, approach_name):
    dtd, datasets = gedml_shaped_datasets
    tree, shredded = datasets[shape]
    translator = APPROACHES[approach_name].translator(dtd)
    program = translator.translate(GEDML_QUERY).program

    def run():
        return Executor(shredded.database).run(program)

    result = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["shape"] = f"{shape} (XL={SHAPES[shape][0]}, XR={SHAPES[shape][1]})"
    benchmark.extra_info["approach"] = approach_name
    benchmark.extra_info["document_elements"] = tree.size()
    benchmark.extra_info["result_rows"] = len(result)
