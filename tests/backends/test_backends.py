"""Tests for the pluggable execution backends."""

import pytest

from repro.backends import (
    BACKENDS,
    MemoryBackend,
    SqliteBackend,
    backend_names,
    create_backend,
    normalize_rows,
    sqlite_schema_ddl,
)
from repro.backends.base import BackendResult
from repro.core.optimize import push_selection_options
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.errors import ExecutionError
from repro.relational.schema import T


class TestRegistry:
    def test_both_backends_registered(self):
        assert backend_names() == ["memory", "sqlite"]
        assert BACKENDS["memory"] is MemoryBackend
        assert BACKENDS["sqlite"] is SqliteBackend

    def test_create_backend_by_name(self, dept_shredded):
        backend = create_backend("memory", dept_shredded.database)
        assert isinstance(backend, MemoryBackend)
        with create_backend("sqlite", dept_shredded.database) as backend:
            assert isinstance(backend, SqliteBackend)

    def test_unknown_backend_rejected(self, dept_shredded):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("duckdb", dept_shredded.database)


class TestNormalization:
    def test_ints_and_strings_collapse(self):
        assert normalize_rows({(5, 7, "_")}) == normalize_rows({("5", "7", "_")})

    def test_result_node_ids_come_from_t_column(self):
        result = BackendResult(
            backend="memory",
            columns=("F", "T", "V"),
            rows=frozenset({("1", "2", "x"), ("1", "3", "y")}),
        )
        assert result.node_ids() == {"2", "3"}
        assert result.row_count == 2


class TestSqliteDDL:
    def test_one_table_per_relation_plus_identity_view(self, dept_shredded):
        statements = sqlite_schema_ddl(dept_shredded.database.schema)
        tables = [s for s in statements if s.startswith("CREATE TABLE")]
        assert len(tables) == len(dept_shredded.database.schema.relation_names)
        assert any("ALL_NODES" in s for s in statements)
        indexes = [s for s in statements if s.startswith("CREATE INDEX")]
        # One index per join column (F and T) per relation.
        assert len(indexes) == 2 * len(tables)


class TestSqliteExecution:
    def test_matches_memory_on_recursive_query(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        program = translator.translate("dept//project").program
        memory = MemoryBackend(dept_shredded.database)
        with SqliteBackend(dept_shredded.database) as sqlite:
            assert sqlite.execute(program).rows == memory.execute(program).rows

    def test_matches_direct_answer_path(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        expected = {
            node.node_id for node in translator.answer("dept//project", dept_shredded)
        }
        program = translator.translate("dept//project").program
        with SqliteBackend(dept_shredded.database) as sqlite:
            actual = {int(t) for t in sqlite.answer_node_ids(program)}
        assert actual == expected

    def test_pushed_selections_agree(self, cross_dtd, cross_shredded):
        """Anchored fixpoints (incl. the backward case) execute correctly."""
        translator = XPathToSQLTranslator(cross_dtd, options=push_selection_options())
        memory = MemoryBackend(cross_shredded.database)
        with SqliteBackend(cross_shredded.database) as sqlite:
            for query in ('a/b[text() = "b-0"]//c/d', 'a/b//c/d[text() = "d-0"]'):
                program = translator.translate(query).program
                assert sqlite.execute(program).rows == memory.execute(program).rows

    def test_recursive_union_strategy_agrees(self, cross_dtd, cross_shredded):
        translator = XPathToSQLTranslator(
            cross_dtd, strategy=DescendantStrategy.RECURSIVE_UNION
        )
        program = translator.translate("a/b//c/d").program
        memory = MemoryBackend(cross_shredded.database)
        with SqliteBackend(cross_shredded.database) as sqlite:
            assert sqlite.execute(program).rows == memory.execute(program).rows

    def test_backend_is_reusable_across_programs(self, cross_dtd, cross_shredded):
        """Temp tables are dropped, so one backend serves many executions."""
        translator = XPathToSQLTranslator(cross_dtd)
        first = translator.translate("a//d").program
        second = translator.translate("a/b//c/d").program
        with SqliteBackend(cross_shredded.database) as sqlite:
            one = sqlite.execute(first)
            two = sqlite.execute(second)
            again = sqlite.execute(first)
        assert one.rows == again.rows
        assert one.rows != two.rows or one.row_count == two.row_count

    def test_stats_report_rows_and_wall_time(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        program = translator.translate("dept//project").program
        with SqliteBackend(dept_shredded.database) as sqlite:
            result = sqlite.execute(program)
        assert result.stats["rows"] == result.row_count
        assert result.stats["elapsed_seconds"] >= 0
        assert result.stats["temporaries_evaluated"] >= 1

    def test_closed_backend_raises(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        program = translator.translate("dept//project").program
        backend = SqliteBackend(dept_shredded.database)
        backend.close()
        with pytest.raises(ExecutionError, match="closed"):
            backend.execute(program)

    def test_memory_backend_reports_executor_stats(self, dept_dtd, dept_shredded):
        translator = XPathToSQLTranslator(dept_dtd)
        program = translator.translate("dept//project").program
        result = MemoryBackend(dept_shredded.database).execute(program)
        assert result.backend == "memory"
        assert result.stats["rows"] == result.row_count
        assert "fixpoint_iterations" in result.stats
        assert result.columns[-2] == T or T in result.columns


class TestIdentifierQuoting:
    def test_hyphenated_element_names_execute_on_sqlite(self):
        """DTD names may contain '-' (e.g. GedML); rendered SQL must quote them."""
        from repro.dtd.parser import parse_dtd
        from repro.xmltree.generator import generate_document

        dtd = parse_dtd(
            "root event-log\n"
            "event-log -> event-date*\n"
            "event-date -> event-date*\n",
            name="hyphens",
        )
        tree = generate_document(dtd, x_l=5, x_r=2, seed=1, max_elements=100)
        translator = XPathToSQLTranslator(dtd)
        shredded = translator.shred(tree)
        program = translator.translate("event-log//event-date").program
        memory = MemoryBackend(shredded.database)
        with SqliteBackend(shredded.database) as sqlite:
            assert sqlite.execute(program).rows == memory.execute(program).rows


class TestPreparedExecution:
    """The prepare()/execute_prepared() surface the service layer runs on."""

    def _program(self, dept_dtd):
        return XPathToSQLTranslator(dept_dtd).translate("dept//project").program

    @pytest.mark.parametrize("backend_name", ["memory", "sqlite"])
    def test_prepared_matches_one_shot(self, backend_name, dept_dtd, dept_shredded):
        program = self._program(dept_dtd)
        with create_backend(backend_name, dept_shredded.database) as backend:
            one_shot = backend.execute(program)
            prepared = backend.prepare(program)
            for _ in range(3):  # repeatable: no temp-table or state leakage
                repeat = backend.execute_prepared(prepared)
                assert repeat.rows == one_shot.rows
                assert repeat.columns == one_shot.columns

    def test_prepared_program_is_pruned(self, dept_dtd, dept_shredded):
        program = self._program(dept_dtd)
        backend = create_backend("memory", dept_shredded.database)
        prepared = backend.prepare(program)
        assert len(prepared.program.assignments) <= len(program.assignments)

    def test_sqlite_prepared_payload_precomputes_statements(
        self, dept_dtd, dept_shredded
    ):
        program = self._program(dept_dtd)
        with SqliteBackend(dept_shredded.database) as backend:
            prepared = backend.prepare(program)
            assert prepared.payload is not None
            # One statement per retained assignment plus the result SELECT.
            assert len(prepared.payload.statements) == len(
                prepared.program.assignments
            ) + 1
            result = backend.execute_prepared(prepared)
            assert result.stats["prepared"] == 1

    def test_cross_backend_prepared_rejected(self, dept_dtd, dept_shredded):
        program = self._program(dept_dtd)
        memory = create_backend("memory", dept_shredded.database)
        with SqliteBackend(dept_shredded.database) as sqlite:
            prepared = memory.prepare(program)
            with pytest.raises(ValueError, match="prepared for backend"):
                sqlite.execute_prepared(prepared)

    def test_base_class_prepared_runs_on_sqlite(self, dept_dtd, dept_shredded):
        """A PreparedProgram without a SQLite payload is re-prepared, not broken."""
        from repro.backends.base import PreparedProgram

        program = self._program(dept_dtd)
        with SqliteBackend(dept_shredded.database) as backend:
            generic = PreparedProgram(backend="sqlite", program=program.pruned())
            assert backend.execute_prepared(generic).rows == backend.execute(
                program
            ).rows


class TestSqliteThreadedConnections:
    def test_each_thread_gets_its_own_connection(self, dept_dtd, dept_shredded):
        import threading

        program = XPathToSQLTranslator(dept_dtd).translate("dept//project").program
        with SqliteBackend(dept_shredded.database) as backend:
            expected = backend.execute(program).rows
            results, errors = [], []

            def worker():
                try:
                    results.append(backend.execute(program).rows)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert all(rows == expected for rows in results)

    def test_two_backends_do_not_share_the_shared_cache_db(self, dept_shredded):
        first = SqliteBackend(dept_shredded.database)
        second = SqliteBackend(dept_shredded.database)  # must not collide on DDL
        try:
            cursor_a = first._conn().execute("SELECT COUNT(*) FROM ALL_NODES")
            cursor_b = second._conn().execute("SELECT COUNT(*) FROM ALL_NODES")
            assert cursor_a.fetchone() == cursor_b.fetchone()
        finally:
            first.close()
            second.close()

    def test_dead_thread_connections_are_reaped(self, dept_dtd, dept_shredded):
        """Short-lived worker threads must not leak connections (Issue 3)."""
        import threading

        program = XPathToSQLTranslator(dept_dtd).translate("dept//project").program
        with SqliteBackend(dept_shredded.database) as backend:
            for _ in range(5):  # each round: a thread that opens a connection
                thread = threading.Thread(target=lambda: backend.execute(program))
                thread.start()
                thread.join()
            # Each new thread's open reaps all previously-dead owners, so at
            # most the *last* dead thread's connection lingers; the total
            # never grows with the number of dead threads.
            dead = [t for t, _ in backend._connections if not t.is_alive()]
            assert len(dead) <= 1
            assert len(backend._connections) <= 2  # anchor + last thread


class TestIdentifierAndLiteralEdgeCases:
    """DTDs with SQL-hostile names/values round-trip on both backends (Issue 4)."""

    @pytest.fixture(scope="class")
    def hostile(self):
        from repro.dtd.parser import parse_dtd
        from repro.shredding.shredder import shred_document
        from repro.xmltree.tree import XMLTree

        # Element names that are reserved words or contain '-' / '.' (all
        # legal in the DTD grammar), with values containing quotes and
        # backslashes.
        dtd = parse_dtd(
            "root select\n"
            "select -> foo-bar*, order*\n"
            "foo-bar -> EMPTY #text\n"
            "order -> x.y*\n"
            "x.y -> EMPTY #text\n",
            name="hostile",
        )
        tree = XMLTree.create("select")
        first = tree.add_child(tree.root, "foo-bar", value="o'brien")
        tree.add_child(tree.root, "foo-bar", value="back\\slash")
        order = tree.add_child(tree.root, "order")
        tree.add_child(order, "x.y", value='dou"ble')
        return dtd, tree, shred_document(tree, dtd)

    def test_dashed_and_reserved_names_execute_on_sqlite(self, hostile):
        dtd, tree, shredded = hostile
        translator = XPathToSQLTranslator(dtd)
        # x.y is reachable only through the wildcard: XPath NAME tokens do
        # not admit dots, but the relational layer still has to quote R_x.y.
        for query in ("select", "select/foo-bar", "select/order", "select/order/*"):
            program = translator.translate(query).program
            with MemoryBackend(shredded.database) as memory:
                expected = memory.execute(program).rows
            with SqliteBackend(shredded.database) as sqlite_backend:
                actual = sqlite_backend.execute(program).rows
            assert expected == actual, query

    def test_quoted_and_backslashed_values_roundtrip(self, hostile):
        dtd, tree, shredded = hostile
        translator = XPathToSQLTranslator(dtd)
        for query, matches in (
            ("select/foo-bar[text() = \"o'brien\"]", 1),
            ('select/foo-bar[text() = "back\\slash"]', 1),
            ('select/foo-bar[text() = "missing"]', 0),
        ):
            program = translator.translate(query).program
            with MemoryBackend(shredded.database) as memory:
                expected = memory.execute(program)
            with SqliteBackend(shredded.database) as sqlite_backend:
                actual = sqlite_backend.execute(program)
            assert expected.rows == actual.rows, query
            assert expected.row_count == matches, query

    def test_recursive_union_strategy_survives_hostile_names(self, hostile):
        dtd, tree, shredded = hostile
        translator = XPathToSQLTranslator(
            dtd, strategy=DescendantStrategy.RECURSIVE_UNION
        )
        program = translator.translate("select//order/*").program
        with MemoryBackend(shredded.database) as memory:
            expected = memory.execute(program).rows
        with SqliteBackend(shredded.database) as sqlite_backend:
            actual = sqlite_backend.execute(program).rows
        assert expected == actual
