"""Emission & interval equivalence: the PR 9 tentpole invariants.

Two independent properties, each pinned node-for-node against the direct
XPath evaluator (the paper's ``Q(T)`` semantics):

* **single-statement fusion** — fusing a multi-statement program into one
  ``WITH [RECURSIVE]`` statement is a pure statement-shape change: on
  SQLite the fused plan answers every query with exactly the node set the
  per-temp-table plan (and the evaluator) produces, over all 8 sample
  DTDs at optimize levels 0 and 2, and the fused form really is ONE
  statement;
* **interval strategy** — lowering ``//`` to a range-predicate join over
  the ``DOC_ORDER`` pre/post/size table is a pure strategy change: it
  matches the evaluator (and CycleEX) on both memory executors and on
  SQLite, over all 8 sample DTDs at both levels.

Plus the regression-corpus replay: the default grid carries a
``sqlite/<strategy>/opt/single`` arm per strategy and interval arms on
every backend since PR 9, so replaying the checked-in fuzz corpus
differentially checks both new paths on every saved repro.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api.config import EngineConfig
from repro.backends import create_backend
from repro.core.pipeline import XPathToSQLTranslator
from repro.core.xpath_to_expath import DescendantStrategy
from repro.dtd import samples
from repro.fuzz.harness import replay_corpus
from repro.fuzz.oracle import default_engines
from repro.fuzz.xpath_gen import RandomXPathGenerator, XPathGenConfig
from repro.relational.columnar import EXECUTOR_NAMES
from repro.relational.sqlgen import SQLDialect, program_to_single_sql
from repro.shredding.shredder import shred_document
from repro.xmltree.generator import generate_document
from repro.xpath.evaluator import evaluate_xpath
from repro.xpath.parser import parse_xpath

ALL_SAMPLE_DTDS = sorted(samples.paper_dtds())
OPTIMIZE_LEVELS = (0, 2)
CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz" / "corpus"


@pytest.fixture(scope="module")
def sample_documents():
    documents = {}
    for name, dtd in samples.paper_dtds().items():
        tree = generate_document(
            dtd, x_l=7, x_r=3, seed=37, max_elements=250, distinct_values=4
        )
        documents[name] = (dtd, tree, shred_document(tree, dtd))
    return documents


class TestSingleStatementEmission:
    @pytest.mark.parametrize("level", OPTIMIZE_LEVELS)
    @pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
    def test_fused_matches_multi_and_evaluator(self, sample_documents, dtd_name, level):
        dtd, tree, shredded = sample_documents[dtd_name]
        queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=41)).queries(5)
        translator = XPathToSQLTranslator(dtd, optimize_level=level)
        multi = create_backend("sqlite", shredded.database)
        single = create_backend("sqlite", shredded.database, emission="single")
        try:
            for query_text in queries:
                query = parse_xpath(query_text)
                expected = {str(n.node_id) for n in evaluate_xpath(tree, query)}
                program = translator.translate(query).program
                assert set(multi.execute(program).node_ids()) == expected, (
                    dtd_name, level, query_text, "multi",
                )
                assert set(single.execute(program).node_ids()) == expected, (
                    dtd_name, level, query_text, "single",
                )
        finally:
            multi.close()
            single.close()

    @pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
    def test_fused_form_is_one_statement(self, sample_documents, dtd_name):
        # The fused rendering must be executable as exactly one statement:
        # sqlite3's execute() rejects scripts with more than one, so this
        # is checked by the execution tests too — here we additionally pin
        # the text shape (a single WITH/SELECT, no semicolons inside).
        dtd, _, _ = sample_documents[dtd_name]
        queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=41)).queries(5)
        translator = XPathToSQLTranslator(dtd)
        for query_text in queries:
            program = translator.translate(query_text).program
            fused = program_to_single_sql(program, SQLDialect.SQLITE)
            assert ";" not in fused, (dtd_name, query_text)
            assert fused.lstrip().upper().startswith(("WITH", "SELECT")), (
                dtd_name, query_text,
            )

    def test_unfusable_program_falls_back_to_multi(self):
        # The paper-dept corpus query lowers (under pushed selections) to a
        # ~90-assignment program whose CTE DAG SQLite cannot substitute
        # (its parser copies every CTE reference and hard-caps references
        # per table at 65535).  The single-emission backend must detect
        # this and fall back to the multi-statement plan, still answering
        # exactly like the evaluator.
        from repro.fuzz.cases import FuzzCase
        from repro.relational.sqlgen import FUSED_SCAN_LIMIT, fused_scan_count

        case = FuzzCase.load(CORPUS_DIR / "paper-dept.json")
        dtd, tree = case.dtd(), case.tree()
        config = EngineConfig(
            backend="sqlite", emission="single",
            use_small_seed=True, push_selections=True,
        )
        translator = XPathToSQLTranslator(dtd, config=config)
        program = translator.translate(case.query).program
        assert fused_scan_count(program.pruned()) > FUSED_SCAN_LIMIT
        shredded = shred_document(tree, dtd)
        expected = {
            str(n.node_id)
            for n in evaluate_xpath(tree, parse_xpath(case.query))
        }
        backend = create_backend(config, shredded.database)
        try:
            assert set(backend.execute(program).node_ids()) == expected
        finally:
            backend.close()

    def test_oracle_raises_for_connect_by(self):
        translator = XPathToSQLTranslator(samples.dept_dtd())
        program = translator.translate("dept//project").program
        with pytest.raises(ValueError):
            program_to_single_sql(program, SQLDialect.ORACLE)


class TestIntervalStrategy:
    @pytest.mark.parametrize("level", OPTIMIZE_LEVELS)
    @pytest.mark.parametrize("dtd_name", ALL_SAMPLE_DTDS)
    def test_interval_matches_evaluator_everywhere(
        self, sample_documents, dtd_name, level
    ):
        dtd, tree, shredded = sample_documents[dtd_name]
        queries = RandomXPathGenerator(dtd, XPathGenConfig(seed=41)).queries(5)
        translator = XPathToSQLTranslator(
            dtd,
            config=EngineConfig(
                strategy=DescendantStrategy.INTERVAL, optimize_level=level
            ),
        )
        backends = {
            executor: create_backend(
                EngineConfig(backend="memory", executor=executor), shredded.database
            )
            for executor in EXECUTOR_NAMES
        }
        backends["sqlite"] = create_backend("sqlite", shredded.database)
        try:
            for query_text in queries:
                query = parse_xpath(query_text)
                expected = {str(n.node_id) for n in evaluate_xpath(tree, query)}
                program = translator.translate(query).program
                for name, backend in backends.items():
                    ids = set(backend.execute(program).node_ids())
                    assert ids == expected, (dtd_name, name, level, query_text)
        finally:
            for backend in backends.values():
                backend.close()

    @pytest.mark.parametrize("dtd_name", ("cross", "gedml"))
    def test_interval_program_has_no_fixpoint(self, dtd_name):
        # On the recursive DTDs the interval strategy must replace the
        # recursive unfolding entirely: no LFP, no SQL'99 recursion.
        dtd = samples.paper_dtds()[dtd_name]
        translator = XPathToSQLTranslator(
            dtd, config=EngineConfig(strategy=DescendantStrategy.INTERVAL)
        )
        query = "a//d" if dtd_name == "cross" else "even//data"
        profile = translator.translate(query).operator_profile()
        assert profile.lfps == 0, dtd_name
        assert profile.recursive_unions == 0, dtd_name


class TestCorpusReplayThroughNewArms:
    def test_grid_carries_the_new_arms(self):
        engines = default_engines()
        names = {engine.name for engine in engines}
        assert any(e.emission == "single" for e in engines)
        assert any(
            e.strategy is DescendantStrategy.INTERVAL for e in engines
        )
        assert "sqlite/interval/opt/single" in names

    def test_corpus_replay_is_clean(self):
        outcomes = replay_corpus(CORPUS_DIR, default_engines())
        failed = [o for o in outcomes if not o.ok]
        assert not failed, [o.case.label for o in failed]
