"""Benchmark: columnar vs tuple executor — the Issue 8 perf baseline.

Runs the shared harness of :mod:`repro.service.execbench` (the same
scenarios ``repro bench-executor`` measures) and writes ``BENCH_6.json``
at the repo root, alongside the earlier baselines.

Asserted here (the Issue 8 acceptance bar):

* every scenario's answers are node-for-node identical across the two
  executors (``results_match``) — a benchmark that got faster by being
  wrong must fail loudly;
* the memory backend's warm-plan steady state (the BENCH_3 ``plan_cached``
  regime, result cache off) is **≥ 5x** faster columnar-vs-tuple on the
  cross workload — the committed BENCH_6.json shows ~15x — and faster on
  every workload.

The ``fuzz_sweep`` scenario is reported but not speed-asserted: fuzz
cases are tiny cold documents where dictionary-encoding overhead is the
whole story, so the columnar engine is roughly a wash there (see
BENCH_6.json for the honest number).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.service.execbench import (
    ExecutorBenchConfig,
    run_executor_benchmark,
    write_report,
)

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_6.json"

BENCH_CONFIG = ExecutorBenchConfig(elements=1200, repeats=5)

# The acceptance bar; the committed baseline clears it ~3x over, so CI
# timer noise has plenty of headroom.
MIN_CROSS_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def executor_report():
    return run_executor_benchmark(BENCH_CONFIG)


def test_writes_bench_6_json(executor_report):
    write_report(executor_report, str(REPORT_PATH))
    on_disk = json.loads(REPORT_PATH.read_text())
    assert on_disk["bench"] == "columnar-executor"
    assert on_disk["issue"] == 6
    assert set(on_disk["scenarios"]) == {"warm_plan", "fuzz_sweep"}


def test_every_scenario_returns_identical_results(executor_report):
    scenarios = executor_report["scenarios"]
    assert scenarios["warm_plan"]["results_match"] is True
    for label, entry in scenarios["warm_plan"]["workloads"].items():
        assert entry["results_match"] is True, label
    assert scenarios["fuzz_sweep"]["results_match"] is True
    assert executor_report["ok"] is True


def test_cross_workload_speedup_clears_the_bar(executor_report):
    cross = executor_report["scenarios"]["warm_plan"]["workloads"]["cross"]
    assert cross["speedup"] >= MIN_CROSS_SPEEDUP, (
        f"columnar is only {cross['speedup']:.1f}x on cross "
        f"(tuple {cross['tuple_seconds']:.3f}s vs "
        f"columnar {cross['columnar_seconds']:.3f}s)"
    )


def test_columnar_is_faster_on_every_workload(executor_report):
    for label, entry in executor_report["scenarios"]["warm_plan"]["workloads"].items():
        assert entry["speedup"] > 1.0, (label, entry["speedup"])


def test_fuzz_sweeps_are_clean_on_both_executors(executor_report):
    sweep = executor_report["scenarios"]["fuzz_sweep"]
    assert sweep["results_match"] is True
    assert sweep["cases"] == BENCH_CONFIG.fuzz_budget
