"""The DTDs used in the paper's examples and experiments.

All DTDs are rebuilt from the figures of the paper:

* :func:`dept_dtd` — the running example of Fig. 1(a) (3 nested cycles
  through ``course``).
* :func:`cross_dtd` — the simple "cross cycles" DTD of Fig. 11(a): 4 nodes,
  5 edges, 2 simple cycles sharing a node.
* :func:`bioml_dtd` and the Fig. 15 subgraphs — the BIOML-derived family
  (``gene``/``dna``/``clone``/``locus``) with 2, 3, 3 and 4 simple cycles.
* :func:`gedml_dtd` — the GedML-derived DTD of Fig. 11(c): 5 nodes, 11
  edges, 9 simple cycles.
* :func:`fig3_view_dtd` / :func:`fig3_source_dtd` — the 1-cycle view/source
  pair of Fig. 3(a)/(b) used by Example 3.2.
* :func:`complete_dag_dtd` / :func:`complete_dag_with_blocker_dtd` — the
  ``D1(n)`` / ``D2(n)`` family of Fig. 3(c)/(d) used to demonstrate the
  exponential blow-up of regular-expression rewriting (Examples 3.3/4.2).

The exact BIOML/GedML element declarations are not reproduced verbatim from
the (web-only) BIOML and GedML DTDs; what matters for the experiments is the
graph shape (node, edge and simple-cycle counts reported in Table 5), which
is matched exactly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dtd.model import DTD, ContentModel, empty, ref, seq, star
from repro.dtd.graph import DTDGraph

__all__ = [
    "dept_dtd",
    "simplified_dept_dtd",
    "cross_dtd",
    "bioml_dtd",
    "bioml_subgraph_a",
    "bioml_subgraph_b",
    "bioml_subgraph_c",
    "bioml_subgraph_d",
    "gedml_dtd",
    "fig3_view_dtd",
    "fig3_source_dtd",
    "complete_dag_dtd",
    "complete_dag_with_blocker_dtd",
    "paper_dtds",
]


def dept_dtd() -> DTD:
    """The dept DTD of Example 2.1 / Fig. 1(a).

    ``dept`` has courses; each course has a code, title, prerequisite
    hierarchy, registered students and projects; students list qualified
    courses and projects list required courses — three overlapping cycles
    through ``course``.
    """
    productions: Dict[str, ContentModel] = {
        "dept": star("course"),
        "course": seq("cno", "title", "prereq", "takenBy", star("project")),
        "prereq": star("course"),
        "takenBy": star("student"),
        "student": seq("sno", "name", "qualified"),
        "qualified": star("course"),
        "project": seq("pno", "ptitle", "required"),
        "required": star("course"),
        "cno": empty(),
        "title": empty(),
        "sno": empty(),
        "name": empty(),
        "pno": empty(),
        "ptitle": empty(),
    }
    text_types = ["cno", "title", "sno", "name", "pno", "ptitle"]
    return DTD("dept", productions, text_types, name="dept")


def simplified_dept_dtd() -> DTD:
    """The simplified 4-node dept graph of Fig. 1(b).

    After shared inlining, only ``dept``/``course``/``student``/``project``
    head their own relations; the cycles of Fig. 1(a) collapse onto direct
    edges between those four types.
    """
    productions: Dict[str, ContentModel] = {
        "dept": star("course"),
        "course": seq(star("course"), star("student"), star("project")),
        "student": star("course"),
        "project": star("course"),
    }
    return DTD("dept", productions, name="dept-simplified")


def cross_dtd() -> DTD:
    """The "cross cycles" DTD of Fig. 11(a): a → b → c → d with two cycles.

    Graph shape: 4 nodes, 5 edges, 2 simple cycles (``b↔c`` and ``c↔d``)
    sharing node ``c`` — matching the Cross row of Table 5
    (n=4, m=5, c=2).  Every type carries a text value so that the selective
    queries of Exp-2 (``a[id=...]``) can be expressed with ``text()=c``.
    """
    productions: Dict[str, ContentModel] = {
        "a": star("b"),
        "b": star("c"),
        "c": seq(star("b"), star("d")),
        "d": star("c"),
    }
    return DTD("a", productions, text_types=["a", "b", "c", "d"], name="cross")


def _bioml(productions: Dict[str, ContentModel], name: str) -> DTD:
    return DTD(
        "gene",
        productions,
        text_types=["gene", "dna", "clone", "locus"],
        name=name,
    )


def bioml_subgraph_a() -> DTD:
    """BIOML subgraph of Fig. 15(a): 2 simple cycles, 5 edges."""
    return _bioml(
        {
            "gene": star("dna"),
            "dna": seq(star("gene"), star("clone")),
            "clone": seq(star("dna"), star("locus")),
            "locus": empty(),
        },
        name="bioml-2cycle-a",
    )


def bioml_subgraph_b() -> DTD:
    """BIOML subgraph of Fig. 15(b): adds ``locus → clone`` (3 cycles, 6 edges)."""
    return _bioml(
        {
            "gene": star("dna"),
            "dna": seq(star("gene"), star("clone")),
            "clone": seq(star("dna"), star("locus")),
            "locus": star("clone"),
        },
        name="bioml-2cycle-b",
    )


def bioml_subgraph_c() -> DTD:
    """BIOML subgraph of Fig. 15(c): adds ``locus → gene`` (3 cycles, 6 edges)."""
    return _bioml(
        {
            "gene": star("dna"),
            "dna": seq(star("gene"), star("clone")),
            "clone": seq(star("dna"), star("locus")),
            "locus": star("gene"),
        },
        name="bioml-3cycle-c",
    )


def bioml_subgraph_d() -> DTD:
    """BIOML subgraph of Fig. 15(d): both back edges from ``locus`` (4 cycles, 7 edges)."""
    return _bioml(
        {
            "gene": star("dna"),
            "dna": seq(star("gene"), star("clone")),
            "clone": seq(star("dna"), star("locus")),
            "locus": seq(star("clone"), star("gene")),
        },
        name="bioml-4cycle-d",
    )


def bioml_dtd() -> DTD:
    """The full 4-cycle BIOML DTD of Fig. 11(b) (gene/dna/clone/locus)."""
    return bioml_subgraph_d().with_name("bioml")


def gedml_dtd() -> DTD:
    """The 9-cycle GedML DTD of Fig. 11(c).

    5 nodes (``even``, ``sour``, ``note``, ``obje``, ``data``), 11 edges and
    9 simple cycles — matching the GedML row of Table 5
    (n=5, m=11, c=9).  The experiment query is ``even//data``.
    """
    productions: Dict[str, ContentModel] = {
        "even": star("sour"),
        "sour": seq(star("even"), star("note"), star("data")),
        "note": seq(star("sour"), star("obje")),
        "obje": seq(star("note"), star("sour"), star("data")),
        "data": seq(star("sour"), star("note")),
    }
    return DTD(
        "even",
        productions,
        text_types=["even", "sour", "note", "obje", "data"],
        name="gedml",
    )


def fig3_view_dtd() -> DTD:
    """The view DTD ``D`` of Fig. 3(a): A → B*, C ; B → A* (one cycle)."""
    productions: Dict[str, ContentModel] = {
        "A": seq(star("B"), "C"),
        "B": star("A"),
        "C": empty(),
    }
    return DTD("A", productions, name="fig3-view")


def fig3_source_dtd() -> DTD:
    """The source DTD ``D'`` of Fig. 3(b): like ``D`` plus the edge B → C."""
    productions: Dict[str, ContentModel] = {
        "A": seq(star("B"), "C"),
        "B": seq(star("A"), star("C")),
        "C": empty(),
    }
    return DTD("A", productions, name="fig3-source")


def complete_dag_dtd(n: int) -> DTD:
    """The DAG DTD ``D1(n)`` of Fig. 3(c): nodes A1..An, edges (Ai, Aj) for i<j."""
    if n < 2:
        raise ValueError("complete_dag_dtd requires n >= 2")
    productions: Dict[str, ContentModel] = {}
    for i in range(1, n + 1):
        children = [ref(f"A{j}") for j in range(i + 1, n + 1)]
        productions[f"A{i}"] = seq(*children) if children else empty()
    return DTD("A1", productions, name=f"complete-dag-{n}")


def complete_dag_with_blocker_dtd(n: int) -> DTD:
    """The DTD ``D2(n)`` of Fig. 3(d): ``D1(n)`` plus a B node.

    Adds edges ``Ai → B`` for i < n and ``B → An``; queries on the view must
    avoid going through ``B``, which is what makes regular-XPath rewriting
    exponential (Example 3.3).
    """
    base = complete_dag_dtd(n)
    productions: Dict[str, ContentModel] = {}
    for i in range(1, n + 1):
        children = [ref(f"A{j}") for j in range(i + 1, n + 1)]
        if i < n:
            children.append(ref("B"))
        productions[f"A{i}"] = seq(*children) if children else empty()
    productions["B"] = ref(f"A{n}")
    return DTD("A1", productions, name=f"complete-dag-blocker-{n}")


def paper_dtds() -> Dict[str, DTD]:
    """All named DTDs used by the experiments, keyed by short name."""
    return {
        "dept": dept_dtd(),
        "cross": cross_dtd(),
        "bioml-a": bioml_subgraph_a(),
        "bioml-b": bioml_subgraph_b(),
        "bioml-c": bioml_subgraph_c(),
        "bioml-d": bioml_subgraph_d(),
        "bioml": bioml_dtd(),
        "gedml": gedml_dtd(),
    }


def describe(dtd: DTD) -> str:
    """One-line structural summary (nodes / edges / simple cycles) of a DTD."""
    graph = DTDGraph(dtd)
    return (
        f"{dtd.name}: n={len(graph)} nodes, m={len(graph.edges)} edges, "
        f"c={graph.cycle_count()} simple cycles, recursive={dtd.is_recursive()}"
    )
